//! `stream-study` — the streaming face of the analysis pipeline.
//!
//! ```text
//! stream-study <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!              [--year N] [--window SECS] [--chunk BYTES]
//!              [--checkpoint FILE] [--resume FILE] [--progress]
//!              [--metrics-out FILE] [--metrics-format FMT]
//! ```
//!
//! Feeds the same inputs `delta-cli analyze` reads through
//! [`resilience::incremental::StreamingPipeline`] in bounded-size chunks,
//! checkpointing along the way. Interrupt the run, pass the snapshot back
//! with `--resume`, and the report comes out byte-identical to the
//! uninterrupted (and to the batch) run — that equivalence is what the
//! differential test layer proves.
//!
//! * `--chunk BYTES`    feed granularity for log bytes (default 1 MiB)
//! * `--checkpoint F`   write a snapshot to `F` after every log file
//! * `--resume F`       restore from `F`; already-ingested log bytes are
//!   skipped by offset (the snapshot remembers how many were fed)
//! * `--progress`       force the once-a-second live counters line on
//!   stderr (on by default when stderr is a terminal)
//! * `--metrics-out F`  record stage metrics + spans into the `obs`
//!   registry and write the exposition to `F` on exit
//!
//! Shared plumbing and the error taxonomy live in
//! [`delta_gpu_resilience::cli`].

use delta_gpu_resilience::cli::{self, parse_flags, CliError, MetricsSink, Progress};
use delta_gpu_resilience::prelude::*;
use resilience::checkpoint::Checkpoint;
use resilience::incremental::StreamingPipeline;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
stream-study — incremental A100 resilience analysis with checkpoint/restore

USAGE:
  stream-study <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
               [--year N] [--window SECS] [--chunk BYTES]
               [--checkpoint FILE] [--resume FILE] [--progress]
               [--metrics-out FILE] [--metrics-format FMT]

  <LOG>...          per-day syslog files (or directories of them)
  --jobs FILE       GPU job export (CSV: id,name,submit,start,end,gpus,gpu_slots,state)
  --cpu-jobs FILE   CPU job export (same schema, gpus=0)
  --outages FILE    outage export (CSV: host,start,duration_secs)
  --year N          year for year-less syslog stamps (default: from the
                    first filename's YYYYMMDD, else 2024)
  --window SECS     coalescing window Δt (default 20; ignored with --resume)
  --chunk BYTES     log feed granularity (default 1048576)
  --checkpoint FILE write a snapshot after each log file
  --resume FILE     restore from a snapshot and continue
  --progress        force the live-counters stderr line (default: only
                    when stderr is a terminal)
  --metrics-out FILE    record stage metrics + spans, write exposition here
  --metrics-format FMT  'prom' (Prometheus text) or 'json'
                        (default: by FILE extension, .json means json)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help" | "-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, CliError::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "jobs",
            "cpu-jobs",
            "outages",
            "year",
            "window",
            "chunk",
            "checkpoint",
            "resume",
            "metrics-out",
            "metrics-format",
        ],
    )?;
    if flags.positionals.is_empty() {
        return Err(CliError::Usage(
            "stream-study needs at least one log file".to_owned(),
        ));
    }
    let metrics = MetricsSink::from_flags(&flags)?;
    let files = cli::collect_log_files(&flags.positionals)?;
    let chunk: usize = flags
        .value("chunk")
        .unwrap_or("1048576")
        .parse()
        .map_err(|_| CliError::Usage("bad --chunk".to_owned()))?;
    if chunk == 0 {
        return Err(CliError::Usage("--chunk must be positive".to_owned()));
    }

    let mut engine = match flags.value("resume") {
        Some(path) => {
            let bytes = cli::read_bytes(path)?;
            let checkpoint = Checkpoint::from_bytes(bytes)?;
            let state_bytes = checkpoint.as_bytes().len();
            let engine = StreamingPipeline::restore(&checkpoint)?;
            println!(
                "resumed from {path}: {} log bytes already ingested, state {} bytes",
                engine.log_bytes_fed(),
                state_bytes
            );
            engine
        }
        None => {
            let year = match flags.value("year") {
                Some(y) => y
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --year {y:?}")))?,
                None => files
                    .first()
                    .and_then(|f| cli::year_from_filename(f))
                    .unwrap_or(2024),
            };
            let mut pipeline = Pipeline::delta();
            if let Some(w) = flags.value("window") {
                let secs: u64 = w
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --window {w:?}")))?;
                pipeline.coalesce_window = Duration::from_secs(secs);
            }
            StreamingPipeline::new(pipeline, year)
        }
    };

    // Feed the logs chunk by chunk, skipping what a resumed snapshot has
    // already seen. Offsets index the concatenation of the sorted files,
    // which is exactly the byte stream the original run fed.
    let started = Instant::now();
    let mut progress = Progress::new(flags.has("progress"));
    let mut offset: u64 = 0;
    let mut fed: u64 = 0;
    for file in &files {
        let text = cli::read_bytes(file)?;
        let len = text.len() as u64;
        let done = engine.log_bytes_fed();
        if offset + len <= done {
            offset += len;
            continue; // this file is fully inside the snapshot
        }
        let skip = done.saturating_sub(offset) as usize;
        for piece in text[skip..].chunks(chunk) {
            engine.push_log(piece);
            fed += piece.len() as u64;
            progress.tick(|| {
                let stats = engine.scan_stats();
                format!(
                    "[{:7.1}s] {} lines | {} fed bytes | {} extracted | {} quarantined | {} live errors",
                    started.elapsed().as_secs_f64(),
                    stats.lines_seen,
                    fed,
                    stats.extracted,
                    stats.quarantined.total(),
                    engine.live().total_errors(),
                )
            });
        }
        offset += len;
        if let Some(path) = flags.value("checkpoint") {
            let snapshot = engine.checkpoint();
            cli::write_file_atomic(path, snapshot.as_bytes(), "writing checkpoint to")?;
            println!(
                "checkpoint after {}: {} log bytes in, state {} bytes",
                file.display(),
                engine.log_bytes_fed(),
                snapshot.as_bytes().len()
            );
        }
    }
    engine.finish_log();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.scan_stats();
    if progress.printed() {
        progress.finish(|| {
            format!(
                "[{elapsed:7.1}s] scan complete: {} lines, {} events extracted",
                stats.lines_seen, stats.extracted
            )
        });
    }
    println!(
        "scanned {} lines ({} new bytes) in {:.2}s — {} events extracted, live errors {}",
        stats.lines_seen,
        fed,
        elapsed,
        stats.extracted,
        engine.live().total_errors()
    );

    // Accounting inputs, in the batch path's canonical feed order.
    if let Some(path) = flags.value("jobs") {
        engine.push_gpu_jobs_csv(&cli::read_to_string(path)?);
    }
    if let Some(path) = flags.value("cpu-jobs") {
        engine.push_cpu_jobs_csv(&cli::read_to_string(path)?);
    }
    if let Some(path) = flags.value("outages") {
        engine.push_outages_csv(&cli::read_to_string(path)?);
    }

    let (report_out, quarantine) = engine.finalize();
    println!("\n=== Table I ===\n{}", report::table1(&report_out));
    println!("=== Table II ===\n{}", report::table2(&report_out));
    println!("=== Table III ===\n{}", report::table3(&report_out));
    println!("=== Figure 2 ===\n{}", report::figure2(&report_out));
    println!("=== Findings ===\n{}", Findings::evaluate(&report_out));
    if !quarantine.is_clean() {
        println!("\n=== Quarantine ===\n{}", quarantine.ledger);
        for caveat in &quarantine.caveats {
            println!("caveat: {caveat}");
        }
    }
    if let Some(sink) = &metrics {
        sink.write()?;
        println!("metrics written to {}", sink.path.display());
    }
    Ok(())
}
