//! `stream-study` — the streaming face of the analysis pipeline.
//!
//! ```text
//! stream-study <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!              [--year N] [--window SECS] [--chunk BYTES]
//!              [--checkpoint FILE] [--resume FILE]
//! ```
//!
//! Feeds the same inputs `delta-cli analyze` reads through
//! [`resilience::incremental::StreamingPipeline`] in bounded-size chunks,
//! checkpointing along the way. Interrupt the run, pass the snapshot back
//! with `--resume`, and the report comes out byte-identical to the
//! uninterrupted (and to the batch) run — that equivalence is what the
//! differential test layer proves.
//!
//! * `--chunk BYTES`    feed granularity for log bytes (default 1 MiB)
//! * `--checkpoint F`   write a snapshot to `F` after every log file
//! * `--resume F`       restore from `F`; already-ingested log bytes are
//!   skipped by offset (the snapshot remembers how many were fed)

use delta_gpu_resilience::prelude::*;
use resilience::checkpoint::Checkpoint;
use resilience::incremental::StreamingPipeline;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
stream-study — incremental A100 resilience analysis with checkpoint/restore

USAGE:
  stream-study <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
               [--year N] [--window SECS] [--chunk BYTES]
               [--checkpoint FILE] [--resume FILE]

  <LOG>...          per-day syslog files (or directories of them)
  --jobs FILE       GPU job export (CSV: id,name,submit,start,end,gpus,gpu_slots,state)
  --cpu-jobs FILE   CPU job export (same schema, gpus=0)
  --outages FILE    outage export (CSV: host,start,duration_secs)
  --year N          year for year-less syslog stamps (default: from the
                    first filename's YYYYMMDD, else 2024)
  --window SECS     coalescing window Δt (default 20; ignored with --resume)
  --chunk BYTES     log feed granularity (default 1048576)
  --checkpoint FILE write a snapshot after each log file
  --resume FILE     restore from a snapshot and continue
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help" | "-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Flags {
    positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

fn parse_flags(args: &[String], value_flags: &[&str]) -> Result<Flags, String> {
    let mut positionals = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone();
                options.push((name.to_owned(), Some(value)));
            } else {
                options.push((name.to_owned(), None));
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(Flags {
        positionals,
        options,
    })
}

impl Flags {
    fn value(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn collect_log_files(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            let entries = std::fs::read_dir(path).map_err(|e| format!("reading dir {p}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("reading dir {p}: {e}"))?;
                if entry.path().is_file() {
                    files.push(entry.path());
                }
            }
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    files.sort();
    Ok(files)
}

fn year_from_filename(path: &Path) -> Option<i32> {
    let name = path.file_stem()?.to_str()?;
    name.split(|c: char| !c.is_ascii_digit())
        .filter(|chunk| chunk.len() == 8)
        .find_map(|chunk| {
            let year: i32 = chunk[..4].parse().ok()?;
            (1970..=2100).contains(&year).then_some(year)
        })
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "jobs",
            "cpu-jobs",
            "outages",
            "year",
            "window",
            "chunk",
            "checkpoint",
            "resume",
        ],
    )?;
    if flags.positionals.is_empty() {
        return Err(format!("stream-study needs at least one log file\n{USAGE}"));
    }
    let files = collect_log_files(&flags.positionals)?;
    let chunk: usize = flags
        .value("chunk")
        .unwrap_or("1048576")
        .parse()
        .map_err(|_| "bad --chunk")?;
    if chunk == 0 {
        return Err("--chunk must be positive".into());
    }

    let mut engine = match flags.value("resume") {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("reading checkpoint {path}: {e}"))?;
            let checkpoint = Checkpoint::from_bytes(bytes)
                .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
            let engine = StreamingPipeline::restore(&checkpoint)
                .map_err(|e| format!("restoring checkpoint {path}: {e}"))?;
            println!(
                "resumed from {path}: {} log bytes already ingested, state {} bytes",
                engine.log_bytes_fed(),
                checkpoint.as_bytes().len()
            );
            engine
        }
        None => {
            let year = match flags.value("year") {
                Some(y) => y.parse().map_err(|_| format!("bad --year {y:?}"))?,
                None => files
                    .first()
                    .and_then(|f| year_from_filename(f))
                    .unwrap_or(2024),
            };
            let mut pipeline = Pipeline::delta();
            if let Some(w) = flags.value("window") {
                let secs: u64 = w.parse().map_err(|_| format!("bad --window {w:?}"))?;
                pipeline.coalesce_window = Duration::from_secs(secs);
            }
            StreamingPipeline::new(pipeline, year)
        }
    };

    // Feed the logs chunk by chunk, skipping what a resumed snapshot has
    // already seen. Offsets index the concatenation of the sorted files,
    // which is exactly the byte stream the original run fed.
    let started = Instant::now();
    let mut offset: u64 = 0;
    let mut fed: u64 = 0;
    for file in &files {
        let text = std::fs::read(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let len = text.len() as u64;
        let done = engine.log_bytes_fed();
        if offset + len <= done {
            offset += len;
            continue; // this file is fully inside the snapshot
        }
        let skip = done.saturating_sub(offset) as usize;
        for piece in text[skip..].chunks(chunk) {
            engine.push_log(piece);
            fed += piece.len() as u64;
        }
        offset += len;
        if let Some(path) = flags.value("checkpoint") {
            let snapshot = engine.checkpoint();
            std::fs::write(path, snapshot.as_bytes())
                .map_err(|e| format!("writing checkpoint {path}: {e}"))?;
            println!(
                "checkpoint after {}: {} log bytes in, state {} bytes",
                file.display(),
                engine.log_bytes_fed(),
                snapshot.as_bytes().len()
            );
        }
    }
    engine.finish_log();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.scan_stats();
    println!(
        "scanned {} lines ({} new bytes) in {:.2}s — {} events extracted, live errors {}",
        stats.lines_seen,
        fed,
        elapsed,
        stats.extracted,
        engine.live().total_errors()
    );

    // Accounting inputs, in the batch path's canonical feed order.
    if let Some(path) = flags.value("jobs") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        engine.push_gpu_jobs_csv(&text);
    }
    if let Some(path) = flags.value("cpu-jobs") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        engine.push_cpu_jobs_csv(&text);
    }
    if let Some(path) = flags.value("outages") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        engine.push_outages_csv(&text);
    }

    let (report_out, quarantine) = engine.finalize();
    println!("\n=== Table I ===\n{}", report::table1(&report_out));
    println!("=== Table II ===\n{}", report::table2(&report_out));
    println!("=== Table III ===\n{}", report::table3(&report_out));
    println!("=== Figure 2 ===\n{}", report::figure2(&report_out));
    println!("=== Findings ===\n{}", Findings::evaluate(&report_out));
    if !quarantine.is_clean() {
        println!("\n=== Quarantine ===\n{}", quarantine.ledger);
        for caveat in &quarantine.caveats {
            println!("caveat: {caveat}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_values_and_positionals() {
        let flags = parse_flags(
            &args(&["logs", "--chunk", "64", "--resume", "ck.bin"]),
            &["chunk", "resume"],
        )
        .unwrap();
        assert_eq!(flags.positionals, vec!["logs"]);
        assert_eq!(flags.value("chunk"), Some("64"));
        assert_eq!(flags.value("resume"), Some("ck.bin"));
        assert_eq!(flags.value("jobs"), None);
    }

    #[test]
    fn value_flag_without_value_errors() {
        assert!(parse_flags(&args(&["--chunk"]), &["chunk"]).is_err());
    }

    #[test]
    fn year_is_read_from_filenames() {
        assert_eq!(
            year_from_filename(Path::new("syslog-20220105.log")),
            Some(2022)
        );
        assert_eq!(year_from_filename(Path::new("messages.log")), None);
    }
}
