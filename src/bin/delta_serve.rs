//! `delta-serve` — serve a computed study over HTTP.
//!
//! ```text
//! delta-serve <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!             [--addr HOST:PORT] [--threads N] [--max-conns N] [--window SECS]
//! ```
//!
//! Ingests the same inputs as `delta-cli analyze` (per-day syslog files
//! plus optional job/outage CSV exports), runs the lenient pipeline once,
//! builds the `servd` columnar store, and serves it until SIGINT/SIGTERM:
//!
//! ```text
//! GET /tables/1 /tables/2 /tables/3 /fig2   the paper surfaces
//! GET /errors?host=&xid=&from=&to=          filtered coalesced errors (CSV)
//! GET /mtbe[?xid=]                          per-kind MTBE rows (CSV)
//! GET /jobs/impact                          Table II + failed-job total (CSV)
//! GET /availability                         §V-C summary (JSON)
//! GET /snapshot /healthz /metrics           serving metadata + Prometheus
//! ```
//!
//! Metrics are always on for a server (the registry powers `/metrics`).
//! Shared plumbing and the error taxonomy live in
//! [`delta_gpu_resilience::cli`].

use delta_gpu_resilience::cli::{self, parse_flags, CliError};
use delta_gpu_resilience::prelude::*;
use resilience::error::CsvInput;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help" | "-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, CliError::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
delta-serve — HTTP query server over a GPU resilience study

USAGE:
  delta-serve <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
              [--addr HOST:PORT] [--threads N] [--max-conns N] [--window SECS]

INPUTS (as in delta-cli analyze)
  <LOG>...        per-day syslog files (or directories of them)
  --jobs FILE     GPU job export CSV
  --cpu-jobs FILE CPU job export CSV
  --outages FILE  outage export CSV
  --window SECS   coalescing window Δt (default 20)

SERVER
  --addr A        listen address (default 127.0.0.1:7171; use :0 for ephemeral)
  --threads N     worker threads (default 4)
  --max-conns N   connection queue depth; beyond it requests get 503 (default 64)

ENDPOINTS
  /tables/1 /tables/2 /tables/3 /fig2 /errors /mtbe /jobs/impact
  /availability /snapshot /healthz /metrics
";

fn run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "jobs",
            "cpu-jobs",
            "outages",
            "addr",
            "threads",
            "max-conns",
            "window",
        ],
    )?;
    if flags.positionals.is_empty() {
        return Err(CliError::Usage(
            "serve needs at least one log file".to_owned(),
        ));
    }

    // The registry backs /metrics and the request/cache counters; a
    // server run is always instrumented.
    obs::set_enabled(true);

    // Ingest per-day logs exactly as `delta-cli analyze` does: year from
    // the filename when present, otherwise probed from a line sample.
    let mut log = Vec::new();
    let mut year = None;
    {
        let mut span = obs::span("stage_ingest");
        let files = cli::collect_log_files(&flags.positionals)?;
        for file in &files {
            let bytes = cli::read_bytes(file)?;
            if year.is_none() {
                year = cli::year_from_filename(file);
            }
            log.extend_from_slice(&bytes);
            if !log.ends_with(b"\n") {
                log.push(b'\n');
            }
        }
        span.add_items(files.len() as u64);
    }
    let year = year.unwrap_or_else(|| probe_year(&log));

    let gpu_csv = match flags.value("jobs") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    let cpu_csv = match flags.value("cpu-jobs") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    let out_csv = match flags.value("outages") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    // Strict-parse the CSVs first so schema errors surface as clean CLI
    // errors instead of silent quarantine rows.
    if !gpu_csv.is_empty() {
        cli::parse_jobs_csv(&gpu_csv, CsvInput::GpuJobs)?;
    }
    if !cpu_csv.is_empty() {
        cli::parse_jobs_csv(&cpu_csv, CsvInput::CpuJobs)?;
    }
    if !out_csv.is_empty() {
        cli::parse_outages_csv(&out_csv)?;
    }

    let mut pipeline = Pipeline::delta();
    if let Some(w) = flags.value("window") {
        let secs: u64 = w
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --window {w:?}")))?;
        pipeline.coalesce_window = Duration::from_secs(secs);
    }
    let (report, quarantine) =
        pipeline.run_lenient(log.as_slice(), year, &gpu_csv, &cpu_csv, &out_csv);
    for caveat in &quarantine.caveats {
        eprintln!("caveat: {caveat:?}");
    }
    println!(
        "study ready: {} coalesced errors, {} GPU jobs joined, {} outages",
        report.errors.len(),
        report.impact.gpu_failed_jobs(),
        report.availability.outage_count()
    );

    let store = Arc::new(servd::StoreHandle::new(servd::StudyStore::build(
        report,
        Some(&quarantine),
    )));

    let mut config = servd::ServerConfig {
        addr: flags.value("addr").unwrap_or("127.0.0.1:7171").to_owned(),
        ..servd::ServerConfig::default()
    };
    if let Some(n) = flags.value("threads") {
        config.workers = n
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --threads {n:?}")))?;
    }
    if let Some(n) = flags.value("max-conns") {
        config.max_queue = n
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --max-conns {n:?}")))?;
    }

    servd::signal::install();
    let server = servd::start(config, store)?;
    println!(
        "serving on http://{}  (SIGINT/SIGTERM to stop)",
        server.addr()
    );

    while !servd::signal::shutdown_requested() {
        std::thread::sleep(StdDuration::from_millis(100));
    }
    eprintln!("shutting down");
    server.shutdown();
    Ok(())
}

/// Picks the year under which a sample of the log's lines parses with the
/// fewest losses (same heuristic as `delta-cli analyze`).
fn probe_year(log: &[u8]) -> i32 {
    let text = String::from_utf8_lossy(log);
    let sample: Vec<&str> = text.lines().take(500).collect();
    let mut best = (usize::MAX, 2024);
    for year in 2022..=2026 {
        let mut probe = hpclog::archive::Archive::new();
        let (_, skipped) = probe.ingest_day(&sample.join("\n"), year);
        if skipped < best.0 {
            best = (skipped, year);
        }
    }
    best.1
}
