//! `delta-serve` — serve a computed study over HTTP.
//!
//! ```text
//! delta-serve <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!             [--addr HOST:PORT] [--threads N] [--max-conns N] [--window SECS]
//! delta-serve --ingest-dir DIR [--year N] [--ingest-queue N]
//!             [--publish-events N] [--publish-secs S] [--addr HOST:PORT] ...
//! ```
//!
//! **Batch mode** ingests the same inputs as `delta-cli analyze` (per-day
//! syslog files plus optional job/outage CSV exports), runs the lenient
//! pipeline once, builds the `servd` columnar store, and serves it until
//! SIGINT/SIGTERM.
//!
//! **Live-ingest mode** (`--ingest-dir`) starts with an empty study — or
//! the recovered state of a previous run of the same directory — and
//! accepts the corpus over HTTP instead:
//!
//! ```text
//! POST /ingest/logs?seq=N      raw syslog bytes, chunked any way you like
//! POST /ingest/jobs?seq=N      GPU job CSV rows
//! POST /ingest/cpu-jobs?seq=N  CPU job CSV rows
//! POST /ingest/outages?seq=N   outage CSV rows
//! POST /ingest/flush           publish + checkpoint now (barrier)
//! GET  /ingest/status          accepted/applied counts for resync
//! ```
//!
//! Every acknowledged (`200`) chunk is on disk in a write-ahead segment
//! before the response is sent, so a SIGKILL mid-ingest loses nothing: on
//! restart the checkpoint is restored and the WAL tail replayed. When the
//! bounded admission queue is full the server sheds load with `429` +
//! `Retry-After` instead of stalling readers.
//!
//! ```text
//! GET /tables/1 /tables/2 /tables/3 /fig2   the paper surfaces
//! GET /errors?host=&xid=&from=&to=          filtered coalesced errors (CSV)
//! GET /mtbe[?xid=]                          per-kind MTBE rows (CSV)
//! GET /rollup?metric=&bucket=&tz=&...       calendar-aware rollup cubes (CSV)
//! GET /jobs/impact                          Table II + failed-job total (CSV)
//! GET /availability                         §V-C summary (JSON)
//! GET /snapshot /healthz /metrics           serving metadata + Prometheus
//! GET /readyz                               snapshot age + ingest backlog (JSON)
//! GET /debug/traces?id=&slowest=&since=     slow-trace flight recorder (JSON)
//! GET /metrics/history?name=&from=&to=&step= self-scraped series history (JSON)
//! GET/POST /whatif?mttr_scale=&xid_rate=&...  counterfactual campaigns (JSON)
//! GET /whatif/jobs/ID                        poll a long campaign (202 -> 200)
//! ```
//!
//! Metrics are always on for a server (the registry powers `/metrics`).
//! Request tracing is on by default (`--trace-capacity 0` turns it
//! off): every response names its trace in an `X-Trace-Id` header, and
//! the slowest/error traces stay inspectable via `/debug/traces`.
//! Shared plumbing and the error taxonomy live in
//! [`delta_gpu_resilience::cli`].

use delta_gpu_resilience::cli::{self, parse_flags, CliError, Flags};
use delta_gpu_resilience::prelude::*;
use resilience::error::CsvInput;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help" | "-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, CliError::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
delta-serve — HTTP query server over a GPU resilience study

USAGE:
  delta-serve <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
              [--addr HOST:PORT] [--threads N] [--max-conns N] [--window SECS]
  delta-serve --ingest-dir DIR [--year N] [--ingest-queue N]
              [--publish-events N] [--publish-secs S]
              [--addr HOST:PORT] [--threads N] [--max-conns N] [--window SECS]

BATCH INPUTS (as in delta-cli analyze; exclusive with --ingest-dir)
  <LOG>...        per-day syslog files (or directories of them)
  --jobs FILE     GPU job export CSV
  --cpu-jobs FILE CPU job export CSV
  --outages FILE  outage export CSV

LIVE INGEST (accept the corpus over POST /ingest/*)
  --ingest-dir DIR    durable state directory (WAL + checkpoint); restarting
                      on the same DIR recovers every acknowledged chunk
  --year N            year for year-less syslog stamps on a fresh DIR
                      (default 2024; a recovered checkpoint wins)
  --ingest-queue N    admission queue depth; beyond it POSTs get 429 (default 256)
  --publish-events N  publish a fresh snapshot every N ingested lines (default 5000)
  --publish-secs S    ... or after S seconds, whichever comes first (default 2)

SERVER
  --window SECS   coalescing window Δt (default 20)
  --addr A        listen address (default 127.0.0.1:7171; use :0 for ephemeral)
  --threads N     event-loop threads (default 4)
  --max-conns N   connection headroom beyond the loops; over it: 503 (default 64)
  --shards N      host-range store shards for scatter-gather scans
                  (default: CPU cores, capped at 8; 1 disables scatter)

OBSERVABILITY
  --trace-capacity N  slowest traces kept per rolling flight-recorder
                      window; 0 disables request tracing (default 256)
  --scrape-secs S     /metrics/history self-scrape cadence in seconds;
                      0 disables the history store (default 10)
  --access-log        one Common Log Format line per request to stderr

WHAT-IF SERVICE (counterfactual simulation campaigns)
  --whatif-workers N  campaign worker threads; 0 disables /whatif (default 2)
  --whatif-queue N    campaigns queued ahead of the workers; beyond it new
                      specs get 429 + Retry-After (default 8)
  --whatif-rep-cap N  upper bound a request's reps= may ask for (default 32)

ENDPOINTS
  /tables/1 /tables/2 /tables/3 /fig2 /errors /mtbe /jobs/impact
  /availability /snapshot /healthz /readyz /metrics
  /rollup?metric=errors|mtbe|impact|availability
         [&bucket=hour|day|week|month] [&tz=UTC|America/Chicago|Europe/Berlin]
         [&from=] [&to=] [&host=] [&xid=]   pre-aggregated civil-time rollups
  /debug/traces[?id=HEX|slowest=N|since=UNIX_MS]   slow/error request traces
  /metrics/history?name=METRIC[&from=][&to=][&step=]   scraped series history
  /whatif?[mttr_scale=X][&xid_rate=XID:MULT]...[&sched=fifo|backfill]
         [&seed=N][&reps=N]   counterfactual campaign (GET or POST form body)
  /whatif/jobs/ID             poll a long-running campaign (202 -> 200)
  POST /ingest/{logs,jobs,cpu-jobs,outages}[?seq=N]  (with --ingest-dir)
  POST /ingest/flush    GET /ingest/status
";

fn run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "jobs",
            "cpu-jobs",
            "outages",
            "addr",
            "threads",
            "max-conns",
            "window",
            "shards",
            "ingest-dir",
            "year",
            "ingest-queue",
            "publish-events",
            "publish-secs",
            "trace-capacity",
            "scrape-secs",
            "whatif-workers",
            "whatif-queue",
            "whatif-rep-cap",
        ],
    )?;

    // The registry backs /metrics and the request/cache counters; a
    // server run is always instrumented.
    obs::set_enabled(true);

    if flags.value("ingest-dir").is_some() {
        return run_live(&flags);
    }
    if flags.positionals.is_empty() {
        return Err(CliError::Usage(
            "serve needs at least one log file (or --ingest-dir for live mode)".to_owned(),
        ));
    }

    // Ingest per-day logs exactly as `delta-cli analyze` does: year from
    // the filename when present, otherwise probed from a line sample.
    let mut log = Vec::new();
    let mut year = None;
    {
        let mut span = obs::span("stage_ingest");
        let files = cli::collect_log_files(&flags.positionals)?;
        for file in &files {
            let bytes = cli::read_bytes(file)?;
            if year.is_none() {
                year = cli::year_from_filename(file);
            }
            log.extend_from_slice(&bytes);
            if !log.ends_with(b"\n") {
                log.push(b'\n');
            }
        }
        span.add_items(files.len() as u64);
    }
    let year = year.unwrap_or_else(|| probe_year(&log));

    let gpu_csv = match flags.value("jobs") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    let cpu_csv = match flags.value("cpu-jobs") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    let out_csv = match flags.value("outages") {
        Some(path) => cli::read_to_string(path)?,
        None => String::new(),
    };
    // Strict-parse the CSVs first so schema errors surface as clean CLI
    // errors instead of silent quarantine rows.
    if !gpu_csv.is_empty() {
        cli::parse_jobs_csv(&gpu_csv, CsvInput::GpuJobs)?;
    }
    if !cpu_csv.is_empty() {
        cli::parse_jobs_csv(&cpu_csv, CsvInput::CpuJobs)?;
    }
    if !out_csv.is_empty() {
        cli::parse_outages_csv(&out_csv)?;
    }

    let pipeline = pipeline_from_flags(&flags)?;
    let (report, quarantine) =
        pipeline.run_lenient(log.as_slice(), year, &gpu_csv, &cpu_csv, &out_csv);
    for caveat in &quarantine.caveats {
        eprintln!("caveat: {caveat:?}");
    }
    println!(
        "study ready: {} coalesced errors, {} GPU jobs joined, {} outages",
        report.errors.len(),
        report.impact.gpu_failed_jobs(),
        report.availability.outage_count()
    );

    let store = Arc::new(servd::StoreHandle::new(servd::StudyStore::build_sharded(
        report,
        Some(&quarantine),
        shards_from_flags(&flags)?,
    )));

    let config = server_config_from_flags(&flags)?;
    servd::signal::install();
    let server = servd::start(config, store)?;
    println!(
        "serving on http://{}  (SIGINT/SIGTERM to stop)",
        server.addr()
    );

    while !servd::signal::shutdown_requested() {
        std::thread::sleep(StdDuration::from_millis(100));
    }
    eprintln!("shutting down");
    server.shutdown();
    Ok(())
}

/// Live-ingest mode: recover (or initialize) the durable ingest state,
/// serve the recovered snapshot immediately, and accept new chunks over
/// `POST /ingest/*` until SIGINT/SIGTERM.
fn run_live(flags: &Flags) -> Result<(), CliError> {
    if !flags.positionals.is_empty() {
        return Err(CliError::Usage(
            "--ingest-dir is exclusive with log file arguments (POST them to /ingest/logs)"
                .to_owned(),
        ));
    }
    for batch_only in ["jobs", "cpu-jobs", "outages"] {
        if flags.value(batch_only).is_some() {
            return Err(CliError::Usage(format!(
                "--ingest-dir is exclusive with --{batch_only} (POST rows to the ingest endpoints)"
            )));
        }
    }

    let dir = flags.value("ingest-dir").unwrap_or_default();
    let mut ingest_config = servd::IngestConfig::new(dir);
    if let Some(n) = flags.value("ingest-queue") {
        ingest_config.queue_capacity = n
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --ingest-queue {n:?}")))?;
        if ingest_config.queue_capacity == 0 {
            return Err(CliError::Usage(
                "--ingest-queue must be positive".to_owned(),
            ));
        }
    }
    if let Some(n) = flags.value("publish-events") {
        ingest_config.publish_every_events = n
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --publish-events {n:?}")))?;
    }
    if let Some(s) = flags.value("publish-secs") {
        let secs: u64 = s
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --publish-secs {s:?}")))?;
        ingest_config.publish_every = StdDuration::from_secs(secs);
    }
    let year: i32 = match flags.value("year") {
        Some(y) => y
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --year {y:?}")))?,
        None => 2024,
    };

    let pipeline = pipeline_from_flags(flags)?;
    let recovered = servd::ingest::recover(ingest_config, pipeline, year)?;
    let accepted = recovered.accepted;
    println!(
        "ingest state recovered: logs={} jobs={} cpu-jobs={} outages={} chunks accepted, {} replayed from WAL",
        accepted[0], accepted[1], accepted[2], accepted[3], recovered.replayed
    );

    // Serve what survived the restart immediately; the worker republishes
    // on its cadence as new chunks land.
    let (report, quarantine) = recovered.engine.materialize_full();
    println!(
        "study ready: {} coalesced errors, {} GPU jobs joined, {} outages",
        report.errors.len(),
        report.impact.gpu_failed_jobs(),
        report.availability.outage_count()
    );
    // The handle remembers this shard count; every snapshot the ingest
    // worker publishes keeps the same layout.
    let store = Arc::new(servd::StoreHandle::new(servd::StudyStore::build_sharded(
        report,
        Some(&quarantine),
        shards_from_flags(flags)?,
    )));

    let worker = servd::ingest::spawn_worker(
        recovered.engine,
        Arc::clone(&recovered.handle),
        Arc::clone(&store),
    );

    let config = server_config_from_flags(flags)?;
    servd::signal::install();
    let server = servd::start_with_ingest(config, store, Some(Arc::clone(&recovered.handle)))?;
    println!(
        "serving on http://{}  (live ingest on /ingest/*; SIGINT/SIGTERM to stop)",
        server.addr()
    );

    while !servd::signal::shutdown_requested() {
        std::thread::sleep(StdDuration::from_millis(100));
    }
    eprintln!("shutting down");
    // Stop accepting HTTP first, then drain the queue so everything
    // acknowledged is applied, published, and checkpointed before exit.
    server.shutdown();
    worker.stop();
    Ok(())
}

/// Shared pipeline construction: the `--window` flag applies in both
/// modes (in live mode, only to a fresh directory — a recovered
/// checkpoint carries its own configuration).
fn pipeline_from_flags(flags: &Flags) -> Result<Pipeline, CliError> {
    let mut pipeline = Pipeline::delta();
    if let Some(w) = flags.value("window") {
        let secs: u64 = w
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --window {w:?}")))?;
        pipeline.coalesce_window = Duration::from_secs(secs);
    }
    Ok(pipeline)
}

/// How many host-range shards each published store is split into.
/// Defaults to the core count (capped at 8, like the scan pool): more
/// shards than workers only adds merge overhead.
fn shards_from_flags(flags: &Flags) -> Result<usize, CliError> {
    match flags.value("shards") {
        Some(n) => {
            let shards: usize = n
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --shards {n:?}")))?;
            if shards == 0 {
                return Err(CliError::Usage("--shards must be positive".to_owned()));
            }
            Ok(shards)
        }
        None => Ok(std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8)),
    }
}

/// Shared server flag parsing (`--addr`, `--threads`, `--max-conns`,
/// and the observability trio). Tracing and self-scraping default *on*
/// for the binary (256 traces, 10 s cadence) — the library default is
/// off, but a served study should be inspectable out of the box.
fn server_config_from_flags(flags: &Flags) -> Result<servd::ServerConfig, CliError> {
    let mut config = servd::ServerConfig {
        addr: flags.value("addr").unwrap_or("127.0.0.1:7171").to_owned(),
        ..servd::ServerConfig::default()
    };
    config.workers = cli::parse_num_flag(flags, "threads", config.workers)?;
    config.max_queue = cli::parse_num_flag(flags, "max-conns", config.max_queue)?;
    config.trace_capacity = cli::parse_num_flag(flags, "trace-capacity", 256)?;
    config.scrape_secs = cli::parse_num_flag(flags, "scrape-secs", 10)?;
    config.access_log = flags.has("access-log");
    config.whatif.workers = cli::parse_num_flag(flags, "whatif-workers", config.whatif.workers)?;
    config.whatif.queue_capacity =
        cli::parse_num_flag(flags, "whatif-queue", config.whatif.queue_capacity)?;
    config.whatif.rep_cap = cli::parse_num_flag(flags, "whatif-rep-cap", config.whatif.rep_cap)?;
    if config.whatif.workers > 0
        && (config.whatif.queue_capacity == 0 || config.whatif.rep_cap == 0)
    {
        return Err(CliError::Usage(
            "--whatif-queue and --whatif-rep-cap must be positive (use --whatif-workers 0 to disable the service)"
                .to_owned(),
        ));
    }
    Ok(config)
}

/// Picks the year under which a sample of the log's lines parses with the
/// fewest losses (same heuristic as `delta-cli analyze`).
fn probe_year(log: &[u8]) -> i32 {
    let text = String::from_utf8_lossy(log);
    let sample: Vec<&str> = text.lines().take(500).collect();
    let mut best = (usize::MAX, 2024);
    for year in 2022..=2026 {
        let mut probe = hpclog::archive::Archive::new();
        let (_, skipped) = probe.ingest_day(&sample.join("\n"), year);
        if skipped < best.0 {
            best = (skipped, year);
        }
    }
    best.1
}
