//! `delta-cli` — the command-line face of the reproduction.
//!
//! ```text
//! delta-cli analyze  <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!                    [--window SECS] [--deep]
//! delta-cli simulate [--scale F] [--seed N] --out DIR
//! delta-cli taxonomy
//! ```
//!
//! * `analyze` runs the paper's pipeline over real (or simulator-written)
//!   per-day log files, optionally joined against CSV job/outage exports
//!   (schemas in `resilience::csvio`), and prints every table plus — with
//!   `--deep` — the survival/concentration/burstiness extensions.
//! * `simulate` runs a seeded campaign and writes the raw artifacts
//!   (per-day logs, job CSV, outage CSV) to a directory, producing a
//!   self-contained synthetic dataset for the `analyze` path or external
//!   tools.
//! * `taxonomy` prints the XID reference table.

use delta_gpu_resilience::prelude::*;
use resilience::csvio;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("taxonomy") => cmd_taxonomy(),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
delta-cli — A100 GPU resilience analysis (DSN'25 reproduction)

USAGE:
  delta-cli analyze <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
                    [--window SECS] [--deep]
  delta-cli simulate [--scale F] [--seed N] --out DIR
  delta-cli taxonomy

ANALYZE
  <LOG>...        per-day syslog files (or directories of them)
  --jobs FILE     GPU job export (CSV: id,name,submit,start,end,gpus,gpu_slots,state)
  --cpu-jobs FILE CPU job export (same schema, gpus=0)
  --outages FILE  outage export (CSV: host,start,duration_secs)
  --window SECS   coalescing window Δt (default 20)
  --periods MODE  'delta' (the paper's calendar, default) or 'auto'
                  (infer the window from the data span, keeping Delta's
                  23%/77% pre-op/op split — use for scaled datasets)
  --deep          also run survival / concentration / burstiness analyses

SIMULATE
  --scale F       calendar scale in (0,1], default 0.05
  --seed N        campaign seed, default 0xDE17A
  --out DIR       output directory (created if missing)
";

/// Minimal flag parser: positionals plus `--flag value` / `--flag`.
#[derive(Debug)]
struct Flags {
    positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

fn parse_flags(args: &[String], value_flags: &[&str]) -> Result<Flags, String> {
    let mut positionals = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone();
                options.push((name.to_owned(), Some(value)));
            } else {
                options.push((name.to_owned(), None));
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(Flags {
        positionals,
        options,
    })
}

impl Flags {
    fn value(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.options.iter().any(|(n, _)| n == name)
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Collects log files from file and directory arguments.
fn collect_log_files(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            let entries = std::fs::read_dir(path).map_err(|e| format!("reading dir {p}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("reading dir {p}: {e}"))?;
                if entry.path().is_file() {
                    files.push(entry.path());
                }
            }
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    files.sort();
    Ok(files)
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["jobs", "cpu-jobs", "outages", "window", "periods"])?;
    if flags.positionals.is_empty() {
        return Err(format!("analyze needs at least one log file\n{USAGE}"));
    }

    // Ingest logs. Syslog lines carry no year, so resolve it per file:
    // prefer a `...YYYYMMDD...` date in the filename (what `simulate`
    // writes); otherwise probe candidate years on a small line sample and
    // keep the year that parses best. Either way each file is fully
    // parsed exactly once.
    let mut archive = hpclog::archive::Archive::new();
    let mut skipped_total = 0;
    for file in collect_log_files(&flags.positionals)? {
        let text = read_file(&file.display().to_string())?;
        let year = year_from_filename(&file).unwrap_or_else(|| probe_year(&text));
        let (_, skipped) = archive.ingest_day(&text, year);
        skipped_total += skipped;
    }
    println!(
        "ingested {} lines over {} days ({} unparseable lines skipped)",
        archive.line_count(),
        archive.day_count(),
        skipped_total
    );

    let gpu_jobs = match flags.value("jobs") {
        Some(path) => csvio::parse_jobs(&read_file(path)?).map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let cpu_jobs = match flags.value("cpu-jobs") {
        Some(path) => csvio::parse_jobs(&read_file(path)?).map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let outages = match flags.value("outages") {
        Some(path) => csvio::parse_outages(&read_file(path)?).map_err(|e| e.to_string())?,
        None => Vec::new(),
    };

    let mut pipeline = Pipeline::delta();
    if let Some(w) = flags.value("window") {
        let secs: u64 = w.parse().map_err(|_| format!("bad --window {w:?}"))?;
        pipeline.coalesce_window = Duration::from_secs(secs);
    }
    match flags.value("periods").unwrap_or("delta") {
        "delta" => {}
        "auto" => {
            pipeline.periods =
                infer_periods(&archive, &gpu_jobs).ok_or("cannot infer periods from empty data")?;
            println!(
                "inferred calendar: pre-op {} .. op {} .. {}",
                pipeline.periods.pre_op.start, pipeline.periods.op.start, pipeline.periods.op.end
            );
        }
        other => return Err(format!("bad --periods {other:?} (expected delta|auto)")),
    }
    let report_out = pipeline.run(&archive, &gpu_jobs, &cpu_jobs, &outages);

    println!("\n=== Table I ===\n{}", report::table1(&report_out));
    if !gpu_jobs.is_empty() {
        println!("=== Table II ===\n{}", report::table2(&report_out));
        println!("=== Table III ===\n{}", report::table3(&report_out));
    }
    if !outages.is_empty() {
        println!("=== Figure 2 ===\n{}", report::figure2(&report_out));
    }
    println!("=== Findings ===\n{}", Findings::evaluate(&report_out));

    if flags.has("deep") {
        println!("\n=== Deep analyses ===\n{}", report::deep(&report_out));
    }
    Ok(())
}

/// Extracts a plausible year from a `...YYYYMMDD...` filename component.
fn year_from_filename(path: &Path) -> Option<i32> {
    let name = path.file_stem()?.to_str()?;
    let digits: Vec<&str> = name
        .split(|c: char| !c.is_ascii_digit())
        .filter(|chunk| chunk.len() == 8)
        .collect();
    for chunk in digits {
        let year: i32 = chunk[..4].parse().ok()?;
        if (1970..=2100).contains(&year) {
            return Some(year);
        }
    }
    None
}

/// Picks the year under which a sample of the file's lines parses with the
/// fewest losses (leap days make wrong years lose lines).
fn probe_year(text: &str) -> i32 {
    let sample: Vec<&str> = text.lines().take(500).collect();
    let mut best = (usize::MAX, 2024);
    for year in 2022..=2026 {
        let mut probe = hpclog::archive::Archive::new();
        let (_, skipped) = probe.ingest_day(&sample.join("\n"), year);
        if skipped < best.0 {
            best = (skipped, year);
        }
    }
    best.1
}

/// Infers a study calendar from the observed data span, keeping Delta's
/// 273:896-day pre-op/op proportions.
fn infer_periods(
    archive: &hpclog::archive::Archive,
    jobs: &[resilience::AccountedJob],
) -> Option<StudyPeriods> {
    let (mut first, mut last) = archive.time_span()?;
    for j in jobs {
        first = first.min(j.submit);
        last = last.max(j.end);
    }
    if last <= first {
        return None;
    }
    let span = (last - first).as_secs() + 1;
    let boundary = first + Duration::from_secs(span * 273 / 1169);
    Some(StudyPeriods {
        pre_op: Period::new(first, boundary),
        op: Period::new(boundary, last + Duration::from_secs(1)),
    })
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["scale", "seed", "out"])?;
    let scale: f64 = flags
        .value("scale")
        .unwrap_or("0.05")
        .parse()
        .map_err(|_| "bad --scale")?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err("--scale must be in (0, 1]".into());
    }
    let seed: u64 = flags
        .value("seed")
        .unwrap_or("911706")
        .parse()
        .map_err(|_| "bad --seed")?;
    let out_dir = PathBuf::from(flags.value("out").ok_or("simulate needs --out DIR")?);
    std::fs::create_dir_all(out_dir.join("logs"))
        .map_err(|e| format!("creating {out_dir:?}: {e}"))?;

    let mut config = if scale >= 1.0 {
        FaultConfig::delta()
    } else {
        FaultConfig::delta_scaled(scale)
    };
    config.seed = seed;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = if scale >= 1.0 {
        WorkloadConfig::delta()
    } else {
        WorkloadConfig::delta_scaled(scale)
    };
    let outcome =
        Simulation::new(&cluster, workload, seed).run(&campaign.ground_truth, &campaign.holds);

    // Per-day log files.
    let mut days = 0;
    for (day, _) in campaign.archive.days() {
        let text = campaign.archive.render_day(day).expect("day exists");
        let date = Timestamp::from_unix(day * 86_400);
        let (y, m, d) = date.ymd();
        let path = out_dir
            .join("logs")
            .join(format!("syslog-{y:04}{m:02}{d:02}.log"));
        std::fs::write(&path, text).map_err(|e| format!("writing {path:?}: {e}"))?;
        days += 1;
    }
    // Job + outage CSVs.
    let jobs_csv = csvio::render_jobs(&bridge::jobs(&outcome.jobs));
    std::fs::write(out_dir.join("gpu_jobs.csv"), jobs_csv).map_err(|e| e.to_string())?;
    let cpu_csv = csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs));
    std::fs::write(out_dir.join("cpu_jobs.csv"), cpu_csv).map_err(|e| e.to_string())?;
    let outage_csv = csvio::render_outages(&bridge::outages(campaign.ledger.outages()));
    std::fs::write(out_dir.join("outages.csv"), outage_csv).map_err(|e| e.to_string())?;

    println!(
        "wrote {days} log days, {} GPU jobs, {} CPU jobs, {} outages to {}",
        outcome.jobs.len(),
        outcome.cpu_jobs.len(),
        campaign.ledger.outage_count(),
        out_dir.display()
    );
    println!(
        "analyze it back with:\n  delta-cli analyze {}/logs --jobs {}/gpu_jobs.csv --cpu-jobs {}/cpu_jobs.csv --outages {}/outages.csv",
        out_dir.display(),
        out_dir.display(),
        out_dir.display(),
        out_dir.display()
    );
    Ok(())
}

fn cmd_taxonomy() -> Result<(), String> {
    println!(
        "{:<10} {:<26} {:<13} {:<17} Description",
        "XID", "Event", "Category", "Recovery"
    );
    for kind in ErrorKind::STUDIED {
        let codes: Vec<String> = kind.codes().iter().map(u16::to_string).collect();
        println!(
            "{:<10} {:<26} {:<13} {:<17} {}",
            codes.join("/"),
            kind.abbreviation(),
            kind.category().label(),
            kind.recovery().label(),
            kind.description()
        );
    }
    for kind in [ErrorKind::GpuSoftware, ErrorKind::ResetChannel] {
        let codes: Vec<String> = kind.codes().iter().map(u16::to_string).collect();
        println!(
            "{:<10} {:<26} {:<13} {:<17} {} (excluded from the study)",
            codes.join("/"),
            kind.abbreviation(),
            kind.category().label(),
            kind.recovery().label(),
            kind.description()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_positionals_and_options() {
        let flags = parse_flags(
            &args(&["logs/a.log", "--jobs", "j.csv", "--deep", "logs/b.log"]),
            &["jobs"],
        )
        .unwrap();
        assert_eq!(flags.positionals, vec!["logs/a.log", "logs/b.log"]);
        assert_eq!(flags.value("jobs"), Some("j.csv"));
        assert!(flags.has("deep"));
        assert!(!flags.has("jobs") || flags.value("jobs").is_some());
        assert_eq!(flags.value("missing"), None);
    }

    #[test]
    fn value_flag_without_value_errors() {
        let err = parse_flags(&args(&["--jobs"]), &["jobs"]).unwrap_err();
        assert!(err.contains("--jobs"));
    }

    #[test]
    fn later_values_win() {
        let flags = parse_flags(&args(&["--seed", "1", "--seed", "2"]), &["seed"]).unwrap();
        assert_eq!(flags.value("seed"), Some("2"));
    }

    #[test]
    fn infer_periods_keeps_delta_ratio() {
        let mut archive = hpclog::archive::Archive::new();
        let start = Timestamp::from_ymd_hms(2022, 1, 1, 0, 0, 0).unwrap();
        let end = start + Duration::from_days(1169);
        archive.push(hpclog::LogLine::new(start, "gpub001", "kernel", "first"));
        archive.push(hpclog::LogLine::new(end, "gpub001", "kernel", "last"));
        let periods = infer_periods(&archive, &[]).unwrap();
        assert_eq!(periods.pre_op.start, start);
        let pre_days = periods.pre_op.days();
        assert!((pre_days - 273.0).abs() < 1.5, "{pre_days}");
        assert!(periods.op.end > end);
    }

    #[test]
    fn year_from_filename_variants() {
        assert_eq!(
            year_from_filename(Path::new("syslog-20220105.log")),
            Some(2022)
        );
        assert_eq!(
            year_from_filename(Path::new("logs/node-20251231-full.log")),
            Some(2025)
        );
        assert_eq!(year_from_filename(Path::new("messages.log")), None);
        assert_eq!(year_from_filename(Path::new("build-12345678.log")), None); // year 1234 out of range
    }

    #[test]
    fn probe_year_prefers_parseable_year() {
        // Feb 29 only parses in 2024 among the candidates.
        let text = "Feb 29 12:00:00 gpub001 kernel: leap day\n";
        assert_eq!(probe_year(text), 2024);
    }

    #[test]
    fn infer_periods_empty_is_none() {
        let archive = hpclog::archive::Archive::new();
        assert!(infer_periods(&archive, &[]).is_none());
    }
}
