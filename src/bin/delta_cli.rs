//! `delta-cli` — the command-line face of the reproduction.
//!
//! ```text
//! delta-cli analyze  <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
//!                    [--window SECS] [--deep] [--rollup BUCKET[@TZ]]
//!                    [--metrics-out FILE]
//! delta-cli simulate [--scale F] [--seed N] --out DIR [--metrics-out FILE]
//! delta-cli taxonomy
//! ```
//!
//! * `analyze` runs the paper's pipeline over real (or simulator-written)
//!   per-day log files, optionally joined against CSV job/outage exports
//!   (schemas in `resilience::csvio`), and prints every table plus — with
//!   `--deep` — the survival/concentration/burstiness extensions.
//! * `simulate` runs a seeded campaign and writes the raw artifacts
//!   (per-day logs, job CSV, outage CSV) to a directory, producing a
//!   self-contained synthetic dataset for the `analyze` path or external
//!   tools.
//! * `taxonomy` prints the XID reference table.
//!
//! Both workloads accept `--metrics-out FILE` (with optional
//! `--metrics-format prom|json`, defaulting by extension): the run then
//! records stage metrics and spans into the `obs` registry and writes the
//! exposition on exit. Shared plumbing and the error taxonomy live in
//! [`delta_gpu_resilience::cli`].

use delta_gpu_resilience::cli::{self, parse_flags, CliError, MetricsSink};
use delta_gpu_resilience::prelude::*;
use resilience::csvio;
use resilience::error::CsvInput;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("taxonomy") => cmd_taxonomy(),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, CliError::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
delta-cli — A100 GPU resilience analysis (DSN'25 reproduction)

USAGE:
  delta-cli analyze <LOG>... [--jobs FILE] [--cpu-jobs FILE] [--outages FILE]
                    [--window SECS] [--deep] [--rollup BUCKET[@TZ]]
                    [--metrics-out FILE]
  delta-cli simulate [--scale F] [--seed N] --out DIR [--metrics-out FILE]
  delta-cli taxonomy

ANALYZE
  <LOG>...        per-day syslog files (or directories of them)
  --jobs FILE     GPU job export (CSV: id,name,submit,start,end,gpus,gpu_slots,state)
  --cpu-jobs FILE CPU job export (same schema, gpus=0)
  --outages FILE  outage export (CSV: host,start,duration_secs)
  --window SECS   coalescing window Δt (default 20)
  --periods MODE  'delta' (the paper's calendar, default) or 'auto'
                  (infer the window from the data span, keeping Delta's
                  23%/77% pre-op/op split — use for scaled datasets)
  --deep          also run survival / concentration / burstiness analyses
  --rollup SPEC   also print a calendar-aware error rollup; SPEC is
                  BUCKET[@TZ] with BUCKET one of hour|day|week|month and
                  TZ one of UTC|America/Chicago|Europe/Berlin (DST-aware,
                  default UTC) — e.g. 'day', 'week@America/Chicago'

SIMULATE
  --scale F       calendar scale in (0,1], default 0.05
  --seed N        campaign seed, default 0xDE17A
  --out DIR       output directory (created if missing)

METRICS (both analyze and simulate)
  --metrics-out FILE    record stage metrics + spans, write exposition here
  --metrics-format FMT  'prom' (Prometheus text) or 'json'
                        (default: by FILE extension, .json means json)
";

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &[
            "jobs",
            "cpu-jobs",
            "outages",
            "window",
            "periods",
            "rollup",
            "metrics-out",
            "metrics-format",
        ],
    )?;
    if flags.positionals.is_empty() {
        return Err(CliError::Usage(
            "analyze needs at least one log file".to_owned(),
        ));
    }
    let metrics = MetricsSink::from_flags(&flags)?;

    // Ingest logs. Syslog lines carry no year, so resolve it per file:
    // prefer a `...YYYYMMDD...` date in the filename (what `simulate`
    // writes); otherwise probe candidate years on a small line sample and
    // keep the year that parses best. Either way each file is fully
    // parsed exactly once.
    let mut archive = hpclog::archive::Archive::new();
    let mut skipped_total = 0;
    {
        let mut span = obs::span("stage_ingest");
        for file in cli::collect_log_files(&flags.positionals)? {
            let text = cli::read_to_string(&file)?;
            let year = cli::year_from_filename(&file).unwrap_or_else(|| probe_year(&text));
            let (_, skipped) = archive.ingest_day(&text, year);
            skipped_total += skipped;
        }
        span.add_items(archive.line_count() as u64);
    }
    println!(
        "ingested {} lines over {} days ({} unparseable lines skipped)",
        archive.line_count(),
        archive.day_count(),
        skipped_total
    );

    let gpu_jobs = match flags.value("jobs") {
        Some(path) => cli::parse_jobs_csv(&cli::read_to_string(path)?, CsvInput::GpuJobs)?,
        None => Vec::new(),
    };
    let cpu_jobs = match flags.value("cpu-jobs") {
        Some(path) => cli::parse_jobs_csv(&cli::read_to_string(path)?, CsvInput::CpuJobs)?,
        None => Vec::new(),
    };
    let outages = match flags.value("outages") {
        Some(path) => cli::parse_outages_csv(&cli::read_to_string(path)?)?,
        None => Vec::new(),
    };

    let mut pipeline = Pipeline::delta();
    if let Some(w) = flags.value("window") {
        let secs: u64 = w
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --window {w:?}")))?;
        pipeline.coalesce_window = Duration::from_secs(secs);
    }
    match flags.value("periods").unwrap_or("delta") {
        "delta" => {}
        "auto" => {
            pipeline.periods = infer_periods(&archive, &gpu_jobs).ok_or_else(|| {
                CliError::Invalid("cannot infer periods from empty data".to_owned())
            })?;
            println!(
                "inferred calendar: pre-op {} .. op {} .. {}",
                pipeline.periods.pre_op.start, pipeline.periods.op.start, pipeline.periods.op.end
            );
        }
        other => {
            return Err(CliError::Usage(format!(
                "bad --periods {other:?} (expected delta|auto)"
            )))
        }
    }
    let report_out = pipeline.run(&archive, &gpu_jobs, &cpu_jobs, &outages);

    println!("\n=== Table I ===\n{}", report::table1(&report_out));
    if !gpu_jobs.is_empty() {
        println!("=== Table II ===\n{}", report::table2(&report_out));
        println!("=== Table III ===\n{}", report::table3(&report_out));
    }
    if !outages.is_empty() {
        println!("=== Figure 2 ===\n{}", report::figure2(&report_out));
    }
    println!("=== Findings ===\n{}", Findings::evaluate(&report_out));

    if let Some(spec) = flags.value("rollup") {
        let (bucket, tz) = cli::parse_rollup_spec(spec)?;
        let cube = resilience::rollup::RollupCube::build(
            &tz,
            bucket,
            report_out.errors.iter().map(|e| (e.time, e.kind)),
        );
        println!(
            "\n=== Error rollup ({} buckets, {}) ===",
            bucket.as_str(),
            tz.name()
        );
        println!("bucket,start,end,count");
        for cell in cube.cells() {
            println!(
                "{},{},{},{}",
                tz.bucket_label(bucket, cell.start),
                cell.start,
                cell.end,
                cell.total
            );
        }
    }

    if flags.has("deep") {
        println!("\n=== Deep analyses ===\n{}", report::deep(&report_out));
    }
    if let Some(sink) = &metrics {
        sink.write()?;
        println!("metrics written to {}", sink.path.display());
    }
    Ok(())
}

/// Picks the year under which a sample of the file's lines parses with the
/// fewest losses (leap days make wrong years lose lines).
fn probe_year(text: &str) -> i32 {
    let sample: Vec<&str> = text.lines().take(500).collect();
    let mut best = (usize::MAX, 2024);
    for year in 2022..=2026 {
        let mut probe = hpclog::archive::Archive::new();
        let (_, skipped) = probe.ingest_day(&sample.join("\n"), year);
        if skipped < best.0 {
            best = (skipped, year);
        }
    }
    best.1
}

/// Infers a study calendar from the observed data span, keeping Delta's
/// 273:896-day pre-op/op proportions.
fn infer_periods(
    archive: &hpclog::archive::Archive,
    jobs: &[resilience::AccountedJob],
) -> Option<StudyPeriods> {
    let (mut first, mut last) = archive.time_span()?;
    for j in jobs {
        first = first.min(j.submit);
        last = last.max(j.end);
    }
    if last <= first {
        return None;
    }
    let span = (last - first).as_secs() + 1;
    let boundary = first + Duration::from_secs(span * 273 / 1169);
    Some(StudyPeriods {
        pre_op: Period::new(first, boundary),
        op: Period::new(boundary, last + Duration::from_secs(1)),
    })
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(
        args,
        &["scale", "seed", "out", "metrics-out", "metrics-format"],
    )?;
    let metrics = MetricsSink::from_flags(&flags)?;
    let scale: f64 = flags
        .value("scale")
        .unwrap_or("0.05")
        .parse()
        .map_err(|_| CliError::Usage("bad --scale".to_owned()))?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(CliError::Usage("--scale must be in (0, 1]".to_owned()));
    }
    let seed: u64 = flags
        .value("seed")
        .unwrap_or("911706")
        .parse()
        .map_err(|_| CliError::Usage("bad --seed".to_owned()))?;
    let out_dir = PathBuf::from(
        flags
            .value("out")
            .ok_or_else(|| CliError::Usage("simulate needs --out DIR".to_owned()))?,
    );
    let logs_dir = out_dir.join("logs");
    std::fs::create_dir_all(&logs_dir).map_err(|source| CliError::Io {
        action: "creating",
        path: logs_dir.clone(),
        source,
    })?;

    let mut config = if scale >= 1.0 {
        FaultConfig::delta()
    } else {
        FaultConfig::delta_scaled(scale)
    };
    config.seed = seed;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = if scale >= 1.0 {
        WorkloadConfig::delta()
    } else {
        WorkloadConfig::delta_scaled(scale)
    };
    let outcome =
        Simulation::new(&cluster, workload, seed).run(&campaign.ground_truth, &campaign.holds);

    // Per-day log files. `days()` yields exactly the keys `render_day`
    // accepts, so a miss is a bug in `Archive` — report it, don't panic.
    let mut days = 0;
    {
        let mut span = obs::span("stage_write_artifacts");
        for (day, _) in campaign.archive.days() {
            let text = campaign.archive.render_day(day).ok_or_else(|| {
                CliError::Invalid(format!("archive listed day {day} but cannot render it"))
            })?;
            let date = Timestamp::from_unix(day * 86_400);
            let (y, m, d) = date.ymd();
            let path = logs_dir.join(format!("syslog-{y:04}{m:02}{d:02}.log"));
            cli::write_file(&path, text, "writing")?;
            days += 1;
        }
        // Job + outage CSVs.
        let jobs_csv = csvio::render_jobs(&bridge::jobs(&outcome.jobs));
        cli::write_file(out_dir.join("gpu_jobs.csv"), jobs_csv, "writing")?;
        let cpu_csv = csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs));
        cli::write_file(out_dir.join("cpu_jobs.csv"), cpu_csv, "writing")?;
        let outage_csv = csvio::render_outages(&bridge::outages(campaign.ledger.outages()));
        cli::write_file(out_dir.join("outages.csv"), outage_csv, "writing")?;
        span.add_items(days + 3);
    }

    println!(
        "wrote {days} log days, {} GPU jobs, {} CPU jobs, {} outages to {}",
        outcome.jobs.len(),
        outcome.cpu_jobs.len(),
        campaign.ledger.outage_count(),
        out_dir.display()
    );
    println!(
        "analyze it back with:\n  delta-cli analyze {}/logs --jobs {}/gpu_jobs.csv --cpu-jobs {}/cpu_jobs.csv --outages {}/outages.csv",
        out_dir.display(),
        out_dir.display(),
        out_dir.display(),
        out_dir.display()
    );
    if let Some(sink) = &metrics {
        sink.write()?;
        println!("metrics written to {}", sink.path.display());
    }
    Ok(())
}

fn cmd_taxonomy() -> Result<(), CliError> {
    println!(
        "{:<10} {:<26} {:<13} {:<17} Description",
        "XID", "Event", "Category", "Recovery"
    );
    for kind in ErrorKind::STUDIED {
        let codes: Vec<String> = kind.codes().iter().map(u16::to_string).collect();
        println!(
            "{:<10} {:<26} {:<13} {:<17} {}",
            codes.join("/"),
            kind.abbreviation(),
            kind.category().label(),
            kind.recovery().label(),
            kind.description()
        );
    }
    for kind in [ErrorKind::GpuSoftware, ErrorKind::ResetChannel] {
        let codes: Vec<String> = kind.codes().iter().map(u16::to_string).collect();
        println!(
            "{:<10} {:<26} {:<13} {:<17} {} (excluded from the study)",
            codes.join("/"),
            kind.abbreviation(),
            kind.category().label(),
            kind.recovery().label(),
            kind.description()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_periods_keeps_delta_ratio() {
        let mut archive = hpclog::archive::Archive::new();
        let start = Timestamp::from_ymd_hms(2022, 1, 1, 0, 0, 0).unwrap();
        let end = start + Duration::from_days(1169);
        archive.push(hpclog::LogLine::new(start, "gpub001", "kernel", "first"));
        archive.push(hpclog::LogLine::new(end, "gpub001", "kernel", "last"));
        let periods = infer_periods(&archive, &[]).unwrap();
        assert_eq!(periods.pre_op.start, start);
        let pre_days = periods.pre_op.days();
        assert!((pre_days - 273.0).abs() < 1.5, "{pre_days}");
        assert!(periods.op.end > end);
    }

    #[test]
    fn probe_year_prefers_parseable_year() {
        // Feb 29 only parses in 2024 among the candidates.
        let text = "Feb 29 12:00:00 gpub001 kernel: leap day\n";
        assert_eq!(probe_year(text), 2024);
    }

    #[test]
    fn infer_periods_empty_is_none() {
        let archive = hpclog::archive::Archive::new();
        assert!(infer_periods(&archive, &[]).is_none());
    }

    #[test]
    fn unknown_flags_still_parse_as_boolean() {
        let args: Vec<String> = vec!["--deep".to_owned()];
        let flags = parse_flags(&args, &["jobs"]).unwrap();
        assert!(flags.has("deep"));
    }
}
