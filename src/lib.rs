//! End-to-end reproduction of *"Characterizing Modern GPU Resilience and
//! Impact in HPC Systems: A Case Study of A100 GPUs"* (DSN 2025).
//!
//! This umbrella crate re-exports the whole workspace and provides the
//! [`bridge`] between the simulation substrates (which produce
//! `clustersim`/`slurmsim` records) and the analysis pipeline (which
//! consumes its own sacct-like input types, so it can equally ingest real
//! exports).
//!
//! # The crates
//!
//! | crate | role |
//! |-------|------|
//! | [`simrng`] | deterministic PRNG + distributions |
//! | [`simtime`] | civil time + the study calendar |
//! | [`xid`] | NVIDIA XID error taxonomy |
//! | [`hpclog`] | syslog substrate: formats, patterns, extraction |
//! | [`clustersim`] | the Delta cluster model |
//! | [`faultsim`] | calibrated discrete-event fault injection |
//! | [`slurmsim`] | workload generation + scheduling + error co-simulation |
//! | [`resilience`] | the paper's analysis pipeline |
//! | [`servd`] | HTTP query/serving subsystem over finished studies |
//!
//! # Quickstart
//!
//! ```
//! use delta_gpu_resilience::prelude::*;
//!
//! // 1. Inject faults over a scaled-down Delta for a fast demo.
//! let mut config = FaultConfig::delta_scaled(0.02);
//! config.seed = 42;
//! let campaign = Campaign::new(config).run();
//!
//! // 2. Run a matching workload through the scheduler.
//! let cluster = Cluster::new(campaign.config.spec);
//! let workload = WorkloadConfig::delta_scaled(0.002);
//! let outcome = Simulation::new(&cluster, workload, 42)
//!     .run(&campaign.ground_truth, &campaign.holds);
//!
//! // 3. Analyse logs + jobs + outages with the paper's pipeline.
//! let mut pipeline = Pipeline::delta();
//! pipeline.periods = campaign.config.periods;
//! let report = pipeline.run(
//!     &campaign.archive,
//!     &bridge::jobs(&outcome.jobs),
//!     &bridge::jobs(&outcome.cpu_jobs),
//!     &bridge::outages(campaign.ledger.outages()),
//! );
//! assert!(report.coalesce_summary.errors > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use clustersim;
pub use faultsim;
pub use hpclog;
pub use obs;
pub use resilience;
pub use servd;
pub use simrng;
pub use simtime;
pub use slurmsim;
pub use xid;

pub mod cli;

/// The common imports for examples and tests.
pub mod prelude {
    pub use crate::bridge;
    pub use clustersim::{Cluster, ClusterSpec, DowntimeLedger, GpuErrorEvent, GpuId, NodeId};
    pub use faultsim::{Campaign, CampaignOutput, FaultConfig, StormConfig};
    pub use resilience::findings::Findings;
    pub use resilience::report;
    pub use resilience::{
        AccountedJob, Caveat, OutageRecord, Pipeline, PipelineError, QuarantineReport, StudyReport,
    };
    pub use simrng::Rng;
    pub use simtime::{Bucket, Duration, Period, Phase, StudyPeriods, Timestamp, Tz};
    pub use slurmsim::{JobRecord, JobState, KillModel, Simulation, WorkloadConfig};
    pub use xid::{Category, ErrorKind, RecoveryAction, XidCode};
}

/// Conversions from simulator output records to analysis input records.
///
/// The analysis pipeline deliberately owns its input types (they model a
/// Slurm database export); these helpers map the simulators' richer
/// structures down to them.
pub mod bridge {
    use resilience::{AccountedJob, OutageRecord};

    /// Converts scheduler job records to sacct-style analysis records.
    pub fn jobs(records: &[slurmsim::JobRecord]) -> Vec<AccountedJob> {
        records.iter().map(job).collect()
    }

    /// Converts one job record.
    pub fn job(record: &slurmsim::JobRecord) -> AccountedJob {
        AccountedJob {
            id: record.id.0,
            name: record.name.clone(),
            submit: record.submit,
            start: record.start,
            end: record.end,
            gpus: record.gpus,
            gpu_slots: record
                .gpu_ids
                .iter()
                .map(|g| (g.node.hostname(), g.index))
                .collect(),
            completed: record.state.is_success(),
        }
    }

    /// Converts ledger outages to analysis outage records.
    pub fn outages(outages: &[clustersim::Outage]) -> Vec<OutageRecord> {
        outages
            .iter()
            .map(|o| OutageRecord {
                host: o.node.hostname(),
                start: o.start,
                duration: o.duration,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::bridge;
    use clustersim::{GpuId, NodeId, Outage};
    use simtime::{Duration, Timestamp};
    use slurmsim::{JobId, JobRecord, JobState};
    use xid::RecoveryAction;

    #[test]
    fn job_bridge_maps_fields() {
        let record = JobRecord {
            id: JobId(7),
            name: "train_model".to_owned(),
            submit: Timestamp::from_unix(10),
            start: Timestamp::from_unix(20),
            end: Timestamp::from_unix(30),
            gpus: 2,
            nodes: vec![NodeId::new(4)],
            gpu_ids: vec![GpuId::new(NodeId::new(4), 0), GpuId::new(NodeId::new(4), 3)],
            state: JobState::Completed,
        };
        let job = bridge::job(&record);
        assert_eq!(job.id, 7);
        assert!(job.completed);
        assert_eq!(
            job.gpu_slots,
            vec![("gpub005".to_owned(), 0), ("gpub005".to_owned(), 3)]
        );
        assert!(job.is_ml());
    }

    #[test]
    fn failed_states_map_to_not_completed() {
        for state in [
            JobState::Failed,
            JobState::Cancelled,
            JobState::Timeout,
            JobState::NodeFail,
        ] {
            let record = JobRecord {
                id: JobId(1),
                name: "x".to_owned(),
                submit: Timestamp::from_unix(0),
                start: Timestamp::from_unix(0),
                end: Timestamp::from_unix(1),
                gpus: 1,
                nodes: vec![],
                gpu_ids: vec![],
                state,
            };
            assert!(!bridge::job(&record).completed, "{state}");
        }
    }

    #[test]
    fn outage_bridge_maps_hostnames() {
        let outage = Outage {
            node: NodeId::new(0),
            start: Timestamp::from_unix(100),
            duration: Duration::from_mins(53),
            action: RecoveryAction::NodeReboot,
        };
        let records = bridge::outages(&[outage]);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].host, "gpub001");
        assert!((records[0].hours() - 53.0 / 60.0).abs() < 1e-12);
    }
}
