//! Shared command-line infrastructure for `delta_cli` and `stream_study`.
//!
//! Both binaries historically carried private copies of flag parsing, log
//! collection and file I/O, each reporting failures as bare `String`s.
//! This module is the single home for that plumbing, built around a typed
//! error taxonomy ([`CliError`]) so every failure path — a missing file, a
//! malformed CSV, an unwritable `--metrics-out` target — reports cleanly
//! instead of panicking or stringifying early.
//!
//! It also owns the observability surface of the binaries:
//! [`MetricsSink`] interprets the `--metrics-out` / `--metrics-format`
//! flags, enables the global [`obs`] registry for the run, and renders the
//! final [`obs::ObsReport`] as Prometheus text or JSON; [`Progress`] is
//! the `LiveCounters`-style periodic stderr line for streaming mode.

use resilience::error::{CsvInput, PipelineError};
use resilience::CheckpointError;
use std::fmt;
use std::io::{self, IsTerminal};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Everything that can go wrong between `main()` and the pipeline.
///
/// The taxonomy separates *how the user invoked us* ([`Usage`]) from *what
/// the filesystem did* ([`Io`]) from *what the data contained*
/// ([`Invalid`], [`Pipeline`], [`Checkpoint`]), so callers can decide
/// whether to print usage help and exit codes stay honest.
///
/// [`Usage`]: CliError::Usage
/// [`Io`]: CliError::Io
/// [`Invalid`]: CliError::Invalid
/// [`Pipeline`]: CliError::Pipeline
/// [`Checkpoint`]: CliError::Checkpoint
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed (unknown flag shape, missing
    /// value, missing required argument). `main` prints usage after these.
    Usage(String),
    /// A filesystem operation failed, with the verb and path that failed.
    Io {
        /// What we were doing, e.g. `"reading"` or `"writing metrics to"`.
        action: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// An input file was read fine but its contents were invalid.
    Invalid(String),
    /// The analysis pipeline rejected its inputs (CSV schema errors carry
    /// the offending export and line number).
    Pipeline(PipelineError),
    /// A checkpoint snapshot failed to load or validate.
    Checkpoint(CheckpointError),
    /// The serving subsystem failed to start (bind errors and friends).
    Serve(servd::ServeError),
    /// The live-ingest subsystem failed to recover or persist its state.
    Ingest(servd::IngestError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io {
                action,
                path,
                source,
            } => write!(f, "{action} {}: {source}", path.display()),
            CliError::Invalid(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CliError::Serve(e) => write!(f, "serve: {e}"),
            CliError::Ingest(e) => write!(f, "ingest: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Pipeline(e) => Some(e),
            CliError::Checkpoint(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Ingest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Checkpoint(e)
    }
}

impl From<servd::ServeError> for CliError {
    fn from(e: servd::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<servd::IngestError> for CliError {
    fn from(e: servd::IngestError) -> Self {
        CliError::Ingest(e)
    }
}

/// Minimal flag parser output: positionals plus `--flag value` / `--flag`.
#[derive(Debug)]
pub struct Flags {
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Parses `args` into [`Flags`]. Flags listed in `value_flags` consume the
/// following argument as their value; all other `--flags` are boolean.
pub fn parse_flags(args: &[String], value_flags: &[&str]) -> Result<Flags, CliError> {
    let mut positionals = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?
                    .clone();
                options.push((name.to_owned(), Some(value)));
            } else {
                options.push((name.to_owned(), None));
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(Flags {
        positionals,
        options,
    })
}

impl Flags {
    /// The last value given for `--name`, if any (later values win).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--name` appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.options.iter().any(|(n, _)| n == name)
    }
}

/// Parses `--name`'s value as a number, falling back to `default` when
/// the flag is absent and reporting a clean usage error when it does
/// not parse — the shared shape of every numeric server flag.
pub fn parse_num_flag<T: std::str::FromStr>(
    flags: &Flags,
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.value(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --{name} {raw:?}"))),
        None => Ok(default),
    }
}

/// Reads a whole file as UTF-8 text.
pub fn read_to_string(path: impl AsRef<Path>) -> Result<String, CliError> {
    let path = path.as_ref();
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        action: "reading",
        path: path.to_path_buf(),
        source,
    })
}

/// Reads a whole file as raw bytes.
pub fn read_bytes(path: impl AsRef<Path>) -> Result<Vec<u8>, CliError> {
    let path = path.as_ref();
    std::fs::read(path).map_err(|source| CliError::Io {
        action: "reading",
        path: path.to_path_buf(),
        source,
    })
}

/// Writes `contents` to `path`, reporting `action` on failure.
pub fn write_file(
    path: impl AsRef<Path>,
    contents: impl AsRef<[u8]>,
    action: &'static str,
) -> Result<(), CliError> {
    let path = path.as_ref();
    std::fs::write(path, contents).map_err(|source| CliError::Io {
        action,
        path: path.to_path_buf(),
        source,
    })
}

/// Writes `contents` to `path` via temp-file + atomic rename
/// ([`resilience::checkpoint::write_atomic`]), so a crash mid-write can
/// never leave a torn file — the write path for checkpoints and anything
/// else a restart must be able to trust.
pub fn write_file_atomic(
    path: impl AsRef<Path>,
    contents: impl AsRef<[u8]>,
    action: &'static str,
) -> Result<(), CliError> {
    let path = path.as_ref();
    resilience::checkpoint::write_atomic(path, contents.as_ref()).map_err(|source| CliError::Io {
        action,
        path: path.to_path_buf(),
        source,
    })
}

/// Parses a CSV job export, tagging schema errors with which export they
/// came from.
pub fn parse_jobs_csv(
    text: &str,
    input: CsvInput,
) -> Result<Vec<resilience::AccountedJob>, CliError> {
    resilience::csvio::parse_jobs(text)
        .map_err(|e| CliError::Pipeline(PipelineError::csv(input, e)))
}

/// Parses a CSV outage export with the same error tagging.
pub fn parse_outages_csv(text: &str) -> Result<Vec<resilience::OutageRecord>, CliError> {
    resilience::csvio::parse_outages(text)
        .map_err(|e| CliError::Pipeline(PipelineError::csv(CsvInput::Outages, e)))
}

/// Parses a `--rollup BUCKET[@TZ]` spec (e.g. `day`, `week@UTC`,
/// `hour@America/Chicago`) into the bucket granularity and builtin
/// timezone for a civil-time rollup. The timezone defaults to UTC.
pub fn parse_rollup_spec(raw: &str) -> Result<(simtime::Bucket, simtime::Tz), CliError> {
    let (bucket_raw, tz_raw) = raw.split_once('@').unwrap_or((raw, "UTC"));
    let bucket = bucket_raw
        .parse()
        .map_err(|e: simtime::civiltime::ParseCivilError| CliError::Usage(e.to_string()))?;
    let tz = simtime::Tz::by_name(tz_raw).map_err(|e| CliError::Usage(e.to_string()))?;
    Ok((bucket, tz))
}

/// Collects log files from file and directory arguments, sorted by path.
pub fn collect_log_files(paths: &[String]) -> Result<Vec<PathBuf>, CliError> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            let dir_err = |source| CliError::Io {
                action: "reading dir",
                path: path.to_path_buf(),
                source,
            };
            for entry in std::fs::read_dir(path).map_err(dir_err)? {
                let entry = entry.map_err(dir_err)?;
                if entry.path().is_file() {
                    files.push(entry.path());
                }
            }
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(CliError::Usage(format!("{p}: no such file or directory")));
        }
    }
    files.sort();
    Ok(files)
}

/// Extracts a plausible year from a `...YYYYMMDD...` filename component.
pub fn year_from_filename(path: &Path) -> Option<i32> {
    let name = path.file_stem()?.to_str()?;
    name.split(|c: char| !c.is_ascii_digit())
        .filter(|chunk| chunk.len() == 8)
        .find_map(|chunk| {
            let year: i32 = chunk[..4].parse().ok()?;
            (1970..=2100).contains(&year).then_some(year)
        })
}

/// Output encodings for `--metrics-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// A single JSON document (see [`obs::ObsReport::to_json`]).
    Json,
}

/// A resolved `--metrics-out` request: where to write and in what format.
///
/// Constructing one (via [`MetricsSink::from_flags`]) flips the global
/// [`obs`] switch on, so every stage the run subsequently executes records
/// into the registry; [`write`](MetricsSink::write) gathers and renders
/// the report at the end.
#[derive(Debug)]
pub struct MetricsSink {
    /// Destination path.
    pub path: PathBuf,
    /// Chosen encoding.
    pub format: MetricsFormat,
}

impl MetricsSink {
    /// Interprets `--metrics-out PATH` and `--metrics-format FMT`.
    ///
    /// Returns `Ok(None)` when no `--metrics-out` was given (and leaves
    /// the registry disabled — the zero-overhead default). The format
    /// defaults by extension: `.json` means JSON, anything else means
    /// Prometheus text.
    pub fn from_flags(flags: &Flags) -> Result<Option<MetricsSink>, CliError> {
        let Some(path) = flags.value("metrics-out") else {
            if flags.value("metrics-format").is_some() {
                return Err(CliError::Usage(
                    "--metrics-format needs --metrics-out".to_owned(),
                ));
            }
            return Ok(None);
        };
        let path = PathBuf::from(path);
        let format = match flags.value("metrics-format") {
            Some("prom" | "prometheus" | "text") => MetricsFormat::Prometheus,
            Some("json") => MetricsFormat::Json,
            Some(other) => {
                return Err(CliError::Usage(format!(
                    "bad --metrics-format {other:?} (expected prom|json)"
                )))
            }
            None => match path.extension().and_then(|e| e.to_str()) {
                Some("json") => MetricsFormat::Json,
                _ => MetricsFormat::Prometheus,
            },
        };
        obs::set_enabled(true);
        Ok(Some(MetricsSink { path, format }))
    }

    /// Gathers the global registry and tracer and writes the report.
    pub fn write(&self) -> Result<(), CliError> {
        let report = obs::global().report();
        let text = match self.format {
            MetricsFormat::Prometheus => report.to_prometheus(),
            MetricsFormat::Json => report.to_json(),
        };
        write_file(&self.path, text, "writing metrics to")
    }
}

/// A `LiveCounters`-style periodic progress line on stderr.
///
/// Rate-limited to one line per second so the hot streaming loop can call
/// [`tick`](Progress::tick) per chunk without flooding the terminal. Off
/// by default when stderr is not a terminal (CI logs stay clean); forced
/// on with `--progress`.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    last: Instant,
    interval: Duration,
    printed: bool,
}

impl Progress {
    /// Creates the reporter: enabled when `force` is set or stderr is a
    /// terminal.
    pub fn new(force: bool) -> Progress {
        Progress {
            enabled: force || io::stderr().is_terminal(),
            last: Instant::now(),
            interval: Duration::from_secs(1),
            printed: false,
        }
    }

    /// Emits `line()` to stderr if enough time has passed since the last
    /// emission. The closure only runs when a line will actually print.
    pub fn tick(&mut self, line: impl FnOnce() -> String) {
        if !self.enabled || self.last.elapsed() < self.interval {
            return;
        }
        self.last = Instant::now();
        self.printed = true;
        eprintln!("{}", line());
    }

    /// Emits a final line unconditionally (when enabled), so short runs
    /// that never crossed the interval still report once.
    pub fn finish(&mut self, line: impl FnOnce() -> String) {
        if self.enabled {
            eprintln!("{}", line());
            self.printed = true;
        }
    }

    /// Whether any line has been printed so far.
    pub fn printed(&self) -> bool {
        self.printed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_positionals_and_options() {
        let flags = parse_flags(
            &args(&["logs/a.log", "--jobs", "j.csv", "--deep", "logs/b.log"]),
            &["jobs"],
        )
        .unwrap();
        assert_eq!(flags.positionals, vec!["logs/a.log", "logs/b.log"]);
        assert_eq!(flags.value("jobs"), Some("j.csv"));
        assert!(flags.has("deep"));
        assert_eq!(flags.value("missing"), None);
    }

    #[test]
    fn value_flag_without_value_is_usage_error() {
        let err = parse_flags(&args(&["--jobs"]), &["jobs"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("--jobs"));
    }

    #[test]
    fn later_values_win() {
        let flags = parse_flags(&args(&["--seed", "1", "--seed", "2"]), &["seed"]).unwrap();
        assert_eq!(flags.value("seed"), Some("2"));
    }

    #[test]
    fn numeric_flags_default_parse_and_reject() {
        let flags = parse_flags(&args(&["--depth", "7"]), &["depth", "width"]).unwrap();
        assert_eq!(parse_num_flag(&flags, "depth", 1usize).unwrap(), 7);
        assert_eq!(parse_num_flag(&flags, "width", 42u64).unwrap(), 42);
        let flags = parse_flags(&args(&["--depth", "nope"]), &["depth"]).unwrap();
        let err = parse_num_flag(&flags, "depth", 1usize).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("--depth"), "{err}");
    }

    #[test]
    fn rollup_spec_parses_bucket_and_tz() {
        let (bucket, tz) = parse_rollup_spec("day").unwrap();
        assert_eq!(bucket, simtime::Bucket::Day);
        assert_eq!(tz.name(), "UTC");
        let (bucket, tz) = parse_rollup_spec("hour@America/Chicago").unwrap();
        assert_eq!(bucket, simtime::Bucket::Hour);
        assert_eq!(tz.name(), "America/Chicago");
        assert!(parse_rollup_spec("decade").is_err());
        assert!(parse_rollup_spec("day@Mars/Olympus").is_err());
    }

    #[test]
    fn year_from_filename_variants() {
        assert_eq!(
            year_from_filename(Path::new("syslog-20220105.log")),
            Some(2022)
        );
        assert_eq!(
            year_from_filename(Path::new("logs/node-20251231-full.log")),
            Some(2025)
        );
        assert_eq!(year_from_filename(Path::new("messages.log")), None);
        assert_eq!(year_from_filename(Path::new("build-12345678.log")), None); // year 1234 out of range
    }

    #[test]
    fn metrics_format_defaults_by_extension() {
        let flags = parse_flags(&args(&["--metrics-out", "m.json"]), &["metrics-out"]).unwrap();
        let sink = MetricsSink::from_flags(&flags).unwrap().unwrap();
        assert_eq!(sink.format, MetricsFormat::Json);

        let flags = parse_flags(&args(&["--metrics-out", "m.prom"]), &["metrics-out"]).unwrap();
        let sink = MetricsSink::from_flags(&flags).unwrap().unwrap();
        assert_eq!(sink.format, MetricsFormat::Prometheus);
    }

    #[test]
    fn metrics_format_flag_overrides_extension() {
        let flags = parse_flags(
            &args(&["--metrics-out", "m.txt", "--metrics-format", "json"]),
            &["metrics-out", "metrics-format"],
        )
        .unwrap();
        let sink = MetricsSink::from_flags(&flags).unwrap().unwrap();
        assert_eq!(sink.format, MetricsFormat::Json);
    }

    #[test]
    fn bad_metrics_format_is_usage_error() {
        let flags = parse_flags(
            &args(&["--metrics-out", "m", "--metrics-format", "xml"]),
            &["metrics-out", "metrics-format"],
        )
        .unwrap();
        assert!(matches!(
            MetricsSink::from_flags(&flags),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_format_without_out_is_usage_error() {
        let flags = parse_flags(
            &args(&["--metrics-format", "json"]),
            &["metrics-out", "metrics-format"],
        )
        .unwrap();
        assert!(matches!(
            MetricsSink::from_flags(&flags),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn no_metrics_flags_means_no_sink() {
        let flags = parse_flags(&args(&[]), &["metrics-out"]).unwrap();
        assert!(MetricsSink::from_flags(&flags).unwrap().is_none());
    }

    #[test]
    fn sink_write_reports_bad_path_cleanly() {
        let sink = MetricsSink {
            path: PathBuf::from("/nonexistent-dir-for-test/m.prom"),
            format: MetricsFormat::Prometheus,
        };
        let err = sink.write().unwrap_err();
        assert!(matches!(err, CliError::Io { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("writing metrics to"), "{msg}");
        assert!(msg.contains("/nonexistent-dir-for-test/m.prom"), "{msg}");
    }

    #[test]
    fn io_error_display_names_action_and_path() {
        let err = read_to_string("/no/such/file/here.txt").unwrap_err();
        assert!(err.to_string().starts_with("reading /no/such/file"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn csv_errors_carry_the_input_name() {
        let err = parse_jobs_csv("not,a,header\n", CsvInput::GpuJobs).unwrap_err();
        assert!(err.to_string().contains("gpu-jobs"), "{err}");
    }

    #[test]
    fn progress_rate_limits_and_finishes() {
        let mut progress = Progress {
            enabled: true,
            last: Instant::now(),
            interval: Duration::from_secs(3600),
            printed: false,
        };
        progress.tick(|| unreachable!("inside the rate-limit window"));
        assert!(!progress.printed());
        progress.finish(|| "done".to_owned());
        assert!(progress.printed());
    }

    #[test]
    fn disabled_progress_stays_silent() {
        let mut progress = Progress {
            enabled: false,
            last: Instant::now() - Duration::from_secs(10),
            interval: Duration::from_secs(1),
            printed: false,
        };
        progress.tick(|| unreachable!("disabled"));
        progress.finish(|| unreachable!("disabled"));
        assert!(!progress.printed());
    }
}
