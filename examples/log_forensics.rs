//! Log forensics: use the substrate as an *analysis* toolkit on raw log
//! text — the workflow of a site reliability engineer handed a day's
//! consolidated syslog and asked "which GPUs are unhealthy?".
//!
//! Demonstrates the text-level API: pattern filtering, line parsing, XID
//! extraction, coalescing, and a per-GPU triage summary — no simulators
//! involved (the sample log is embedded).
//!
//! ```text
//! cargo run --example log_forensics
//! ```

use delta_gpu_resilience::prelude::*;
use hpclog::extract::XidExtractor;
use hpclog::pattern::{FilterSet, Pattern};
use resilience::coalesce::coalesce;
use std::collections::BTreeMap;

/// A day of consolidated log text, as Delta's collection pipeline emits it:
/// XID errors from several GPUs, duplicates, and unrelated noise.
const DAY_LOG: &str = "\
Mar 14 00:11:02 gpub007 kernel: usb 3-2: new high-speed USB device number 4
Mar 14 01:05:17 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 119, pid=88211, Timeout after 6s of waiting for RPC response from GPU0 GSP!
Mar 14 01:05:19 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 119, pid=88211, Timeout after 6s of waiting for RPC response from GPU0 GSP!
Mar 14 01:05:24 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 119, pid=88211, Timeout after 6s of waiting for RPC response from GPU0 GSP!
Mar 14 02:44:51 gpub013 kernel: NVRM: Xid (PCI:0000:51:00): 74, NVLink: fatal error detected on link, LinkState 0x5
Mar 14 02:44:51 gpub013 kernel: NVRM: Xid (PCI:0000:57:00): 74, NVLink: fatal error detected on link, LinkState 0x5
Mar 14 03:20:00 gpub013 slurmd: launching job 4242 for user hpcuser
Mar 14 04:00:41 gpub099 kernel: NVRM: Xid (PCI:0000:2a:00): 63, Row remapping event: row remapper pending
Mar 14 04:00:42 gpub099 kernel: NVRM: Xid (PCI:0000:2a:00): 94, pid=51332, Contained: SM (0x3). RST: No, D-RST: No
Mar 14 05:59:59 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 119, pid=88211, Timeout after 6s of waiting for RPC response from GPU0 GSP!
Mar 14 07:13:08 gpub007 kernel: NVRM: Xid (PCI:0000:c7:00): 13, pid=120, Graphics Exception: ESR 0x505648=0x1000e
Mar 14 09:30:30 gpub042 kernel: nvidia-persistenced: persistence mode enabled
";

fn main() {
    // 1. Cheap pre-filter: which lines even mention an XID?
    let filter = FilterSet::compile(&["*NVRM: Xid*"]).expect("static pattern compiles");
    let xid_lines = DAY_LOG.lines().filter(|l| filter.matches(l)).count();
    println!(
        "{} of {} lines are XID reports",
        xid_lines,
        DAY_LOG.lines().count()
    );

    // 2. Typed extraction with a capture pattern, for ad-hoc inspection.
    let probe = Pattern::compile("*Xid (PCI:{w}): {d},*").expect("static pattern compiles");
    for line in DAY_LOG.lines() {
        if let Some(caps) = probe.captures(line) {
            println!("  PCI {}  XID {}", caps[0], caps[1]);
        }
    }

    // 3. The real pipeline: parse -> extract (study filter on) -> coalesce.
    let mut extractor = XidExtractor::studied_only(2024);
    let events: Vec<_> = DAY_LOG
        .lines()
        .filter_map(|l| extractor.extract_raw(l))
        .collect();
    let stats = extractor.stats();
    println!(
        "\nextraction: {} XID lines, {} events kept, {} excluded (app-triggered XID 13/43)",
        stats.xid_lines, stats.extracted, stats.excluded
    );

    let errors = coalesce(events, Duration::from_secs(60));
    println!("coalesced to {} distinct errors:", errors.len());

    // 4. Triage: per-GPU error summary ranked by recovery severity.
    let mut per_gpu: BTreeMap<(String, u8), Vec<ErrorKind>> = BTreeMap::new();
    for e in &errors {
        let gpu = e.gpu_index().unwrap_or(255);
        per_gpu
            .entry((e.host.clone(), gpu))
            .or_default()
            .push(e.kind);
    }
    for ((host, gpu), kinds) in &per_gpu {
        let worst = kinds.iter().map(|k| k.recovery()).max().unwrap_or_default();
        let action = if worst.requires_reset() {
            format!("ACTION: {worst}")
        } else {
            "monitor".to_owned()
        };
        let list: Vec<String> = kinds.iter().map(|k| k.abbreviation().to_owned()).collect();
        println!("  {host} gpu{gpu}: {} -> {action}", list.join(", "));
    }
}
