//! Fleet health report: the weekly dashboard an SRE team would generate
//! from this library — trends, hot GPUs, burst structure and survival —
//! exercising the extension modules (`timeseries`, `spatial`, `burst`,
//! `survival`) on a simulated year of operations.
//!
//! ```text
//! cargo run --release --example fleet_health
//! ```

use delta_gpu_resilience::prelude::*;
use resilience::timeseries::ErrorSeries;
use resilience::{report, spatial};

fn main() {
    // A year of operations at full cluster scale.
    let mut config = FaultConfig::delta_scaled(0.3);
    config.seed = 77;
    let campaign = Campaign::new(config).run();

    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let analysed = pipeline.run(&campaign.archive, &[], &[], &[]);

    println!(
        "FLEET HEALTH REPORT — {} GPUs",
        campaign.config.spec.gpu_count()
    );
    println!(
        "window: {} .. {}\n",
        campaign.config.periods.pre_op.start, campaign.config.periods.op.end
    );

    // Weekly error trends per kind, with sparklines.
    let whole = campaign.config.periods.whole();
    println!("weekly error volume (full window):");
    for kind in [
        ErrorKind::MmuError,
        ErrorKind::GspError,
        ErrorKind::NvlinkError,
        ErrorKind::PmuSpiError,
    ] {
        let series = ErrorSeries::weekly(&analysed.errors, Some(kind), whole);
        let trend = series.trend().unwrap_or(0.0);
        let direction = if trend > 0.05 {
            "worsening"
        } else if trend < -0.05 {
            "improving"
        } else {
            "stable"
        };
        println!(
            "  {:<14} {:>6} total  {:>9} ({trend:+.2}/wk²)\n    {}",
            kind.abbreviation(),
            series.total(),
            direction,
            series.render()
        );
    }

    // Storm awareness: what did the outlier rule catch?
    if let Some(outlier) = analysed.outlier() {
        println!(
            "\nstorm caught by the outlier rule: {} {} ({} errors excluded from MTBE)",
            outlier.host, outlier.pci, outlier.excluded_errors
        );
    }

    // Concentration: are errors fleet-wide or a few bad devices?
    let conc = spatial::Concentration::compute(&analysed.errors, &[], None);
    println!(
        "\nconcentration: {} affected GPUs carry {} errors; Gini (fleet of {}) = {:.2}",
        conc.affected_gpus(),
        conc.total(),
        campaign.config.spec.gpu_count(),
        conc.gini(campaign.config.spec.gpu_count() as usize)
    );

    // The full deep section (shared with `delta-cli analyze --deep`).
    println!("\n{}", report::deep(&analysed));
}
