//! ML training impact: what do GPU errors cost a large distributed
//! training campaign? (The paper's motivation: "the infrastructure is not
//! yet ready for system-scale, long-running user jobs".)
//!
//! Simulates a cluster running long multi-node training jobs (rather than
//! the mixed Delta workload) against the same calibrated fault processes,
//! then reports how many runs die per week, what fraction of GPU-hours is
//! lost, and how checkpoint-and-restart would change the bill.
//!
//! ```text
//! cargo run --release --example ml_training_impact
//! ```

use delta_gpu_resilience::prelude::*;

fn main() {
    // Faults: operational-period rates on the full Delta hardware, one
    // simulated quarter.
    let mut fault_config = FaultConfig::delta_scaled(0.08); // ~94 days
    fault_config.seed = 1;
    fault_config.emit_logs = false; // statistics only
    let campaign = Campaign::new(fault_config).run();

    // Workload: nothing but 64-GPU, 24-hour training runs, back to back.
    let cluster = Cluster::new(campaign.config.spec);
    let mut workload = WorkloadConfig::delta_scaled(0.08);
    workload.gpu_jobs = 4_000;
    workload.cpu_jobs = 0;
    workload.gpu_success_rate = 0.98; // training runs rarely fail by themselves

    let outcome =
        Simulation::new(&cluster, workload, 2).run(&campaign.ground_truth, &campaign.holds);

    let trained: Vec<_> = outcome
        .jobs
        .iter()
        .filter(|j| !j.nodes.is_empty())
        .collect();
    let failed_by_gpu: Vec<_> = trained
        .iter()
        .filter(|j| j.state == JobState::NodeFail)
        .collect();
    let gpu_hours: f64 = trained.iter().map(|j| j.gpu_hours()).sum();
    let lost_hours: f64 = failed_by_gpu.iter().map(|j| j.gpu_hours()).sum();
    let weeks = campaign.config.periods.op.days() / 7.0;

    println!(
        "quarter-long campaign, {} training runs scheduled",
        trained.len()
    );
    println!(
        "GPU-error casualties: {} runs ({:.1} per week)",
        failed_by_gpu.len(),
        failed_by_gpu.len() as f64 / weeks
    );
    println!(
        "GPU-hours burned in killed runs: {:.0}k of {:.0}k ({:.1}%)",
        lost_hours / 1000.0,
        gpu_hours / 1000.0,
        lost_hours / gpu_hours * 100.0
    );

    // What would hourly checkpointing save? A killed run loses only the
    // work since its last checkpoint instead of its whole lifetime.
    let lost_with_ckpt: f64 = failed_by_gpu
        .iter()
        .map(|j| j.gpus as f64 * (j.elapsed().as_hours_f64().min(1.0)))
        .sum();
    println!(
        "with hourly checkpoints the loss shrinks to {:.0}k GPU-hours ({:.1}x reduction)",
        lost_with_ckpt / 1000.0,
        lost_hours / lost_with_ckpt.max(1e-9)
    );

    // Which error kinds did the damage? Ground-truth attribution: count
    // kills per kind by matching kill timestamps.
    let mut per_kind: std::collections::BTreeMap<ErrorKind, usize> = Default::default();
    for job in &failed_by_gpu {
        // The killing error is the last ground-truth error on one of the
        // job's GPUs at the moment the job ended.
        if let Some(ev) = campaign
            .ground_truth
            .iter()
            .rfind(|e| e.time == job.end && job.gpu_ids.iter().any(|g| g.node == e.gpu.node))
        {
            *per_kind.entry(ev.kind).or_default() += 1;
        }
    }
    println!("\nkiller breakdown:");
    for (kind, n) in &per_kind {
        println!("  {:<26} {}", kind.abbreviation(), n);
    }
}
