//! Quickstart: inject faults, schedule a workload, analyse, print tables.
//!
//! Runs a ~2%-scale Delta campaign end-to-end in a few seconds:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use delta_gpu_resilience::prelude::*;

fn main() {
    // 1. Fault injection over a scaled-down Delta calendar (full 106-node
    //    cluster, ~23 days of simulated time, Table-I-calibrated rates).
    let mut fault_config = FaultConfig::delta_scaled(0.02);
    fault_config.seed = 0xDE17A;
    let campaign = Campaign::new(fault_config).run();
    println!(
        "campaign: {} ground-truth errors, {} raw log lines, {} outages",
        campaign.ground_truth.len(),
        campaign.stats.raw_lines(),
        campaign.ledger.outage_count()
    );

    // 2. A matching workload through the FIFO+backfill scheduler, with the
    //    error timeline killing co-located jobs.
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(0.02);
    let outcome =
        Simulation::new(&cluster, workload, 7).run(&campaign.ground_truth, &campaign.holds);
    println!(
        "scheduler: {} GPU jobs ({:.2}% success), {} error kills",
        outcome.jobs.len(),
        outcome.gpu_success_rate() * 100.0,
        outcome.stats.error_kills
    );

    // 3. The paper's pipeline: raw logs + sacct records + outage records in,
    //    tables out.
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let report = pipeline.run(
        &campaign.archive,
        &bridge::jobs(&outcome.jobs),
        &bridge::jobs(&outcome.cpu_jobs),
        &bridge::outages(campaign.ledger.outages()),
    );

    println!("\n=== Table I (scaled) ===\n{}", report::table1(&report));
    println!("=== Table II (scaled) ===\n{}", report::table2(&report));
    println!("=== Fig. 2 (scaled) ===\n{}", report::figure2(&report));
    println!("=== Findings ===\n{}", Findings::evaluate(&report));
    println!(
        "\nNote: several findings need larger samples than a 2% campaign provides\n\
         (PMU/memory errors are rare); run `--example failure_campaign` for the\n\
         full-scale reproduction (10/10)."
    );
}
