//! The full-fidelity study reproduction: the complete 1,169-day campaign
//! on all 106 nodes / 448 GPUs, the 17-day storm, 1M+ raw log lines and the
//! 1.44M-job workload, analysed end to end.
//!
//! This is the run behind EXPERIMENTS.md. Expect ~30 s and a few hundred MB
//! of memory in release mode:
//!
//! ```text
//! cargo run --release --example failure_campaign
//! ```

use delta_gpu_resilience::prelude::*;

fn main() {
    let t0 = std::time::Instant::now();

    // Stage 0: the generative substrate at full fidelity.
    let campaign = Campaign::new(FaultConfig::delta()).run();
    println!(
        "[{:>6.1?}] campaign: {} errors, {} raw lines (storm included), {} reboots",
        t0.elapsed(),
        campaign.ground_truth.len(),
        campaign.stats.raw_lines(),
        campaign.ledger.outage_count()
    );

    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta(), 0xDE17A)
        .run(&campaign.ground_truth, &campaign.holds);
    println!(
        "[{:>6.1?}] scheduler: {} GPU + {} CPU jobs",
        t0.elapsed(),
        outcome.jobs.len(),
        outcome.cpu_jobs.len()
    );

    // Stages I-III: the paper's pipeline over the raw archive.
    let report = Pipeline::delta().run(
        &campaign.archive,
        &bridge::jobs(&outcome.jobs),
        &bridge::jobs(&outcome.cpu_jobs),
        &bridge::outages(campaign.ledger.outages()),
    );
    println!(
        "[{:>6.1?}] pipeline: {} raw lines -> {} coalesced errors (ratio {:.1})",
        t0.elapsed(),
        report.coalesce_summary.raw_lines,
        report.coalesce_summary.errors,
        report.coalesce_summary.ratio()
    );
    if let Some(outlier) = report.outlier() {
        println!(
            "         outlier rule: {} {} errors from {} excluded",
            outlier.excluded_errors,
            outlier.kind.abbreviation(),
            outlier.host
        );
    }

    println!("\n=== Table I ===\n{}", report::table1(&report));
    println!("=== Table II ===\n{}", report::table2(&report));
    println!("=== Table III ===\n{}", report::table3(&report));
    println!("=== Figure 2 ===\n{}", report::figure2(&report));
    println!("=== Findings ===\n{}", Findings::evaluate(&report));
    println!("\ntotal wall time: {:?}", t0.elapsed());
}
