//! What-if analysis: how much would better recovery mechanisms help?
//!
//! The paper's conclusion (vi)–(vii) argues that hardware errors plus
//! *insufficient recovery* limit availability to 99.5%, and that relying on
//! application-level recovery is not feasible. This example quantifies that
//! claim by re-running the same seeded campaign under counterfactual
//! recovery models and comparing availability and job mortality:
//!
//! 1. **baseline** — Delta as measured (health checks, drain + reboot).
//! 2. **fast-repair** — reboots complete 4× faster (better automation).
//! 3. **gsp-fixed** — GSP firmware fixed: its flapping episodes collapse to
//!    single short cycles (the dominant op-period error source vanishes).
//!
//! ```text
//! cargo run --release --example what_if_recovery
//! ```

use clustersim::RepairModel;
use delta_gpu_resilience::prelude::*;
use simrng::dist::LogNormal;

struct Scenario {
    name: &'static str,
    config: FaultConfig,
}

fn scenarios() -> Vec<Scenario> {
    let scale = 0.15; // ~175 simulated days, full cluster
    let base = || {
        let mut c = FaultConfig::delta_scaled(scale);
        c.emit_logs = false;
        c.seed = 0xA100;
        c
    };

    let baseline = base();

    let mut fast = base();
    fast.repair = RepairModel::new(
        LogNormal::from_mean_median(0.22, 0.15).expect("valid"),
        LogNormal::from_mean_median(6.0, 3.0).expect("valid"),
    );

    let mut gsp_fixed = base();
    gsp_fixed.episodes.gsp_cycles_mean = 1.0;
    // Fixing the firmware also removes the re-fire rate inflation: scale
    // the incident rate down by the cycle count it previously amortised.
    gsp_fixed.rates.gsp_per_gpu_hour.0 /= faultsim::rates::GSP_CYCLES_MEAN;
    gsp_fixed.rates.gsp_per_gpu_hour.1 /= faultsim::rates::GSP_CYCLES_MEAN;

    vec![
        Scenario {
            name: "baseline (as measured)",
            config: baseline,
        },
        Scenario {
            name: "fast-repair (4x faster reboot)",
            config: fast,
        },
        Scenario {
            name: "gsp-fixed (no GSP flapping)",
            config: gsp_fixed,
        },
    ]
}

fn main() {
    println!(
        "{:<34} {:>9} {:>9} {:>12} {:>11} {:>10}",
        "scenario", "errors", "reboots", "avail-emp %", "min/day", "job-kills"
    );
    for scenario in scenarios() {
        let campaign = Campaign::new(scenario.config).run();
        let cluster = Cluster::new(campaign.config.spec);
        let workload = WorkloadConfig::delta_scaled(0.15);
        let outcome =
            Simulation::new(&cluster, workload, 5).run(&campaign.ground_truth, &campaign.holds);

        let op = campaign.config.periods.op;
        let op_hours = op.hours();
        let op_downtime: f64 = campaign
            .ledger
            .outages()
            .iter()
            .filter(|o| op.contains(o.start))
            .map(|o| o.duration.as_hours_f64())
            .sum();
        let availability =
            1.0 - op_downtime / (campaign.config.spec.gpu_node_count() as f64 * op_hours);
        println!(
            "{:<34} {:>9} {:>9} {:>12.3} {:>11.1} {:>10}",
            scenario.name,
            campaign.ground_truth.len(),
            campaign.ledger.outage_count(),
            availability * 100.0,
            (1.0 - availability) * 24.0 * 60.0,
            outcome.stats.error_kills
        );
    }
    println!(
        "\nReading: faster repair buys availability but not job survival —\n\
         jobs die at the error, not the reboot. Fixing the GSP failure mode\n\
         improves both, which is the paper's point: the reliability of the\n\
         underlying GPU hardware has to improve (§VII finding vi)."
    );
}
