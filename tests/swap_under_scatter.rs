//! Torn-response stress for snapshot swaps *under scatter-gather*: a
//! writer publishes a growing sequence of sharded stores — cycling the
//! shard count 1→2→4→8 so every publish changes the scatter layout —
//! while many keep-alive connections hammer the scattered `/errors`
//! and `/mtbe` paths. The strong invariant, inherited from
//! `tests/serve_equivalence.rs` and sharpened for sharding: every
//! response names exactly one snapshot in `X-Snapshot`, and its body
//! is byte-identical to the offline render of *that* snapshot — never
//! a partial write, never a merge that mixed shards from two
//! generations, never a cache entry from a stale store.
//!
//! The publish sequence imitates live ingest (each snapshot is a
//! strict prefix-growth of the next, as a streaming pipeline would
//! produce), but the whole sequence is precomputed so readers can
//! assert exact bodies for whatever snapshot id they are served.

use delta_gpu_resilience::prelude::*;
use hpclog::{PciAddr, XidEvent};
use servd::testutil::{connect, get_on};
use servd::{ServerConfig, StoreHandle, StudyStore};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xid::XidCode;

/// Snapshots published after the initial store (ids 2..=PUBLISHES+1).
const PUBLISHES: usize = 12;
const READERS: usize = 6;

/// The full event stream; snapshot `i` is built from a prefix of it.
fn event_stream() -> Vec<XidEvent> {
    let base = StudyPeriods::delta().op.start;
    let codes: [u16; 8] = [119, 74, 31, 63, 79, 48, 94, 95];
    (0..120u64)
        .map(|i| {
            XidEvent::new(
                base + Duration::from_secs(500 + i * 997),
                format!("gpub{:03}", 1 + (i * 5) % 8).as_str(),
                PciAddr::for_gpu_index((i % 4) as u8),
                XidCode::new(codes[(i as usize * 3) % codes.len()]),
                "",
            )
        })
        .collect()
}

/// Offline `/errors` render, written independently of the store.
fn render_errors(report: &StudyReport) -> String {
    let mut out = String::from("time,host,pci,xid,kind,merged_lines\n");
    for e in &report.errors {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            e.time,
            e.host,
            e.pci,
            e.kind.primary_code(),
            e.kind.abbreviation(),
            e.merged_lines
        );
    }
    out
}

/// Offline `/mtbe` render straight off the report's statistics.
fn render_mtbe(report: &StudyReport) -> String {
    let cell = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.3}"));
    let mut out = String::from("xid,kind,phase,count,mtbe_system_h,mtbe_node_h\n");
    for k in ErrorKind::STUDIED {
        for (phase, label) in [(Phase::PreOp, "pre_op"), (Phase::Op, "op")] {
            let _ = writeln!(
                out,
                "{},{},{label},{},{},{}",
                k.primary_code(),
                k.abbreviation(),
                report.stats.count(k, phase),
                cell(report.stats.mtbe_system(k, phase)),
                cell(report.stats.mtbe_per_node(k, phase)),
            );
        }
    }
    out
}

#[test]
fn scattered_responses_are_never_torn_across_sharded_snapshot_swaps() {
    let events = event_stream();
    // Snapshot id -> the report it serves. Id 1 is the initial store;
    // ids 2.. are the publishes, each a longer prefix of the stream.
    let reports: Vec<StudyReport> = (0..=PUBLISHES)
        .map(|i| {
            let len = events.len() * (i + 1) / (PUBLISHES + 1);
            Pipeline::delta().run_events(events[..len.max(3)].to_vec(), None, &[], &[], &[])
        })
        .collect();
    let expected_errors: Arc<Vec<String>> = Arc::new(reports.iter().map(render_errors).collect());
    let expected_mtbe: Arc<Vec<String>> = Arc::new(reports.iter().map(render_mtbe).collect());
    for pair in expected_errors.windows(2) {
        assert_ne!(pair[0], pair[1], "consecutive snapshots must differ");
    }

    // The initial store is already sharded; each later publish cycles
    // the shard count so the scatter layout changes under the readers.
    let shard_cycle = [1usize, 2, 4, 8];
    let handle = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        reports[0].clone(),
        None,
        4,
    )));
    let server = servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        },
        Arc::clone(&handle),
    )
    .expect("server starts");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let expected_errors = Arc::clone(&expected_errors);
            let expected_mtbe = Arc::clone(&expected_mtbe);
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let (mut served, mut distinct_max) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    // Alternate the two scattered endpoints per reader.
                    let (path, table): (&str, &Vec<String>) =
                        if (served as usize + r).is_multiple_of(2) {
                            ("/errors", &expected_errors)
                        } else {
                            ("/mtbe", &expected_mtbe)
                        };
                    let resp = get_on(&mut conn, path);
                    assert_eq!(resp.status, 200, "{path} failed mid-swap");
                    let id: u64 = resp
                        .header("X-Snapshot")
                        .and_then(|v| v.parse().ok())
                        .expect("every scattered response names its snapshot");
                    let expected = table
                        .get((id - 1) as usize)
                        .unwrap_or_else(|| panic!("unknown snapshot id {id}"));
                    // Not torn, not mixed: the body is exactly the
                    // offline render of the named snapshot.
                    assert_eq!(
                        &resp.text(),
                        expected,
                        "{path}: snapshot {id} served a torn or mixed body"
                    );
                    served += 1;
                    distinct_max = distinct_max.max(id);
                }
                (served, distinct_max)
            })
        })
        .collect();

    for (i, report) in reports.iter().enumerate().skip(1) {
        let shards = shard_cycle[i % shard_cycle.len()];
        handle.publish(StudyStore::build_sharded(report.clone(), None, shards));
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0u64;
    let mut max_seen = 0u64;
    for reader in readers {
        let (served, distinct_max) = reader.join().expect("reader thread clean");
        assert!(served > 0, "every reader must have been served");
        total += served;
        max_seen = max_seen.max(distinct_max);
    }
    assert!(
        total >= PUBLISHES as u64,
        "load too light to exercise the swaps: {total}"
    );
    assert!(max_seen > 1, "no reader ever observed a post-swap snapshot");
    server.shutdown();
}
