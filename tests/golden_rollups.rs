//! Golden snapshot tests for the `/rollup` surfaces: fixed-seed rollup
//! CSVs are committed under `tests/fixtures/golden/rollups/`, pinning
//! the cube build, the k-way merge, the civil-time bucket edges and the
//! CSV rendering down to the byte — including one fixture whose window
//! straddles the America/Chicago fall-back DST transition, so a
//! regression in the fold/gap handling shows up as a reviewable diff.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_rollups
//! git diff tests/fixtures/golden/rollups/   # review what moved, commit
//! ```

use delta_gpu_resilience::prelude::*;
use hpclog::{PciAddr, XidEvent};
use servd::{RollupMetric, RollupQuery, StudyStore};
use std::path::PathBuf;

/// Same snapshot campaign as `golden_report.rs`, so one seed pins both
/// the paper surfaces and the rollup layer.
const SCALE: f64 = 0.02;
const SEED: u64 = 0x601D;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden")
        .join("rollups")
}

fn snapshot_store() -> StudyStore {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let report = pipeline.run_parallel(
        &campaign.archive,
        &bridge::jobs(&outcome.jobs),
        &bridge::jobs(&outcome.cpu_jobs),
        &bridge::outages(campaign.ledger.outages()),
        4,
    );
    StudyStore::build_sharded(report, None, 4)
}

fn check(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             BLESS=1 cargo test --test golden_rollups",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "rollup drifted from {}; if intentional, regenerate with \
         BLESS=1 cargo test --test golden_rollups and review the diff",
        path.display()
    );
}

fn q(metric: RollupMetric, bucket: Bucket, tz: &str) -> RollupQuery {
    RollupQuery {
        bucket,
        tz: tz.to_owned(),
        ..RollupQuery::for_metric(metric)
    }
}

#[test]
fn golden_rollups_match() {
    let store = snapshot_store();
    let render = |query: &RollupQuery| store.rollup_csv(query).expect("golden query renders");
    check(
        "errors_week_utc.csv",
        &render(&q(RollupMetric::Errors, Bucket::Week, "UTC")),
    );
    check(
        "errors_month_chicago.csv",
        &render(&q(RollupMetric::Errors, Bucket::Month, "America/Chicago")),
    );
    check(
        "mtbe_month_utc.csv",
        &render(&q(RollupMetric::Mtbe, Bucket::Month, "UTC")),
    );
    check(
        "impact_week_berlin.csv",
        &render(&q(RollupMetric::Impact, Bucket::Week, "Europe/Berlin")),
    );
    check(
        "availability_week_utc.csv",
        &render(&q(RollupMetric::Availability, Bucket::Week, "UTC")),
    );
}

/// A hand-built study whose whole window straddles the America/Chicago
/// fall-back transition (2024-11-03 07:00 UTC): the committed fixture
/// pins the fold hour's double bucket, the 25-hour day, and the outage
/// split at the transition boundary.
#[test]
fn golden_dst_straddle_matches() {
    let fold = Timestamp::from_ymd_hms(2024, 11, 3, 7, 0, 0).expect("valid instant");
    let mk = |secs_from_fold: i64, host: &str, gpu: u8, code: u16| {
        let t = Timestamp::from_unix((fold.unix() as i64 + secs_from_fold) as u64);
        XidEvent::new(t, host, PciAddr::for_gpu_index(gpu), XidCode::new(code), "")
    };
    let events = vec![
        mk(-5400, "gpub001", 0, 31),  // 00:30 CDT
        mk(-1800, "gpub001", 0, 119), // 01:30 CDT (first pass)
        mk(-60, "gpub002", 1, 74),    // 01:59 CDT
        mk(60, "gpub002", 1, 74),     // 01:01 CST (second pass)
        mk(1800, "gpub003", 2, 119),  // 01:30 CST
        mk(7200, "gpub003", 2, 63),   // 03:00 CST
    ];
    let outages = vec![OutageRecord {
        host: "gpub001".to_owned(),
        start: fold - Duration::from_secs(1800),
        duration: Duration::from_hours(3),
    }];
    let report = Pipeline::delta().run_events(events, None, &[], &[], &outages);
    let store = StudyStore::build_sharded(report, None, 2);
    let render = |query: &RollupQuery| store.rollup_csv(query).expect("golden query renders");
    check(
        "dst_straddle_errors_hour_chicago.csv",
        &render(&q(RollupMetric::Errors, Bucket::Hour, "America/Chicago")),
    );
    check(
        "dst_straddle_errors_day_chicago.csv",
        &render(&q(RollupMetric::Errors, Bucket::Day, "America/Chicago")),
    );
    check(
        "dst_straddle_availability_hour_chicago.csv",
        &render(&q(
            RollupMetric::Availability,
            Bucket::Hour,
            "America/Chicago",
        )),
    );
}
