//! The rollup-cube differential battery: every `/rollup` surface must be
//! byte-identical to a brute-force fold over the raw event stream —
//! across shard counts {1,2,4,8} × chaos {0%,5%} × buckets
//! {hour,day,week,month} × two DST-observing timezones — and the
//! `/errors` time window must be `[from, to)` on the exact edge.
//!
//! The oracles here trust only `simtime::civiltime` (whose bucket
//! functions are proven total/monotone/partition-complete by
//! `crates/simtime/tests/civiltime_properties.rs`); everything the
//! rollup layer adds on top — per-shard cube builds, the k-way merge,
//! sparse-cell rendering, window slicing, filters — is recomputed from
//! scratch with plain `BTreeMap` folds and compared byte-for-byte. The
//! DST legs pin the calendar facts directly: a fold-hour appears as two
//! buckets disambiguated by offset suffix, and the fall-back local day
//! is a single 25-hour bucket.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use hpclog::{PciAddr, XidEvent};
use resilience::csvio;
use servd::testutil::{connect, get_on};
use servd::{RollupMetric, RollupQuery, ServerConfig, StoreHandle, StudyStore};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

const SCALE: f64 = 0.02;
const SEED: u64 = 0x0C0B;
const LOG_YEAR: i32 = 2022;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TZS: [&str; 2] = ["America/Chicago", "Europe/Berlin"];

// ---------------------------------------------------------------- dataset

/// Same campaign construction as the other equivalence suites: one
/// simulated study, optionally chaos-corrupted, through the lenient
/// pipeline.
fn study(chaos_rate: f64) -> (StudyReport, QuarantineReport) {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    pipeline.run_lenient(
        log.as_slice(),
        LOG_YEAR,
        &csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        &csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        &csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    )
}

// ---------------------------------------------------------------- oracles

/// Position of a studied kind in Table I order — recomputed here so the
/// oracle shares nothing with `resilience::rollup::kind_index`.
fn studied_pos(kind: ErrorKind) -> Option<usize> {
    ErrorKind::STUDIED.iter().position(|&k| k == kind)
}

/// Whether a bucket start survives the `[from, to)` window.
fn in_window(start: Timestamp, from: Option<Timestamp>, to: Option<Timestamp>) -> bool {
    from.is_none_or(|f| start >= f) && to.is_none_or(|t| start < t)
}

/// Brute-force per-bucket error counts: an independent `BTreeMap` fold
/// over the raw coalesced rows (no cube, no merge, no linear scan).
fn fold_errors(
    report: &StudyReport,
    tz: &Tz,
    bucket: Bucket,
    host: Option<&str>,
) -> BTreeMap<Timestamp, (u64, Vec<u64>)> {
    let mut counts: BTreeMap<Timestamp, (u64, Vec<u64>)> = BTreeMap::new();
    for e in &report.errors {
        if host.is_some_and(|h| e.host != h) {
            continue;
        }
        let entry = counts
            .entry(tz.bucket_start(bucket, e.time))
            .or_insert_with(|| (0, vec![0; ErrorKind::STUDIED.len()]));
        entry.0 += 1;
        if let Some(i) = studied_pos(e.kind) {
            entry.1[i] += 1;
        }
    }
    counts
}

/// The `/rollup?metric=errors` oracle rendering.
fn oracle_errors(
    report: &StudyReport,
    tz: &Tz,
    bucket: Bucket,
    host: Option<&str>,
    kind: Option<ErrorKind>,
    from: Option<Timestamp>,
    to: Option<Timestamp>,
) -> String {
    let mut out = String::from("bucket,start,end,count\n");
    for (start, (total, by_kind)) in fold_errors(report, tz, bucket, host) {
        if !in_window(start, from, to) {
            continue;
        }
        let count = kind.and_then(studied_pos).map_or(total, |i| by_kind[i]);
        if count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{start},{},{count}",
            tz.bucket_label(bucket, start),
            tz.bucket_end(bucket, start),
        );
    }
    out
}

/// The `/rollup?metric=mtbe` oracle: the same counts with the MTBE each
/// bucket's UTC span implies, formatted like the store's `fmt_cell`.
fn oracle_mtbe(report: &StudyReport, tz: &Tz, bucket: Bucket, kind: Option<ErrorKind>) -> String {
    let nodes = report.stats.node_count() as f64;
    let mut out = String::from("bucket,start,end,count,mtbe_system_h,mtbe_node_h\n");
    for (start, (total, by_kind)) in fold_errors(report, tz, bucket, None) {
        let count = kind.and_then(studied_pos).map_or(total, |i| by_kind[i]);
        if count == 0 {
            continue;
        }
        let end = tz.bucket_end(bucket, start);
        let span_h = (end.unix() - start.unix()) as f64 / 3600.0;
        let system = span_h / count as f64;
        let _ = writeln!(
            out,
            "{},{start},{end},{count},{:.3},{:.3}",
            tz.bucket_label(bucket, start),
            system,
            system * nodes,
        );
    }
    out
}

/// The `/rollup?metric=impact` oracle: distinct GPU-failed jobs folded
/// by the bucket of their termination instant.
fn oracle_impact(report: &StudyReport, tz: &Tz, bucket: Bucket, kind: Option<ErrorKind>) -> String {
    let mut counts: BTreeMap<Timestamp, u64> = BTreeMap::new();
    match kind {
        None => {
            for (end, _job) in report.impact.failed_job_ends() {
                *counts.entry(tz.bucket_start(bucket, end)).or_default() += 1;
            }
        }
        Some(want) => {
            for (end, k, _job) in report.impact.attributions() {
                if k == want {
                    *counts.entry(tz.bucket_start(bucket, end)).or_default() += 1;
                }
            }
        }
    }
    let mut out = String::from("bucket,start,end,failed_jobs\n");
    for (start, count) in counts {
        if count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{start},{},{count}",
            tz.bucket_label(bucket, start),
            tz.bucket_end(bucket, start),
        );
    }
    out
}

/// The `/rollup?metric=availability` oracle: downtime apportioned to
/// buckets with an independent accumulation (its own cursor walk and
/// map; only the civiltime bucket functions are shared, and those are
/// property-proven elsewhere).
fn oracle_availability(report: &StudyReport, tz: &Tz, bucket: Bucket) -> String {
    let mut secs: BTreeMap<Timestamp, u64> = BTreeMap::new();
    for outage in &report.op_outages {
        let end = outage.start + outage.duration;
        let mut cursor = outage.start;
        while cursor < end {
            let bucket_end = tz.bucket_end(bucket, cursor);
            let slice_end = bucket_end.min(end);
            *secs.entry(tz.bucket_start(bucket, cursor)).or_default() +=
                slice_end.unix() - cursor.unix();
            cursor = bucket_end;
        }
    }
    let mut out = String::from("bucket,start,end,downtime_node_hours\n");
    for (start, s) in secs {
        if s == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{start},{},{:.3}",
            tz.bucket_label(bucket, start),
            tz.bucket_end(bucket, start),
            s as f64 / 3600.0,
        );
    }
    out
}

fn query(metric: RollupMetric, bucket: Bucket, tz: &str) -> RollupQuery {
    RollupQuery {
        bucket,
        tz: tz.to_owned(),
        ..RollupQuery::for_metric(metric)
    }
}

// ---------------------------------------------------------------- tests

/// The full sweep: shards × chaos × buckets × timezones, all four
/// metrics byte-compared against the brute-force oracles.
#[test]
fn rollups_match_brute_force_across_shards_chaos_buckets_timezones() {
    for chaos_rate in [0.0, 0.05] {
        let (report, quarantine) = study(chaos_rate);
        assert!(
            report.errors.len() > 100,
            "chaos={chaos_rate}: dataset too small to exercise the cubes"
        );
        assert!(
            report.impact.gpu_failed_jobs() > 0,
            "chaos={chaos_rate}: need failed jobs for the impact surface"
        );
        assert!(
            !report.op_outages.is_empty(),
            "chaos={chaos_rate}: need outages for the availability surface"
        );
        for n in SHARD_COUNTS {
            let store = StudyStore::build_sharded(report.clone(), Some(&quarantine), n);
            for tzname in TZS {
                let tz = Tz::by_name(tzname).expect("builtin tz");
                for bucket in Bucket::ALL {
                    let tag = format!("chaos={chaos_rate} n={n} {tzname} {bucket:?}");
                    assert_eq!(
                        store
                            .rollup_csv(&query(RollupMetric::Errors, bucket, tzname))
                            .unwrap(),
                        oracle_errors(&report, &tz, bucket, None, None, None, None),
                        "{tag}: errors diverged"
                    );
                    assert_eq!(
                        store
                            .rollup_csv(&query(RollupMetric::Mtbe, bucket, tzname))
                            .unwrap(),
                        oracle_mtbe(&report, &tz, bucket, None),
                        "{tag}: mtbe diverged"
                    );
                    assert_eq!(
                        store
                            .rollup_csv(&query(RollupMetric::Impact, bucket, tzname))
                            .unwrap(),
                        oracle_impact(&report, &tz, bucket, None),
                        "{tag}: impact diverged"
                    );
                    assert_eq!(
                        store
                            .rollup_csv(&query(RollupMetric::Availability, bucket, tzname))
                            .unwrap(),
                        oracle_availability(&report, &tz, bucket),
                        "{tag}: availability diverged"
                    );
                }
            }
        }
    }
}

/// Filtered legs on one sharded store: kind and host restrictions and
/// `[from, to)` windows, all against the oracles.
#[test]
fn filtered_rollups_match_brute_force() {
    let (report, quarantine) = study(0.0);
    let store = StudyStore::build_sharded(report.clone(), Some(&quarantine), 4);
    let tzname = "America/Chicago";
    let tz = Tz::by_name(tzname).expect("builtin tz");

    // A kind and host that actually occur, pulled from the data.
    let probe = &report.errors[report.errors.len() / 2];
    let kind = probe.kind;
    let host = probe.host.clone();
    let from = tz.bucket_start(Bucket::Day, report.errors[report.errors.len() / 4].time);
    let to = tz.bucket_start(Bucket::Day, report.errors[3 * report.errors.len() / 4].time);

    for bucket in Bucket::ALL {
        let kind_q = RollupQuery {
            kind: Some(kind),
            ..query(RollupMetric::Errors, bucket, tzname)
        };
        assert_eq!(
            store.rollup_csv(&kind_q).unwrap(),
            oracle_errors(&report, &tz, bucket, None, Some(kind), None, None),
            "{bucket:?}: kind filter diverged"
        );
        let host_q = RollupQuery {
            host: Some(host.clone()),
            ..query(RollupMetric::Errors, bucket, tzname)
        };
        assert_eq!(
            store.rollup_csv(&host_q).unwrap(),
            oracle_errors(&report, &tz, bucket, Some(&host), None, None, None),
            "{bucket:?}: host filter diverged"
        );
        let window_q = RollupQuery {
            from: Some(from),
            to: Some(to),
            ..query(RollupMetric::Errors, bucket, tzname)
        };
        assert_eq!(
            store.rollup_csv(&window_q).unwrap(),
            oracle_errors(&report, &tz, bucket, None, None, Some(from), Some(to)),
            "{bucket:?}: window diverged"
        );
        let mtbe_q = RollupQuery {
            kind: Some(kind),
            ..query(RollupMetric::Mtbe, bucket, tzname)
        };
        assert_eq!(
            store.rollup_csv(&mtbe_q).unwrap(),
            oracle_mtbe(&report, &tz, bucket, Some(kind)),
            "{bucket:?}: mtbe kind filter diverged"
        );
        let impact_q = RollupQuery {
            kind: Some(kind),
            ..query(RollupMetric::Impact, bucket, tzname)
        };
        assert_eq!(
            store.rollup_csv(&impact_q).unwrap(),
            oracle_impact(&report, &tz, bucket, Some(kind)),
            "{bucket:?}: impact kind filter diverged"
        );
    }
}

/// The DST ground truths, end to end through the store: the fall-back
/// fold hour is two buckets disambiguated by offset suffix, the
/// fall-back local day is one 25-hour bucket, the spring-forward day is
/// 23 hours, and an outage spanning the transition splits exactly at
/// the fold boundary. Verified against exhaustive per-second downtime
/// accumulation, not the cursor walk.
#[test]
fn dst_transitions_shape_the_cubes_correctly() {
    let chicago = Tz::by_name("America/Chicago").expect("builtin tz");
    // America/Chicago falls back 2024-11-03 at 07:00 UTC (01:59:59 CDT →
    // 01:00:00 CST) and springs forward 2024-03-10 at 08:00 UTC.
    let fold = Timestamp::from_ymd_hms(2024, 11, 3, 7, 0, 0).unwrap();
    let spring = Timestamp::from_ymd_hms(2024, 3, 10, 8, 0, 0).unwrap();
    let mk = |t: Timestamp, host: &str, gpu: u8| {
        XidEvent::new(t, host, PciAddr::for_gpu_index(gpu), XidCode::new(119), "")
    };
    let events = vec![
        // One event in each repetition of the 01:xx local hour.
        mk(fold - Duration::from_secs(1800), "gpub001", 0),
        mk(fold + Duration::from_secs(1800), "gpub002", 1),
        // And one the morning after the spring-forward gap.
        mk(spring + Duration::from_secs(900), "gpub003", 2),
    ];
    let outages = vec![OutageRecord {
        host: "gpub001".to_owned(),
        start: fold - Duration::from_secs(1800),
        duration: Duration::from_hours(2),
    }];
    let report = Pipeline::delta().run_events(events, None, &[], &[], &outages);
    let store = StudyStore::build_sharded(report.clone(), None, 2);

    // Hour cubes: the two fold events land in *different* buckets with
    // the *same* local label except for the offset suffix.
    let hours = store
        .rollup_csv(&query(
            RollupMetric::Errors,
            Bucket::Hour,
            "America/Chicago",
        ))
        .unwrap();
    assert!(
        hours.contains("2024-11-03T01:00-05:00,"),
        "first pass through 01:xx CDT missing:\n{hours}"
    );
    assert!(
        hours.contains("2024-11-03T01:00-06:00,"),
        "second pass through 01:xx CST missing:\n{hours}"
    );

    // Day cubes: both fold events share one 25 h bucket; the spring day
    // is 23 h.
    let days = store
        .rollup_csv(&query(RollupMetric::Errors, Bucket::Day, "America/Chicago"))
        .unwrap();
    let fall_row = days
        .lines()
        .find(|l| l.starts_with("2024-11-03,"))
        .expect("fall-back day row");
    let fields: Vec<&str> = fall_row.split(',').collect();
    let day_start = servd_parse_time(fields[1]);
    let day_end = servd_parse_time(fields[2]);
    assert_eq!(day_end.unix() - day_start.unix(), 25 * 3600, "{fall_row}");
    assert!(fall_row.ends_with(",2"), "{fall_row}");
    let spring_row = days
        .lines()
        .find(|l| l.starts_with("2024-03-10,"))
        .expect("spring-forward day row");
    let sfields: Vec<&str> = spring_row.split(',').collect();
    assert_eq!(
        servd_parse_time(sfields[2]).unix() - servd_parse_time(sfields[1]).unix(),
        23 * 3600,
        "{spring_row}"
    );

    // Availability across the fold, against an exhaustive per-second
    // accumulation (feasible here: the outage is two hours long).
    for bucket in Bucket::ALL {
        let mut per_second: BTreeMap<Timestamp, u64> = BTreeMap::new();
        let outage = &report.op_outages[0];
        for s in outage.start.unix()..(outage.start + outage.duration).unix() {
            *per_second
                .entry(chicago.bucket_start(bucket, Timestamp::from_unix(s)))
                .or_default() += 1;
        }
        let mut want = String::from("bucket,start,end,downtime_node_hours\n");
        for (start, secs) in per_second {
            let _ = writeln!(
                want,
                "{},{start},{},{:.3}",
                chicago.bucket_label(bucket, start),
                chicago.bucket_end(bucket, start),
                secs as f64 / 3600.0,
            );
        }
        assert_eq!(
            store
                .rollup_csv(&query(
                    RollupMetric::Availability,
                    bucket,
                    "America/Chicago"
                ))
                .unwrap(),
            want,
            "{bucket:?}: availability across the fold diverged"
        );
    }

    // A query window that straddles the transition slices on bucket
    // start: [fold-1h, fold+1h) keeps both fold hours and nothing else.
    let windowed = store
        .rollup_csv(&RollupQuery {
            from: Some(fold - Duration::from_secs(3600)),
            to: Some(fold + Duration::from_secs(3600)),
            ..query(RollupMetric::Errors, Bucket::Hour, "America/Chicago")
        })
        .unwrap();
    assert_eq!(windowed.lines().count(), 1 + 2, "{windowed}");
}

/// Parses the store's ISO timestamp rendering back to a [`Timestamp`].
fn servd_parse_time(raw: &str) -> Timestamp {
    servd::store::parse_time(raw).expect("store-rendered timestamp parses back")
}

/// HTTP leg: `/rollup` over the wire is byte-identical to the in-process
/// renderer for every metric × bucket × tz, 400s stay 400 across shard
/// counts, and the `/errors` boundary contract holds on the exact edge.
#[test]
fn served_rollups_match_in_process_and_errors_window_is_half_open() {
    let (report, quarantine) = study(0.0);
    let edge_from = report.errors[report.errors.len() / 4].time;
    let edge_to = report.errors[3 * report.errors.len() / 4].time;
    let on_edge = report
        .errors
        .iter()
        .filter(|e| e.time >= edge_from && e.time < edge_to)
        .count();
    assert!(
        report.errors.iter().any(|e| e.time == edge_to),
        "the exclusive edge must sit on a real row for the test to bite"
    );

    let mut paths: Vec<String> = Vec::new();
    for metric in ["errors", "mtbe", "impact", "availability"] {
        for bucket in Bucket::ALL {
            for tzname in TZS {
                paths.push(format!(
                    "/rollup?metric={metric}&bucket={}&tz={tzname}",
                    bucket.as_str()
                ));
            }
        }
    }

    let mut baseline: Option<Vec<(u16, Vec<u8>)>> = None;
    for n in [1usize, 4] {
        let store = StudyStore::build_sharded(report.clone(), Some(&quarantine), n);
        let handle = Arc::new(StoreHandle::new(store));
        let server = servd::start(
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
            Arc::clone(&handle),
        )
        .expect("server starts");
        let mut conn = connect(server.addr());

        // The wire bytes equal the in-process renderer, and repeating a
        // request hits the snapshot-scoped cache with the same bytes.
        let served: Vec<(u16, Vec<u8>)> = paths
            .iter()
            .map(|p| {
                let first = get_on(&mut conn, p);
                assert_eq!(first.status, 200, "{p}");
                let again = get_on(&mut conn, p);
                assert_eq!(again.body, first.body, "cache changed bytes at {p}");
                (first.status, first.body)
            })
            .collect();
        for (p, got) in paths.iter().zip(&served) {
            let raw = p.strip_prefix("/rollup?").expect("rollup path");
            let mut q = RollupQuery::for_metric(RollupMetric::Errors);
            let mut metric = RollupMetric::Errors;
            for pair in raw.split('&') {
                let (k, v) = pair.split_once('=').expect("k=v");
                match k {
                    "metric" => metric = RollupMetric::parse(v).expect("metric"),
                    "bucket" => q.bucket = v.parse().expect("bucket"),
                    "tz" => q.tz = v.to_owned(),
                    other => panic!("unexpected key {other}"),
                }
            }
            q.metric = metric;
            assert_eq!(
                String::from_utf8_lossy(&got.1),
                handle.current().store.rollup_csv(&q).expect("renders"),
                "wire bytes diverge from in-process at {p} with {n} shards"
            );
        }

        // Bad queries are 400 over the wire too.
        for bad in [
            "/rollup",
            "/rollup?metric=bogus",
            "/rollup?metric=errors&bucket=decade",
            "/rollup?metric=errors&tz=Mars/Olympus",
            "/rollup?metric=mtbe&host=x",
        ] {
            assert_eq!(get_on(&mut conn, bad).status, 400, "{bad}");
        }

        // Satellite fix pinned over HTTP: `from` inclusive, `to`
        // exclusive on the exact row instants.
        let errors_csv = get_on(
            &mut conn,
            &format!("/errors?from={}&to={}", edge_from.unix(), edge_to.unix()),
        );
        assert_eq!(errors_csv.status, 200);
        let rows = String::from_utf8_lossy(&errors_csv.body)
            .lines()
            .count()
            .saturating_sub(1);
        assert_eq!(
            rows, on_edge,
            "half-open window [from, to) mis-sliced with {n} shards"
        );

        match &baseline {
            None => baseline = Some(served),
            Some(expect) => {
                for (p, (got, want)) in paths.iter().zip(served.iter().zip(expect.iter())) {
                    assert_eq!(got.0, want.0, "status drift at {p}");
                    assert_eq!(
                        String::from_utf8_lossy(&got.1),
                        String::from_utf8_lossy(&want.1),
                        "served bytes drift at {p} across shard counts"
                    );
                }
            }
        }
        server.shutdown();
    }
}
