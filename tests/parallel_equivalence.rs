//! The differential suite behind the parallel pipeline's determinism
//! contract: a full rendered Delta campaign, analysed serially and via
//! `Pipeline::run_parallel` / `run_lenient_parallel` at threads ∈
//! {1, 2, 4, 8}, under 0% and 5% chaos corruption. Every rendered surface
//! — Table I/II/III markdown, the ASCII tables, Fig. 2, the availability
//! numbers — must be byte-identical across all runs, and the lenient
//! ledgers must match down to the reservoir-sampled exemplars.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use resilience::{csvio, markdown};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Scaled calendars start Jan 1 2022 and (at this scale) end before New
/// Year, so one fixed year resolves every year-less syslog stamp.
const LOG_YEAR: i32 = 2022;

/// Everything a study renders deterministically, concatenated: byte
/// equality of this string is the suite's equivalence relation.
fn render_all(r: &StudyReport) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\navail_emp={:.12}\navail_est={:?}\nmttf={:?}",
        markdown::table1_md(r),
        markdown::table2_md(r),
        markdown::table3_md(r),
        report::table1(r),
        report::table2(r),
        report::table3(r),
        report::figure2(r),
        report::full(r),
        r.availability.availability_empirical(),
        r.availability_estimate(),
        r.mttf_hours,
    )
}

struct Rendered {
    campaign: CampaignOutput,
    pipeline: Pipeline,
    gpu_csv: String,
    cpu_csv: String,
    outages_csv: String,
    gpu_jobs: Vec<AccountedJob>,
    cpu_jobs: Vec<AccountedJob>,
    outages: Vec<OutageRecord>,
}

/// Renders one campaign (logs + accounting CSVs) for the suite to chew on.
fn rendered_campaign(scale: f64, seed: u64) -> Rendered {
    let mut config = FaultConfig::delta_scaled(scale);
    config.seed = seed;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(scale);
    let outcome =
        Simulation::new(&cluster, workload, seed).run(&campaign.ground_truth, &campaign.holds);
    let gpu_jobs = bridge::jobs(&outcome.jobs);
    let cpu_jobs = bridge::jobs(&outcome.cpu_jobs);
    let outages = bridge::outages(campaign.ledger.outages());
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    Rendered {
        pipeline,
        gpu_csv: csvio::render_jobs(&gpu_jobs),
        cpu_csv: csvio::render_jobs(&cpu_jobs),
        outages_csv: csvio::render_outages(&outages),
        gpu_jobs,
        cpu_jobs,
        outages,
        campaign,
    }
}

fn render_log(archive: &hpclog::archive::Archive) -> Vec<u8> {
    let mut out = Vec::new();
    for line in archive.iter() {
        out.extend_from_slice(line.to_string().as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn strict_path_is_byte_identical_at_every_thread_count() {
    let rc = rendered_campaign(0.02, 0xD1FF);
    let serial = rc.pipeline.run(
        &rc.campaign.archive,
        &rc.gpu_jobs,
        &rc.cpu_jobs,
        &rc.outages,
    );
    let expect = render_all(&serial);
    assert!(
        serial.coalesce_summary.errors > 0,
        "campaign produced no errors; the comparison would be vacuous"
    );
    for t in THREADS {
        let par = rc.pipeline.run_parallel(
            &rc.campaign.archive,
            &rc.gpu_jobs,
            &rc.cpu_jobs,
            &rc.outages,
            t,
        );
        assert_eq!(par.extract_stats, serial.extract_stats, "threads={t}");
        assert_eq!(par.errors, serial.errors, "threads={t}");
        assert_eq!(render_all(&par), expect, "threads={t}: render differs");
    }
}

#[test]
fn lenient_path_is_byte_identical_under_corruption() {
    let rc = rendered_campaign(0.02, 0xD1FF);
    let clean = render_log(&rc.campaign.archive);
    for rate in [0.0, 0.05] {
        let bytes = if rate == 0.0 {
            clean.clone()
        } else {
            let mut chaos = ChaosInjector::new(ChaosConfig::uniform(rate, 0xD1FF ^ 0xE12));
            chaos.corrupt_archive(&rc.campaign.archive)
        };
        let (serial, serial_q) = rc.pipeline.run_lenient(
            bytes.as_slice(),
            LOG_YEAR,
            &rc.gpu_csv,
            &rc.cpu_csv,
            &rc.outages_csv,
        );
        let expect = render_all(&serial);
        if rate > 0.0 {
            assert!(
                serial_q.ledger.total() > 0,
                "5% chaos quarantined nothing; the corrupt leg is vacuous"
            );
        }
        for t in THREADS {
            let (par, par_q) = rc.pipeline.run_lenient_parallel(
                bytes.as_slice(),
                LOG_YEAR,
                &rc.gpu_csv,
                &rc.cpu_csv,
                &rc.outages_csv,
                t,
            );
            assert_eq!(
                render_all(&par),
                expect,
                "rate={rate} threads={t}: render differs"
            );
            assert_eq!(
                par_q.ledger.counts(),
                serial_q.ledger.counts(),
                "rate={rate} threads={t}: ledger counts differ"
            );
            assert_eq!(
                par_q.ledger.exemplars(),
                serial_q.ledger.exemplars(),
                "rate={rate} threads={t}: exemplars differ"
            );
            assert_eq!(
                par_q.ledger.io_errors(),
                serial_q.ledger.io_errors(),
                "rate={rate} threads={t}"
            );
            assert_eq!(par_q.caveats, serial_q.caveats, "rate={rate} threads={t}");
        }
    }
}

#[test]
fn strict_and_lenient_agree_on_clean_bytes() {
    // Cross-path anchor: on a clean rendered archive, the lenient byte
    // path and the strict archive path must agree on every aggregate the
    // renders show (the canonical event order makes them byte-identical).
    let rc = rendered_campaign(0.02, 0xFEED);
    let strict = rc.pipeline.run(
        &rc.campaign.archive,
        &rc.gpu_jobs,
        &rc.cpu_jobs,
        &rc.outages,
    );
    let log = render_log(&rc.campaign.archive);
    let (lenient, q) = rc.pipeline.run_lenient_parallel(
        log.as_slice(),
        LOG_YEAR,
        &rc.gpu_csv,
        &rc.cpu_csv,
        &rc.outages_csv,
        4,
    );
    assert!(q.is_clean(), "{:?}", q.ledger.counts());
    assert_eq!(
        lenient.coalesce_summary.errors,
        strict.coalesce_summary.errors
    );
    assert_eq!(markdown::table1_md(&lenient), markdown::table1_md(&strict));
    assert_eq!(markdown::table2_md(&lenient), markdown::table2_md(&strict));
    assert_eq!(
        lenient.availability.availability_empirical(),
        strict.availability.availability_empirical()
    );
}
