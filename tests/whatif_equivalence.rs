//! The determinism-and-canonicalization proof for the `/whatif`
//! counterfactual service.
//!
//! Three contracts are exercised end-to-end over real HTTP servers:
//!
//! 1. **Canonicalization** — reordered, duplicated, and family-aliased
//!    query parameters collapse to one cache key (observable via
//!    `X-Cache: hit`), and malformed specs are typed `400`s.
//! 2. **Determinism** — the same spec + seed yields a byte-identical
//!    response body across event-loop worker counts {1, 4} × store
//!    shard layouts {1, 4} × (cold compute, cached, and recomputed
//!    after a snapshot swap), and those bytes match an offline oracle
//!    that drives the simulation substrates directly — without going
//!    through `resilience::scenario`.
//! 3. **Single-flight** — identical specs submitted from N concurrent
//!    keep-alive connections compute exactly one campaign
//!    (`servd_whatif_computed_total` advances by one) and every client
//!    reads identical bytes.
//!
//! The suite serializes itself on a process-local mutex: the
//! single-flight leg asserts on deltas of global metrics, which must
//! not interleave with another leg's campaigns.

use delta_gpu_resilience::prelude::*;
use resilience::scenario::{CampaignResult, RepOutcome, ScenarioSpec, SIM_SCALE};
use servd::testutil::{connect, get_on, request, request_on, whatif_to_completion};
use servd::whatif::render_result;
use servd::{ServerConfig, StoreHandle, StudyStore, WhatifConfig};
use slurmsim::SchedPolicy;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes the tests in this file (global-metric deltas must not
/// interleave).
fn suite_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn empty_store(shards: usize) -> Arc<StoreHandle> {
    let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
    Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report, None, shards,
    )))
}

fn serve(
    store: Arc<StoreHandle>,
    loop_workers: usize,
    whatif_workers: usize,
) -> servd::RunningServer {
    servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: loop_workers,
            whatif: WhatifConfig {
                workers: whatif_workers,
                ..WhatifConfig::default()
            },
            ..ServerConfig::default()
        },
        store,
    )
    .expect("server starts on an ephemeral port")
}

// ------------------------------------------------ parse / canonicalize

#[test]
fn equivalent_specs_share_one_cache_key() {
    let _guard = suite_lock();
    let store = empty_store(1);
    let server = serve(store, 2, 1);
    let addr = server.addr();

    // Cold compute under one ordering...
    let cold = request(addr, "GET", "/whatif?seed=77&reps=1&mttr_scale=0.5", b"");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("X-Cache"), Some("miss"));

    // ...then every equivalent spelling is a hit on the same bytes:
    // reordered, duplicated (identically), zero-padded floats, and a
    // POST carrying the spec as a form body.
    for path in [
        "/whatif?mttr_scale=0.5&seed=77&reps=1",
        "/whatif?reps=1&mttr_scale=0.50&seed=77&mttr_scale=0.5",
    ] {
        let resp = request(addr, "GET", path, b"");
        assert_eq!(resp.status, 200, "{path}");
        assert_eq!(resp.header("X-Cache"), Some("hit"), "{path}");
        assert_eq!(resp.body, cold.body, "{path}");
    }
    let form = request(addr, "POST", "/whatif", b"seed=77&reps=1&mttr_scale=0.5");
    assert_eq!(form.status, 200);
    assert_eq!(form.header("X-Cache"), Some("hit"));
    assert_eq!(form.body, cold.body);

    // XID codes canonicalize by hazard family: 94 (contained memory)
    // and 48 (DBE) both scale the uncorrectable-memory rate.
    let family_a = request(addr, "GET", "/whatif?seed=78&reps=1&xid_rate=94:2", b"");
    assert_eq!(family_a.status, 200);
    assert_eq!(family_a.header("X-Cache"), Some("miss"));
    let family_b = request(addr, "GET", "/whatif?seed=78&reps=1&xid_rate=48:2", b"");
    assert_eq!(family_b.header("X-Cache"), Some("hit"));
    assert_eq!(family_b.body, family_a.body);

    server.shutdown();
}

#[test]
fn malformed_specs_are_typed_400s() {
    let _guard = suite_lock();
    let store = empty_store(1);
    let server = serve(store, 1, 1);
    let addr = server.addr();
    for (query, needle) in [
        ("mttr_scale=0", "mttr_scale"),
        ("mttr_scale=nan", "mttr_scale"),
        ("mttr_scale=1e9", "mttr_scale"),
        ("xid_rate=13:2", "not a studied XID"),
        ("xid_rate=999:2", "not a studied XID"),
        ("xid_rate=79", "expected <XID>:<multiplier>"),
        ("xid_rate=79:0", "xid_rate"),
        ("sched=lifo", "fifo|backfill"),
        ("seed=-1", "seed"),
        ("reps=0", "reps"),
        ("reps=4096", "exceeds the server cap"),
        ("bogus=1", "unknown query parameter"),
        ("mttr_scale=0.5&mttr_scale=2", "conflicting"),
        ("xid_rate=94:2&xid_rate=48:3", "conflicting"),
    ] {
        let resp = request(addr, "GET", &format!("/whatif?{query}"), b"");
        assert_eq!(resp.status, 400, "{query}: {}", resp.text());
        assert!(
            resp.text().contains(needle),
            "{query}: {:?} lacks {needle:?}",
            resp.text()
        );
    }
    server.shutdown();
}

// ------------------------------------------------------- offline oracle

/// Drives the substrates directly — `faultsim` campaign, op-phase
/// filtering, ledger downtime, `slurmsim` co-simulation — without
/// touching `resilience::scenario`'s campaign driver. Any divergence
/// between this and the served numbers is a bug in the scenario layer.
fn oracle_rep(mttr_scale: f64, sched: SchedPolicy, rep_seed: u64) -> RepOutcome {
    let mut config = FaultConfig::delta_scaled(SIM_SCALE);
    config.emit_logs = false;
    config.seed = rep_seed;
    if mttr_scale != 1.0 {
        let model = |mean: f64, median: f64| {
            simrng::dist::LogNormal::from_mean_median(mean * mttr_scale, median * mttr_scale)
                .expect("valid repair distribution")
        };
        config.repair = clustersim::RepairModel::new(model(0.88, 0.60), model(24.0, 12.0));
    }
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(SIM_SCALE), rep_seed)
        .with_policy(sched)
        .run(&campaign.ground_truth, &campaign.holds);
    let op = campaign.config.periods.op;
    let op_hours = op.hours();
    let errors = campaign.events_in(Phase::Op).count() as u64;
    let op_downtime: f64 = campaign
        .ledger
        .outages()
        .iter()
        .filter(|o| op.contains(o.start))
        .map(|o| o.duration.as_hours_f64())
        .sum();
    RepOutcome {
        errors,
        reboots: campaign.ledger.outage_count() as u64,
        mtbe_hours: if errors > 0 {
            op_hours / errors as f64
        } else {
            0.0
        },
        availability: 1.0
            - op_downtime / (f64::from(campaign.config.spec.gpu_node_count()) * op_hours),
        jobs_killed: outcome.stats.error_kills,
    }
}

/// The full oracle body for `mttr_scale=0.5&reps=2&seed=9`: paired rep
/// seeds forked exactly as the scenario layer documents, baseline and
/// scenario arms driven directly.
fn oracle_body() -> String {
    let spec = ScenarioSpec::parse(
        &[
            ("mttr_scale".to_owned(), "0.5".to_owned()),
            ("reps".to_owned(), "2".to_owned()),
            ("seed".to_owned(), "9".to_owned()),
        ],
        32,
    )
    .expect("valid spec");
    let root = Rng::seed_from(9);
    let mut baseline = Vec::new();
    let mut scenario = Vec::new();
    for rep in 0..2u64 {
        let rep_seed = root.fork(rep).next_u64();
        baseline.push(oracle_rep(1.0, SchedPolicy::Backfill, rep_seed));
        scenario.push(oracle_rep(0.5, SchedPolicy::Backfill, rep_seed));
    }
    render_result(&CampaignResult {
        spec,
        baseline,
        scenario,
    })
}

// ------------------------------------------------ determinism matrix

#[test]
fn bodies_are_identical_across_workers_shards_and_snapshot_swaps() {
    let _guard = suite_lock();
    let expected = oracle_body();
    let path = "/whatif?mttr_scale=0.5&reps=2&seed=9";
    for loop_workers in [1, 4] {
        for shards in [1, 4] {
            let store = empty_store(shards);
            let server = serve(Arc::clone(&store), loop_workers, 2);
            let addr = server.addr();
            let label = format!("workers={loop_workers} shards={shards}");

            let cold = request(addr, "GET", path, b"");
            assert_eq!(cold.status, 200, "{label}: {}", cold.text());
            assert_eq!(cold.header("X-Cache"), Some("miss"), "{label}");
            assert_eq!(cold.text(), expected, "{label}: cold vs oracle");

            let cached = request(addr, "GET", path, b"");
            assert_eq!(cached.header("X-Cache"), Some("hit"), "{label}");
            assert_eq!(cached.body, cold.body, "{label}: cached");

            // Swap the snapshot: the what-if cache is snapshot-scoped,
            // so the next request recomputes — to the same bytes,
            // because the campaign depends only on the spec.
            let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
            let old_id = store.current().id;
            let new_id = store.publish(StudyStore::build_sharded(report, None, shards));
            assert_ne!(old_id, new_id);
            let post_swap = request(addr, "GET", path, b"");
            assert_eq!(post_swap.status, 200, "{label}: {}", post_swap.text());
            assert_eq!(
                post_swap.header("X-Cache"),
                Some("miss"),
                "{label}: post-swap"
            );
            assert_eq!(
                post_swap.header("X-Snapshot"),
                Some(new_id.to_string().as_str())
            );
            assert_eq!(post_swap.body, cold.body, "{label}: post-swap bytes");

            server.shutdown();
        }
    }
}

#[test]
fn long_campaigns_answer_202_and_poll_to_the_same_bytes() {
    let _guard = suite_lock();
    let store = empty_store(1);
    let server = serve(store, 2, 2);
    let addr = server.addr();

    // reps=6 is over the sync threshold: the first answer is a 202
    // whose poll URL eventually serves the finished body.
    let polled = whatif_to_completion(addr, "/whatif?reps=6&seed=3&xid_rate=79:2", 200);
    assert_eq!(polled.status, 200, "{}", polled.text());

    // The same spec through the front door is now a straight cache hit
    // with identical bytes.
    let hit = request(addr, "GET", "/whatif?reps=6&seed=3&xid_rate=79:2", b"");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("X-Cache"), Some("hit"));
    assert_eq!(hit.body, polled.body);
    server.shutdown();
}

// ---------------------------------------------- single-flight under load

fn metric_value(addr: std::net::SocketAddr, name: &str) -> u64 {
    let metrics = request(addr, "GET", "/metrics", b"").text();
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn concurrent_identical_specs_compute_one_campaign() {
    let _guard = suite_lock();
    obs::set_enabled(true);
    let store = empty_store(2);
    let server = serve(store, 4, 2);
    let addr = server.addr();
    let computed_before = metric_value(addr, "servd_whatif_computed_total");

    const CLIENTS: usize = 4;
    let path = "/whatif?seed=4242&reps=2&sched=fifo";
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut conn = connect(addr);
                    // Keep-alive: prove the connection survives the
                    // inline wait by reusing it for the poll below.
                    let resp = request_on(&mut conn, "GET", path, b"");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let again = get_on(&mut conn, path);
                    assert_eq!(again.header("X-Cache"), Some("hit"));
                    assert_eq!(again.body, resp.body);
                    resp.body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "all clients read identical bytes");
    }
    let computed_after = metric_value(addr, "servd_whatif_computed_total");
    assert_eq!(
        computed_after - computed_before,
        1,
        "N identical concurrent specs must compute exactly one campaign"
    );
    server.shutdown();
}
