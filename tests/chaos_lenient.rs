//! Robustness integration tests: the lenient ingestion path against the
//! committed golden corrupt corpus (`tests/fixtures/`) and against seeded
//! chaos at storm scale. The contract under test: `run_lenient` never
//! panics, every defect is classified into exactly one quarantine
//! category, and clean input leaves the ledger empty.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use hpclog::extract::XidExtractor;
use hpclog::{QuarantineCategory, QuarantineLedger};
use resilience::csvio;

const GOLDEN_LOG: &[u8] = include_bytes!("fixtures/corrupt_golden.log");
const CLEAN_LOG: &str = include_str!("fixtures/clean.log");
const CORRUPT_JOBS: &str = include_str!("fixtures/jobs_corrupt.csv");
const CORRUPT_OUTAGES: &str = include_str!("fixtures/outages_corrupt.csv");

/// The fixture's stamps are year-less; the corpus is defined against 2022.
const GOLDEN_YEAR: i32 = 2022;

#[test]
fn golden_corpus_counts_are_exact() {
    let mut ex = XidExtractor::studied_only(GOLDEN_YEAR);
    let mut ledger = QuarantineLedger::new();
    let events = ex.scan_reader_lenient(GOLDEN_LOG, &mut ledger);

    // Keep in sync with tests/fixtures/README.md.
    use QuarantineCategory as Q;
    let counts = ledger.counts();
    assert_eq!(counts.get(Q::Truncated), 2);
    assert_eq!(counts.get(Q::BadXid), 2);
    assert_eq!(counts.get(Q::Encoding), 1);
    assert_eq!(counts.get(Q::MalformedTimestamp), 2);
    assert_eq!(counts.get(Q::OutOfOrder), 2);
    assert_eq!(counts.get(Q::OversizedLine), 1);
    assert_eq!(counts.get(Q::BadRecord), 0);
    assert_eq!(ledger.total(), 10);
    assert_eq!(ledger.io_errors(), 0);

    assert_eq!(events.len(), 3, "XID 79, 31 and 94 must survive");
    assert_eq!(events[0].code.value(), 79);
    assert_eq!(events[1].code.value(), 31);
    assert_eq!(events[2].code.value(), 94);
    let stats = ex.stats();
    assert_eq!(stats.lines_seen, 16, "the empty line is skipped silently");
    assert_eq!(stats.excluded, 1, "XID 13 is excluded, not quarantined");
    assert_eq!(stats.quarantined, counts);

    // Exemplars point back into the corpus with 1-based line numbers.
    assert!(!ledger.exemplars().is_empty());
    for ex in ledger.exemplars() {
        assert!((1..=17).contains(&ex.line_no), "line {}", ex.line_no);
    }
}

#[test]
fn golden_corpus_through_run_lenient() {
    let pipeline = Pipeline::delta();
    let (report, quarantine) = pipeline.run_lenient(
        GOLDEN_LOG,
        GOLDEN_YEAR,
        CORRUPT_JOBS,
        CORRUPT_JOBS,
        CORRUPT_OUTAGES,
    );

    // 10 log defects + 2 bad GPU-job rows + 2 bad CPU-job rows + 1 bad
    // outage row, each in exactly one category.
    assert_eq!(quarantine.ledger.total(), 15);
    assert_eq!(
        quarantine
            .ledger
            .counts()
            .get(QuarantineCategory::BadRecord),
        5
    );

    // Three distinct errors survive (coalescing cannot merge them: three
    // different hosts), and the jobs/outages that parsed are analysed.
    assert_eq!(report.coalesce_summary.errors, 3);
    assert_eq!(report.availability.outage_count(), 1);
    assert!(report.gpu_success.is_some());

    // 10 of 16 log lines rejected: the result must be flagged, not hidden.
    assert!(
        quarantine.caveats.iter().any(|c| matches!(
            c,
            Caveat::HighRejectRate {
                rejected: 10,
                seen: 16
            }
        )),
        "caveats: {:?}",
        quarantine.caveats
    );
    assert!(!quarantine.is_clean());
}

#[test]
fn clean_input_produces_empty_ledger() {
    let gpu_jobs = csvio::render_jobs(&[]);
    let outages = csvio::render_outages(&[]);
    let pipeline = Pipeline::delta();
    let (report, quarantine) = pipeline.run_lenient(
        CLEAN_LOG.as_bytes(),
        GOLDEN_YEAR,
        &gpu_jobs,
        &gpu_jobs,
        &outages,
    );
    assert!(quarantine.is_clean(), "caveats: {:?}", quarantine.caveats);
    assert_eq!(quarantine.ledger.total(), 0);
    assert!(quarantine.ledger.exemplars().is_empty());
    assert_eq!(report.coalesce_summary.errors, 3);

    // And the strict path agrees exactly on the same input.
    let strict = pipeline
        .run_csv(
            CLEAN_LOG.as_bytes(),
            GOLDEN_YEAR,
            &gpu_jobs,
            &gpu_jobs,
            &outages,
        )
        .expect("clean input must satisfy the strict path too");
    assert_eq!(strict.coalesce_summary, report.coalesce_summary);
}

#[test]
fn ten_percent_corruption_never_panics_and_accounts_fully() {
    // A real scaled campaign, rendered and then corrupted at 10% per line —
    // five times the worst plausible rate. The scaled calendar stays inside
    // 2022, so one log year resolves every stamp.
    let mut config = FaultConfig::delta_scaled(0.01);
    config.seed = 21;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();

    let mut chaos = ChaosInjector::new(ChaosConfig::uniform_with_duplicates(0.10, 0.02, 21));
    let bytes = chaos.corrupt_archive(&campaign.archive);
    let stats = chaos.stats();
    assert!(stats.quarantinable() > 0, "chaos must actually corrupt");

    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let gpu_jobs = csvio::render_jobs(&[]);
    let outages = csvio::render_outages(&[]);
    let (report, quarantine) =
        pipeline.run_lenient(bytes.as_slice(), 2022, &gpu_jobs, &gpu_jobs, &outages);

    // The accounting identity: the ledger explains exactly the injected
    // corruption — nothing lost silently, nothing invented.
    assert_eq!(quarantine.ledger.total(), stats.quarantinable());
    assert_eq!(quarantine.ledger.io_errors(), 0);
    // The analysis still stands on the surviving 90%.
    assert!(report.coalesce_summary.errors > 0);
    assert!(
        report.stats_raw.total_count(Phase::PreOp) + report.stats_raw.total_count(Phase::Op) > 0
    );
}

#[test]
fn same_seed_means_byte_identical_corruption() {
    let mut config = FaultConfig::delta_scaled(0.01);
    config.seed = 22;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let corrupt = |seed| {
        let mut chaos = ChaosInjector::new(ChaosConfig::uniform(0.05, seed));
        let bytes = chaos.corrupt_archive(&campaign.archive);
        (bytes, chaos.stats())
    };
    assert_eq!(corrupt(7), corrupt(7));
    assert_ne!(corrupt(7).0, corrupt(8).0);
}
