//! The differential proof layer for the streaming pipeline: incremental
//! ingestion at any batching, with or without checkpoint cuts, must equal
//! the batch lenient pipeline **byte-for-byte on every rendered surface**
//! — tables, Fig. 2, findings, markdown, and the quarantine ledger down
//! to its reservoir-sampled exemplars.
//!
//! The full campaign is streamed at batch sizes {1, 7, 1024, whole}
//! against clean and 5%-corrupted logs; the golden-snapshot campaign is
//! streamed and compared against the committed fixtures; and targeted
//! regressions pin the two stateful hazards: a coalescing window spanning
//! a checkpoint cut (Δt = 20 s boundary), and reservoir determinism
//! across restore.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use hpclog::PciAddr;
use resilience::checkpoint::Checkpoint;
use resilience::incremental::StreamingPipeline;
use resilience::{csvio, markdown};
use std::path::PathBuf;
use xid::XidCode;

/// The campaign under test (small enough for CI, rich enough that every
/// table, the figure and the ledger have non-trivial content).
const SCALE: f64 = 0.02;
const SEED: u64 = 0xD1FF;
/// The scaled calendar stays inside 2022 (see E12/E13).
const LOG_YEAR: i32 = 2022;
/// The golden snapshot campaign (keep in sync with tests/golden_report.rs).
const GOLDEN_SCALE: f64 = 0.02;
const GOLDEN_SEED: u64 = 0x601D;

/// Everything a run renders, concatenated: if any surface moves by one
/// byte, the diff names the campaign leg that moved it.
fn render_all(r: &StudyReport) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n{:?}",
        report::full(r),
        markdown::table1_md(r),
        markdown::table2_md(r),
        markdown::table3_md(r),
        markdown::findings_md(r),
        report::figure2(r),
        r.availability_estimate()
    )
}

/// Ledger equality down to the reservoir: counts, caveats, io errors and
/// the exact surviving exemplars.
fn assert_quarantine_eq(a: &QuarantineReport, b: &QuarantineReport, what: &str) {
    assert_eq!(
        a.ledger.counts(),
        b.ledger.counts(),
        "{what}: ledger counts"
    );
    assert_eq!(
        a.ledger.io_errors(),
        b.ledger.io_errors(),
        "{what}: io errors"
    );
    assert_eq!(
        a.ledger.exemplars(),
        b.ledger.exemplars(),
        "{what}: reservoir exemplars"
    );
    assert_eq!(a.caveats, b.caveats, "{what}: caveats");
}

struct Dataset {
    pipeline: Pipeline,
    log: Vec<u8>,
    gpu_csv: String,
    cpu_csv: String,
    out_csv: String,
}

fn dataset(scale: f64, seed: u64, chaos_rate: f64) -> Dataset {
    let mut config = FaultConfig::delta_scaled(scale);
    config.seed = seed;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(scale);
    let outcome =
        Simulation::new(&cluster, workload, seed).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, seed));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    Dataset {
        pipeline,
        log,
        gpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        cpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        out_csv: csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    }
}

fn batch(d: &Dataset) -> (StudyReport, QuarantineReport) {
    d.pipeline.run_lenient(
        d.log.as_slice(),
        LOG_YEAR,
        &d.gpu_csv,
        &d.cpu_csv,
        &d.out_csv,
    )
}

/// Streams the dataset at `chunk` granularity (CSVs too), in the batch
/// path's canonical feed order.
fn stream(d: &Dataset, chunk: usize) -> StreamingPipeline {
    let mut engine = StreamingPipeline::new(d.pipeline, LOG_YEAR);
    for piece in d.log.chunks(chunk) {
        engine.push_log(piece);
    }
    engine.finish_log();
    for piece in d.gpu_csv.as_bytes().chunks(chunk.max(1)) {
        engine.push_gpu_jobs_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    for piece in d.cpu_csv.as_bytes().chunks(chunk.max(1)) {
        engine.push_cpu_jobs_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    for piece in d.out_csv.as_bytes().chunks(chunk.max(1)) {
        engine.push_outages_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    engine
}

fn campaign_equivalence_at(chaos_rate: f64) {
    let d = dataset(SCALE, SEED, chaos_rate);
    let (oracle, oracle_q) = batch(&d);
    let oracle_render = render_all(&oracle);
    if chaos_rate > 0.0 {
        assert!(oracle_q.ledger.total() > 0, "chaos must actually corrupt");
    }
    for chunk in [1usize, 7, 1024, usize::MAX] {
        let what = format!("chaos={chaos_rate} chunk={chunk}");
        let engine = stream(&d, chunk.min(d.log.len().max(1)));
        let (r, q) = engine.finalize();
        assert_eq!(render_all(&r), oracle_render, "{what}: render");
        assert_quarantine_eq(&q, &oracle_q, &what);
    }
}

#[test]
fn clean_campaign_streams_identically_at_every_batch_size() {
    campaign_equivalence_at(0.0);
}

#[test]
fn corrupted_campaign_streams_identically_at_every_batch_size() {
    campaign_equivalence_at(0.05);
}

#[test]
fn checkpoint_cuts_through_the_corrupted_campaign_are_invisible() {
    let d = dataset(SCALE, SEED, 0.05);
    let (oracle, oracle_q) = batch(&d);
    let oracle_render = render_all(&oracle);
    // Cut at awkward byte offsets: mid-line, mid-burst, wherever they
    // land — the snapshot must not care. One leg also cuts mid-CSV.
    for frac in [3, 5, 7] {
        let cut = d.log.len() / frac;
        let what = format!("cut at 1/{frac}");
        let mut first = StreamingPipeline::new(d.pipeline, LOG_YEAR);
        first.push_log(&d.log[..cut]);
        let bytes = first.checkpoint().into_bytes();
        let loaded = Checkpoint::from_bytes(bytes).expect("snapshot reads back");
        let mut resumed = StreamingPipeline::restore(&loaded).expect("snapshot restores");
        assert_eq!(resumed.log_bytes_fed(), cut as u64, "{what}: resume offset");
        resumed.push_log(&d.log[cut..]);
        resumed.finish_log();
        resumed.push_gpu_jobs_csv(&d.gpu_csv);
        resumed.push_cpu_jobs_csv(&d.cpu_csv);
        resumed.push_outages_csv(&d.out_csv);
        let (r, q) = resumed.finalize();
        assert_eq!(render_all(&r), oracle_render, "{what}: render");
        assert_quarantine_eq(&q, &oracle_q, &what);
    }

    // Mid-CSV cut: the carry of a half-fed job row must survive the
    // snapshot.
    let mut first = StreamingPipeline::new(d.pipeline, LOG_YEAR);
    first.push_log(&d.log);
    first.finish_log();
    let half = d.gpu_csv.len() / 2;
    first.push_gpu_jobs_csv(&d.gpu_csv[..half]);
    let loaded = Checkpoint::from_bytes(first.checkpoint().into_bytes()).expect("snapshot");
    let mut resumed = StreamingPipeline::restore(&loaded).expect("restore mid-CSV");
    resumed.push_gpu_jobs_csv(&d.gpu_csv[half..]);
    resumed.push_cpu_jobs_csv(&d.cpu_csv);
    resumed.push_outages_csv(&d.out_csv);
    let (r, q) = resumed.finalize();
    assert_eq!(render_all(&r), oracle_render, "mid-CSV cut: render");
    assert_quarantine_eq(&q, &oracle_q, "mid-CSV cut");
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden")
}

/// The streaming engine reproduces the committed golden snapshots of the
/// fixed-seed campaign — the same fixtures `tests/golden_report.rs` pins
/// for the batch path, reached here through log *bytes* fed in 1 KiB
/// chunks instead of the in-memory archive.
#[test]
fn golden_snapshots_via_streaming() {
    let d = dataset(GOLDEN_SCALE, GOLDEN_SEED, 0.0);
    let engine = stream(&d, 1024);
    let (r, q) = engine.finalize();
    assert!(q.is_clean(), "golden campaign is clean: {:?}", q.caveats);
    for (name, rendered) in [
        ("table1.txt", report::table1(&r)),
        ("table2.txt", report::table2(&r)),
        ("table3.txt", report::table3(&r)),
        ("figure2.txt", report::figure2(&r)),
        ("table1.md", markdown::table1_md(&r)),
        ("table2.md", markdown::table2_md(&r)),
        ("table3.md", markdown::table3_md(&r)),
    ] {
        let path = golden_dir().join(name);
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        assert_eq!(rendered, golden, "streamed render drifted from {name}");
    }
}

// ---- targeted regressions -------------------------------------------

fn op_start() -> Timestamp {
    StudyPeriods::delta().op.start
}

fn xid_line(secs: u64, host: &str, code: u16) -> String {
    let mut line = hpclog::XidEvent::new(
        op_start() + Duration::from_secs(secs),
        host,
        PciAddr::for_gpu_index(0),
        XidCode::new(code),
        "detail",
    )
    .to_log_line()
    .to_string();
    line.push('\n');
    line
}

/// A coalescing window spanning the checkpoint cut: events 20 s apart
/// (exactly Δt, which still merges) on either side of the snapshot must
/// coalesce into one error after restore, exactly as in the uncut run.
#[test]
fn coalescing_window_survives_a_checkpoint_on_the_boundary() {
    let before = xid_line(0, "gpub001", 79);
    let on_boundary = xid_line(20, "gpub001", 79); // Δt = 20 s: merges
    let past_boundary = xid_line(41, "gpub001", 79); // 21 s later: new error
    let full: Vec<u8> = [&before, &on_boundary, &past_boundary]
        .iter()
        .flat_map(|s| s.bytes())
        .collect();

    let (uncut, _) = Pipeline::delta().run_lenient(full.as_slice(), 2024, "", "", "");
    assert_eq!(uncut.errors.len(), 2, "the boundary event must merge");
    assert_eq!(uncut.errors[0].merged_lines, 2);

    let mut first = StreamingPipeline::new(Pipeline::delta(), 2024);
    first.push_log(before.as_bytes());
    let loaded = Checkpoint::from_bytes(first.checkpoint().into_bytes()).expect("snapshot");
    let mut resumed = StreamingPipeline::restore(&loaded).expect("restore");
    resumed.push_log(on_boundary.as_bytes());
    resumed.push_log(past_boundary.as_bytes());
    let (r, _) = resumed.finalize();
    assert_eq!(
        r.errors, uncut.errors,
        "cut on the Δt boundary changed coalescing"
    );
    assert_eq!(render_all(&r), render_all(&uncut));
}

/// A checkpoint cut *inside* a duplicate burst: the half-ingested burst's
/// tie-buffer and anchor state must carry so the merged-line count is
/// unchanged.
#[test]
fn duplicate_burst_survives_a_mid_burst_checkpoint() {
    let burst: Vec<String> = (0..6).map(|i| xid_line(i / 2, "gpub001", 79)).collect();
    let full: Vec<u8> = burst.iter().flat_map(|s| s.bytes()).collect();
    let (uncut, _) = Pipeline::delta().run_lenient(full.as_slice(), 2024, "", "", "");
    assert_eq!(uncut.errors.len(), 1);
    assert_eq!(uncut.errors[0].merged_lines, 6);

    for cut_lines in 1..burst.len() {
        let mut first = StreamingPipeline::new(Pipeline::delta(), 2024);
        for line in &burst[..cut_lines] {
            first.push_log(line.as_bytes());
        }
        let loaded = Checkpoint::from_bytes(first.checkpoint().into_bytes()).expect("snapshot");
        let mut resumed = StreamingPipeline::restore(&loaded).expect("restore");
        for line in &burst[cut_lines..] {
            resumed.push_log(line.as_bytes());
        }
        let (r, _) = resumed.finalize();
        assert_eq!(r.errors, uncut.errors, "cut after {cut_lines} burst lines");
    }
}

/// Reservoir determinism across restore: with more rejects than exemplar
/// slots, survival is decided by the ledger's RNG — whose state must ride
/// the checkpoint so the post-restore decisions replay exactly.
#[test]
fn quarantine_reservoir_is_deterministic_across_restore() {
    let mut log = Vec::new();
    for i in 0..100u64 {
        log.extend_from_slice(xid_line(i, "gpub001", 79).as_bytes());
        log.extend_from_slice(format!("garbage line number {i}\n").as_bytes());
    }
    let (_, uncut_q) = Pipeline::delta().run_lenient(log.as_slice(), 2024, "", "", "");
    assert!(
        uncut_q.ledger.total() > uncut_q.ledger.exemplars().len() as u64,
        "rejects must overflow the reservoir for this test to bite"
    );

    for frac in [4, 2] {
        let cut = log.len() / frac;
        let mut first = StreamingPipeline::new(Pipeline::delta(), 2024);
        first.push_log(&log[..cut]);
        let loaded = Checkpoint::from_bytes(first.checkpoint().into_bytes()).expect("snapshot");
        let mut resumed = StreamingPipeline::restore(&loaded).expect("restore");
        resumed.push_log(&log[cut..]);
        let (_, q) = resumed.finalize();
        assert_eq!(
            q.ledger.exemplars(),
            uncut_q.ledger.exemplars(),
            "cut at 1/{frac}: reservoir decisions diverged"
        );
        assert_eq!(q.ledger.counts(), uncut_q.ledger.counts());
    }
}
