//! Kill/restart harness for live ingest: a real `delta-serve` process is
//! SIGKILLed mid-ingest — no drain, no atexit, no final checkpoint — and
//! restarted on the same `--ingest-dir`. The contract under test is the
//! ack durability invariant: **no chunk that got a `200` is ever lost**,
//! however rude the crash. The restarted server reports every
//! acknowledged chunk in `/ingest/status`, absorbs the client's re-sent
//! duplicates, accepts the rest of the corpus, and converges to the
//! byte-identical surfaces of an offline `run_lenient` oracle over the
//! whole corpus.
//!
//! The first server run gets an effectively infinite publish cadence, so
//! at kill time nothing has been checkpointed: recovery must come
//! entirely from the write-ahead log.

use delta_gpu_resilience::prelude::*;
use servd::testutil;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

const YEAR: i32 = 2023;

/// A deterministic synthetic corpus: a few hundred parseable Xid lines
/// across hosts, codes, and timestamps inside the Delta op period, plus
/// enough junk to keep the quarantine path honest.
fn corpus() -> Vec<u8> {
    let mut out = Vec::new();
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let codes = [119u64, 74, 31, 63, 79, 48, 94, 95];
    // Timestamps advance monotonically (as a real syslog does); the
    // irregular stride keeps most events outside each other's 20 s
    // coalescing window while still exercising the occasional merge.
    let mut clock = 0u64; // seconds since Jun 1 00:00:00
    for i in 0..240u64 {
        clock += 7 + next(3600);
        let day = 1 + clock / 86_400;
        let hour = (clock % 86_400) / 3_600;
        let minute = (clock % 3_600) / 60;
        let second = clock % 60;
        let host = 1 + next(24);
        let gpu = next(4);
        let code = codes[next(codes.len() as u64) as usize];
        let line = format!(
            "Jun {day:2} {hour:02}:{minute:02}:{second:02} gpub{host:03} kernel: NVRM: Xid (PCI:0000:{:02x}:00): {code}, synthetic event {i}\n",
            0x07 + gpu * 0x20,
        );
        out.extend_from_slice(line.as_bytes());
        if i % 17 == 0 {
            out.extend_from_slice(b"Jun  3 12:00:00 gpub001 kernel: unrelated chatter line\n");
        }
        if i % 41 == 0 {
            out.extend_from_slice(b"!!corrupt<<>>line not syslog at all\n");
        }
    }
    out
}

fn jobs_csv() -> String {
    "id,name,submit,start,end,gpus,gpu_slots,state\n\
     1001,train-a,2023-06-01T00:00:00,2023-06-01T01:00:00,2023-06-02T01:00:00,4,gpub001:0;gpub001:1;gpub001:2;gpub001:3,COMPLETED\n\
     1002,train-b,2023-06-03T00:00:00,2023-06-03T01:00:00,2023-06-03T09:00:00,2,gpub002:0;gpub003:1,FAILED\n\
     1003,infer-c,2023-06-10T00:00:00,2023-06-10T00:10:00,2023-06-10T02:10:00,1,gpub004:0,COMPLETED\n"
        .to_owned()
}

// ------------------------------------------------------- process harness

/// A spawned `delta-serve --ingest-dir` child plus the address it
/// printed. Killed (SIGKILL) or gracefully dropped by the test.
struct Server {
    child: Child,
    addr: String,
}

fn spawn_server(dir: &Path, publish_events: &str, publish_secs: &str) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_delta_serve"))
        .args([
            "--ingest-dir",
            dir.to_str().expect("utf-8 scratch path"),
            "--addr",
            "127.0.0.1:0",
            "--year",
            &YEAR.to_string(),
            "--publish-events",
            publish_events,
            "--publish-secs",
            publish_secs,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("delta-serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            match line {
                Ok(line) => {
                    if tx.send(line).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    let addr = loop {
        let line = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("delta-serve printed its address before the deadline");
        if let Some(rest) = line.split("serving on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after scheme")
                .to_owned();
        }
    };
    Server { child, addr }
}

impl Server {
    fn connect(&self) -> TcpStream {
        // The listener is up before the address is printed, but be
        // forgiving about scheduler hiccups around process start.
        for _ in 0..50 {
            if TcpStream::connect(&self.addr).is_ok() {
                return testutil::connect(&*self.addr);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL delivered");
        self.child.wait().expect("child reaped");
    }
}

// ------------------------------------------------------- tiny HTTP client
//
// The one-write keep-alive client lives in `servd::testutil` (shared by
// every server suite); this wrapper keeps the `(status, body)` shape the
// assertions below read naturally.

fn request_on(conn: &mut TcpStream, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let resp = testutil::request_on(conn, method, path, body);
    (resp.status, resp.text())
}

/// POSTs one chunk, retrying through `429` shedding; `200` (fresh or
/// duplicate) is success.
fn post_chunk(conn: &mut TcpStream, stream: &str, seq: u64, payload: &[u8]) {
    for _ in 0..10_000 {
        let (status, body) = request_on(
            conn,
            "POST",
            &format!("/ingest/{stream}?seq={seq}"),
            payload,
        );
        match status {
            200 => return,
            429 => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("POST /ingest/{stream}?seq={seq} -> {other}: {body}"),
        }
    }
    panic!("chunk {stream}/{seq} never accepted");
}

/// Extracts one stream's accepted count from the `/ingest/status` JSON.
fn accepted_of(status_json: &str, stream: &str) -> u64 {
    let key = format!("\"{stream}\":{{\"accepted\":");
    let at = status_json
        .find(&key)
        .unwrap_or_else(|| panic!("stream {stream} missing from {status_json}"));
    status_json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric accepted count")
}

// ---------------------------------------------------------------- test

#[test]
fn sigkill_mid_ingest_loses_no_acknowledged_chunk() {
    let log = corpus();
    let jobs = jobs_csv();
    let chunks: Vec<&[u8]> = log.chunks(256).collect();
    let dir = std::env::temp_dir().join(format!("ingest-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Run 1: infinite cadence — nothing will be checkpointed, so the
    // crash leaves recovery entirely to the WAL.
    let server = spawn_server(&dir, "1000000000", "1000000");
    let mut conn = server.connect();
    let kill_at = chunks.len() / 2;
    let mut acked = 0u64;
    for (i, piece) in chunks.iter().enumerate().take(kill_at) {
        post_chunk(&mut conn, "logs", i as u64, piece);
        acked = i as u64 + 1;
    }
    assert!(acked >= 40, "corpus too small to crash mid-ingest");
    // SIGKILL with acknowledged records still queued/unpublished.
    server.kill();

    // Run 2: same directory, normal cadence. Every acknowledged chunk
    // must have survived.
    let server = spawn_server(&dir, "5000", "2");
    let mut conn = server.connect();
    let (status, status_body) = request_on(&mut conn, "GET", "/ingest/status", &[]);
    assert_eq!(status, 200);
    let recovered = accepted_of(&status_body, "logs");
    assert_eq!(
        recovered, acked,
        "restart lost acknowledged chunks: acked {acked}, recovered {recovered} ({status_body})"
    );

    // The client lost its own bookkeeping in the crash too: it re-sends
    // from a few chunks back. The duplicates are absorbed.
    for i in (acked.saturating_sub(4))..acked {
        post_chunk(&mut conn, "logs", i, chunks[i as usize]);
    }
    // Rest of the corpus, plus the jobs stream, then a publish barrier.
    for (i, piece) in chunks.iter().enumerate().skip(acked as usize) {
        post_chunk(&mut conn, "logs", i as u64, piece);
    }
    for (i, piece) in jobs.as_bytes().chunks(128).enumerate() {
        post_chunk(&mut conn, "jobs", i as u64, piece);
    }
    let (status, flush_body) = request_on(&mut conn, "POST", "/ingest/flush", &[]);
    assert_eq!(status, 200, "flush failed: {flush_body}");

    // Converged: byte-identical to the offline oracle over the whole
    // corpus, crash or no crash.
    let (oracle, _) = Pipeline::delta().run_lenient(log.as_slice(), YEAR, &jobs, "", "");
    assert!(
        oracle.errors.len() > 50,
        "oracle too small to be meaningful: {} errors",
        oracle.errors.len()
    );
    for (path, expected) in [
        ("/tables/1", report::table1(&oracle)),
        ("/tables/2", report::table2(&oracle)),
        ("/tables/3", report::table3(&oracle)),
        ("/fig2", report::figure2(&oracle)),
    ] {
        let (status, body) = request_on(&mut conn, "GET", path, &[]);
        assert_eq!(status, 200, "{path}");
        assert_eq!(body, expected, "{path} diverged after crash recovery");
    }

    // A second SIGKILL after the flush: now everything lives in the
    // checkpoint, and a third server must serve the identical surfaces
    // with no new ingest at all.
    server.kill();
    let server = spawn_server(&dir, "5000", "2");
    let mut conn = server.connect();
    let (status, status_body) = request_on(&mut conn, "GET", "/ingest/status", &[]);
    assert_eq!(status, 200);
    assert_eq!(accepted_of(&status_body, "logs"), chunks.len() as u64);
    let (status, body) = request_on(&mut conn, "GET", "/tables/1", &[]);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        report::table1(&oracle),
        "/tables/1 diverged after the second crash"
    );
    server.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
