//! Backpressure contract for `/ingest/*`: a full admission queue sheds
//! load with `429` + `Retry-After` — it never blocks the caller and
//! never stalls concurrent readers — and once a worker drains the
//! queue, every accepted chunk is applied with zero loss, with the
//! `obs` counters agreeing with the client's own bookkeeping.
//!
//! Everything runs as ONE test function: the `obs` registry is a
//! process-wide singleton, so the counter assertions must not race
//! another test in this binary.

use servd::testutil::{connect, request_on};
use servd::{IngestConfig, ServerConfig, StoreHandle, StudyStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads one counter value out of the Prometheus exposition served at
/// `/metrics`; `series` is the full `name{labels}` prefix.
fn counter_value(metrics: &str, series: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(series))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

/// One syslog line the pipeline will parse into a real event, so the
/// drained study is observably non-empty.
const LOG_CHUNK: &[u8] = b"Mar 10 04:00:00 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 119, pid=1234, Timeout waiting for RPC from GSP\n";

#[test]
fn full_queue_sheds_with_429_without_stalling_reads_then_drains_lossless() {
    obs::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("ingest-bp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    const QUEUE: usize = 4;
    let mut config = IngestConfig::new(&dir);
    config.queue_capacity = QUEUE;
    let recovered =
        servd::ingest::recover(config, resilience::Pipeline::delta(), 2024).expect("recover");
    let (report, quarantine) = recovered.engine.materialize_full();
    let store = Arc::new(StoreHandle::new(StudyStore::build(
        report,
        Some(&quarantine),
    )));
    let server = servd::start_with_ingest(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        },
        Arc::clone(&store),
        Some(Arc::clone(&recovered.handle)),
    )
    .expect("server starts");
    let mut writer = connect(server.addr());
    let mut reader = connect(server.addr());

    // Baseline read latency while the system is idle.
    let idle_started = Instant::now();
    for _ in 0..20 {
        let resp = request_on(&mut reader, "GET", "/tables/1", &[]);
        assert_eq!(resp.status, 200);
    }
    let idle_per_get = idle_started.elapsed() / 20;

    // Phase 1 — no worker is running, so the queue fills and stays
    // full: exactly QUEUE chunks are admitted (each durable in the WAL
    // before its 200), then the server starts shedding.
    for seq in 0..QUEUE as u64 {
        let resp = request_on(
            &mut writer,
            "POST",
            &format!("/ingest/logs?seq={seq}"),
            LOG_CHUNK,
        );
        assert_eq!(
            resp.status, 200,
            "chunk {seq} within capacity must be accepted"
        );
    }
    let mut rejections = 0u64;
    for _ in 0..5 {
        let shed_started = Instant::now();
        let resp = request_on(
            &mut writer,
            "POST",
            &format!("/ingest/logs?seq={QUEUE}"),
            LOG_CHUNK,
        );
        assert_eq!(resp.status, 429, "an offer beyond capacity must be shed");
        // Load shedding, not blocking: the rejection is immediate.
        assert!(
            shed_started.elapsed() < Duration::from_secs(1),
            "429 took {:?} — the server blocked instead of shedding",
            shed_started.elapsed()
        );
        let retry: u64 = resp
            .header("Retry-After")
            .and_then(|v| v.parse().ok())
            .expect("429 must carry a parseable Retry-After");
        assert!(
            (1..=60).contains(&retry),
            "Retry-After {retry}s is not a sane backoff hint"
        );
        rejections += 1;

        // Readers are not starved while the write path sheds.
        let read_started = Instant::now();
        let read = request_on(&mut reader, "GET", "/tables/1", &[]);
        assert_eq!(read.status, 200, "GET failed while ingest was shedding");
        assert!(
            read_started.elapsed() < Duration::from_millis(500).max(idle_per_get * 20),
            "GET stalled to {:?} (idle {:?}) while ingest was shedding",
            read_started.elapsed(),
            idle_per_get
        );
    }

    // Phase 2 — a worker drains the queue; the shed chunk is re-sent
    // and everything accepted is applied: zero loss.
    let worker = servd::ingest::spawn_worker(
        recovered.engine,
        Arc::clone(&recovered.handle),
        Arc::clone(&store),
    );
    let accepted_late;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = request_on(
            &mut writer,
            "POST",
            &format!("/ingest/logs?seq={QUEUE}"),
            LOG_CHUNK,
        );
        if resp.status == 200 {
            accepted_late = 1u64;
            break;
        }
        assert_eq!(resp.status, 429);
        assert!(
            Instant::now() < deadline,
            "worker never drained a queue slot"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let flush = request_on(&mut writer, "POST", "/ingest/flush", &[]);
    assert_eq!(flush.status, 200, "flush failed: {}", flush.text());

    let total = QUEUE as u64 + accepted_late;
    assert_eq!(recovered.handle.accepted()[0], total, "accepted drifted");
    assert_eq!(
        recovered.handle.applied()[0],
        total,
        "drain lost an accepted chunk"
    );

    // The obs counters must tell the same story as the client's own
    // bookkeeping: every 200 counted once, every 429 counted once.
    let scrape = request_on(&mut reader, "GET", "/metrics", &[]);
    assert_eq!(scrape.status, 200);
    let metrics = scrape.text();
    assert_eq!(
        counter_value(&metrics, "servd_ingest_accepted_total{stream=\"logs\"}"),
        total,
        "accepted counter disagrees with the client"
    );
    assert_eq!(
        counter_value(&metrics, "servd_ingest_applied_total{stream=\"logs\"}"),
        total,
        "applied counter disagrees with the client"
    );
    assert!(
        counter_value(&metrics, "servd_ingest_rejected_total{reason=\"overload\"}") >= rejections,
        "overload rejections under-counted"
    );

    // The drained, published study actually contains the ingested
    // events — loss would be visible as an empty error list.
    let errors = request_on(&mut reader, "GET", "/errors", &[]);
    assert_eq!(errors.status, 200);
    assert!(
        errors.text().lines().count() > 1,
        "published study is empty after drain: {}",
        errors.text()
    );

    server.shutdown();
    worker.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
