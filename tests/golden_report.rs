//! Golden snapshot tests for the report layer: the canonical Table
//! I/II/III and Fig. 2 renders of a fixed-seed campaign are committed
//! under `tests/fixtures/golden/`, so any drift in the renderers, the
//! pipeline's numbers, or the generators' streams fails loudly with a
//! diff-able artefact.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_report
//! git diff tests/fixtures/golden/   # review what moved, then commit
//! ```

use delta_gpu_resilience::prelude::*;
use resilience::markdown;
use std::path::PathBuf;

/// The snapshot campaign: small enough to run in seconds, large enough
/// that every table has non-trivial rows.
const SCALE: f64 = 0.02;
const SEED: u64 = 0x601D;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden")
}

fn snapshot_report() -> StudyReport {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    // The parallel driver is the production path under test elsewhere;
    // snapshotting through it also pins its output to the committed bytes.
    pipeline.run_parallel(
        &campaign.archive,
        &bridge::jobs(&outcome.jobs),
        &bridge::jobs(&outcome.cpu_jobs),
        &bridge::outages(campaign.ledger.outages()),
        4,
    )
}

fn check(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             BLESS=1 cargo test --test golden_report",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "render drifted from {}; if intentional, regenerate with \
         BLESS=1 cargo test --test golden_report and review the diff",
        path.display()
    );
}

#[test]
fn golden_snapshots_match() {
    let report = snapshot_report();
    check("table1.txt", &report::table1(&report));
    check("table2.txt", &report::table2(&report));
    check("table3.txt", &report::table3(&report));
    check("figure2.txt", &report::figure2(&report));
    check("table1.md", &markdown::table1_md(&report));
    check("table2.md", &markdown::table2_md(&report));
    check("table3.md", &markdown::table3_md(&report));
}
