//! End-to-end smoke for `delta-serve --access-log`: a real spawned
//! server process must emit one Common Log Format line per request on
//! stderr, while stdout stays reserved for the operator banner.
//!
//! The serving CI job tails this format with standard tooling
//! (`awk '{print $9}'`, `grep ' 500 '` and friends), so the shape is
//! load-bearing: `host - - [day/mon/year:h:m:s +0000] "METHOD target
//! HTTP/1.1" status bytes`.

use servd::testutil::get_on;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

struct Server {
    child: Child,
    addr: String,
    stderr: mpsc::Receiver<String>,
}

/// Spawns `delta-serve` in batch mode over the clean fixture log with
/// the access log on, and captures both output streams.
fn spawn_server() -> Server {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/clean.log");
    let mut child = Command::new(env!("CARGO_BIN_EXE_delta_serve"))
        .args([
            fixture.to_str().expect("utf-8 fixture path"),
            "--addr",
            "127.0.0.1:0",
            "--year",
            "2022",
            "--access-log",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("delta-serve spawns");

    let stdout = child.stdout.take().expect("piped stdout");
    let (out_tx, out_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            if out_tx.send(line).is_err() {
                break;
            }
        }
    });
    let stderr = child.stderr.take().expect("piped stderr");
    let (err_tx, err_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            if err_tx.send(line).is_err() {
                break;
            }
        }
    });

    let addr = loop {
        let line = out_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("delta-serve printed its address before the deadline");
        if let Some(rest) = line.split("serving on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after scheme")
                .to_owned();
        }
    };
    Server {
        child,
        addr,
        stderr: err_rx,
    }
}

impl Server {
    fn connect(&self) -> TcpStream {
        for _ in 0..50 {
            if let Ok(conn) = TcpStream::connect(&self.addr) {
                conn.set_nodelay(true).expect("TCP_NODELAY");
                return conn;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }
}

/// One spawned server, three requests, three well-formed CLF lines on
/// stderr — including the query string and a non-200 status.
#[test]
fn access_log_emits_common_log_format_on_stderr() {
    let mut server = spawn_server();
    let mut conn = server.connect();

    let healthz = get_on(&mut conn, "/healthz");
    assert_eq!(healthz.status, 200);
    // The delta-serve binary traces by default: the access log and the
    // trace header come from the same wired-up observability state.
    assert!(
        healthz.header("X-Trace-Id").is_some(),
        "delta-serve default config should trace"
    );
    let errors = get_on(&mut conn, "/errors?host=gpub001");
    assert_eq!(errors.status, 200);
    let missing = get_on(&mut conn, "/nosuchpath");
    assert_eq!(missing.status, 404);
    drop(conn);

    // Collect stderr until all three lines are in (the writes are
    // line-buffered per request, but give the pipe a moment).
    let mut lines: Vec<String> = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        while let Ok(line) = server.stderr.try_recv() {
            lines.push(line);
        }
        if lines.iter().filter(|l| l.contains(" - - [")).count() >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.child.kill().expect("SIGKILL delivered");
    server.child.wait().expect("child reaped");
    while let Ok(line) = server.stderr.try_recv() {
        lines.push(line);
    }

    let clf: Vec<&String> = lines.iter().filter(|l| l.contains(" - - [")).collect();
    assert!(
        clf.len() >= 3,
        "want 3 access-log lines, got {}: {lines:?}",
        clf.len()
    );
    for (needle, status) in [
        ("\"GET /healthz HTTP/1.1\" 200 ", 200),
        ("\"GET /errors?host=gpub001 HTTP/1.1\" 200 ", 200),
        ("\"GET /nosuchpath HTTP/1.1\" 404 ", 404),
    ] {
        let line = clf
            .iter()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("no CLF line for {needle:?} ({status}) in {clf:?}"));
        assert!(
            line.starts_with("127.0.0.1 - - ["),
            "CLF host field: {line}"
        );
        assert!(line.contains(" +0000] \""), "CLF timestamp field: {line}");
        let bytes = line
            .rsplit(' ')
            .next()
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("CLF body-bytes field not numeric: {line}"));
        if status == 200 {
            assert!(bytes > 0, "200 responses have bodies: {line}");
        }
    }
}
