//! Byte-split fuzz battery for the incremental HTTP parser.
//!
//! `servd::http` deliberately carries two implementations of the same
//! request grammar: the blocking one-shot [`servd::http::read_request`]
//! (the oracle — simple, linear, battle-tested by every integration
//! suite) and the incremental [`servd::http::Parser`] the epoll event
//! loop feeds from non-blocking sockets. The event loop sees requests
//! arbitrarily fragmented by the kernel, so the property that matters
//! is: **for every request byte string and every way of splitting it,
//! the incremental parser reaches exactly the verdicts the one-shot
//! reader reaches on the whole string** — same accepted requests
//! (method, path, query, body, keep-alive), same rejection taxonomy
//! (and therefore the same status codes), same end-of-stream behaviour,
//! same pipelining.
//!
//! Three split regimes: every single-cut boundary (exhaustive), one
//! byte per push (maximal fragmentation), and random multi-cut
//! schedules drawn and shrunk by `propcheck`. The corpus is the
//! serve-equivalence request surface plus every rejection path the
//! grammar documents. Slowloris legs exercise the parser's body
//! wall-clock budget with a synthetic clock and the idle/mid-request
//! distinction the event loop's timer wheel keys on.

use servd::http::{read_request, ParseProgress, Parser, ReadOutcome, Request, RequestLimits};
use std::time::{Duration, Instant};

// ------------------------------------------------------------- corpus

/// Every request shape the serving surface accepts, plus every
/// rejection path `parse_head` documents. Each entry is a complete
/// connection transcript (possibly pipelined, possibly truncated).
fn corpus() -> Vec<Vec<u8>> {
    let mut c: Vec<Vec<u8>> = vec![
        // The full GET surface, as the integration suites send it.
        b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /errors HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n".to_vec(),
        b"GET /errors?host=gpub001&xid=79&from=100&to=2000 HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        b"GET /errors?host=gpub%30%31&xid=74&from=1+2 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /mtbe?kind=xid_79 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /tables/1 HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        b"GET /tables/2 HTTP/1.0\r\n\r\n".to_vec(),
        b"GET /tables/3 HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".to_vec(),
        b"GET /fig2 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /jobs/impact HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /availability HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /snapshot HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /metrics HTTP/1.1\r\n\r\n".to_vec(),
        b"HEAD /errors HTTP/1.1\r\n\r\n".to_vec(),
        // Bare-LF head terminator (the grammar accepts both).
        b"GET /healthz HTTP/1.1\n\n".to_vec(),
        b"GET /errors?xid=48 HTTP/1.1\nHost: y\n\n".to_vec(),
        // POST ingest with a real body, zero-length body, and flush.
        post("/ingest/logs?seq=0", SYSLOG_LINE),
        post("/ingest/jobs?seq=3", b"1,2,3\n4,5,6\n"),
        post("/ingest/flush", b""),
        // Rejection taxonomy: each maps to a distinct ReadOutcome.
        b"POST /ingest/logs HTTP/1.1\r\n\r\n".to_vec(), // LengthRequired
        b"POST /ingest/logs HTTP/1.1\r\nContent-Length: abc\r\n\r\n".to_vec(),
        b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"GET /errors HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec(),
        b"GET /errors HTTP/2.0\r\n\r\n".to_vec(),
        b"GET /healthz\r\n\r\n".to_vec(), // no version: bad request line
        b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /errors?host=%4 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec(), // non-UTF-8 head
        // Truncated transcripts: mid-head and mid-body EOF.
        b"GET /errors?host=gp".to_vec(),
        b"POST /ingest/logs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort".to_vec(),
        // Empty connection: open, never write, close.
        Vec::new(),
    ];
    // Pipelined transcripts: several requests back to back on one
    // buffer, including a POST in the middle.
    let mut pipelined = Vec::new();
    pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    pipelined.extend_from_slice(b"GET /errors?xid=79 HTTP/1.1\r\n\r\n");
    pipelined.extend_from_slice(b"GET /snapshot HTTP/1.1\r\nConnection: close\r\n\r\n");
    c.push(pipelined);
    let mut mixed = Vec::new();
    mixed.extend_from_slice(b"GET /tables/1 HTTP/1.1\r\n\r\n");
    mixed.extend_from_slice(&post("/ingest/logs?seq=1", SYSLOG_LINE));
    mixed.extend_from_slice(b"GET /snapshot HTTP/1.1\r\n\r\n");
    c.push(mixed);
    c
}

const SYSLOG_LINE: &[u8] = b"Mar 10 04:00:00 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, pid=1234, GPU has fallen off the bus.\n";

fn post(path: &str, body: &[u8]) -> Vec<u8> {
    let mut raw = Vec::new();
    raw.extend_from_slice(
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    raw.extend_from_slice(body);
    raw
}

// ---------------------------------------------------------- verdicts

/// A comparable rendering of one parse verdict. Requests flatten to
/// their full observable content; failures keep the variant *and* the
/// status code the server maps it to, so a taxonomy drift between the
/// two implementations shows up even where the message text agrees.
fn outcome_verdict(o: &ReadOutcome) -> String {
    match o {
        ReadOutcome::Request(r) => request_verdict(r),
        ReadOutcome::Closed => "Closed".to_owned(),
        ReadOutcome::TooLarge => "TooLarge(413)".to_owned(),
        ReadOutcome::BodyTooLarge => "BodyTooLarge(413)".to_owned(),
        ReadOutcome::LengthRequired => "LengthRequired(411)".to_owned(),
        ReadOutcome::TimedOut => "TimedOut(408)".to_owned(),
        ReadOutcome::Malformed(why) => format!("Malformed(400, {why})"),
    }
}

fn request_verdict(r: &Request) -> String {
    format!(
        "Request({} {} ? {:?} body={:?} keep_alive={})",
        r.method, r.path, r.query, r.body, r.keep_alive
    )
}

/// The oracle: run the one-shot blocking reader over the whole
/// transcript (a byte slice is a `Read` that EOFs at its end),
/// draining request after request until a non-request verdict, exactly
/// as the blocking accept loop would on a keep-alive connection.
fn oracle_verdicts(raw: &[u8], limits: &RequestLimits) -> Vec<String> {
    let mut cursor = raw;
    let mut out = Vec::new();
    loop {
        let outcome = read_request(&mut cursor, limits);
        let done = !matches!(outcome, ReadOutcome::Request(_));
        out.push(outcome_verdict(&outcome));
        if done {
            return out;
        }
    }
}

/// The subject: feed the same transcript through the incremental
/// parser in segments cut at `cuts` (sorted positions into `raw`),
/// polling after every push as the event loop does, then signal EOF
/// via `close()` and map it to the oracle's end-of-stream verdicts.
fn incremental_verdicts(raw: &[u8], cuts: &[usize], limits: &RequestLimits) -> Vec<String> {
    let mut parser = Parser::new(*limits);
    let mut out = Vec::new();
    let mut prev = 0usize;
    let mut segments: Vec<&[u8]> = Vec::new();
    for &cut in cuts {
        segments.push(&raw[prev..cut]);
        prev = cut;
    }
    segments.push(&raw[prev..]);
    for segment in segments {
        parser.push(segment);
        loop {
            match parser.poll(None) {
                ParseProgress::NeedMore => break,
                ParseProgress::Done(r) => out.push(request_verdict(&r)),
                ParseProgress::Fail(outcome) => {
                    out.push(outcome_verdict(&outcome));
                    return out;
                }
            }
        }
    }
    match parser.close() {
        None => out.push("Closed".to_owned()),
        Some(outcome) => out.push(outcome_verdict(&outcome)),
    }
    out
}

/// Asserts one transcript parses identically under one split schedule.
fn assert_equivalent(raw: &[u8], cuts: &[usize], limits: &RequestLimits) {
    let expected = oracle_verdicts(raw, limits);
    let actual = incremental_verdicts(raw, cuts, limits);
    assert_eq!(
        actual,
        expected,
        "split schedule {cuts:?} over {:?} diverged from the one-shot reader",
        String::from_utf8_lossy(raw)
    );
}

// ------------------------------------------------------ split regimes

/// Exhaustive single-cut sweep: every transcript, split at every byte
/// boundary (plus the no-cut whole-buffer case), must parse exactly as
/// the oracle parses the whole transcript.
#[test]
fn every_single_byte_boundary_is_equivalent() {
    let limits = RequestLimits::unbounded();
    for raw in corpus() {
        assert_equivalent(&raw, &[], &limits);
        for cut in 1..raw.len() {
            assert_equivalent(&raw, &[cut], &limits);
        }
    }
}

/// Maximal fragmentation: one byte per push — the worst case a
/// non-blocking socket can produce.
#[test]
fn one_byte_per_push_is_equivalent() {
    let limits = RequestLimits::unbounded();
    for raw in corpus() {
        let cuts: Vec<usize> = (1..raw.len()).collect();
        assert_equivalent(&raw, &cuts, &limits);
    }
}

/// Random multi-cut schedules, shrunk on failure: propcheck draws a
/// corpus entry and a random set of cut positions; a diverging
/// schedule is reported as its locally minimal cut set.
#[test]
fn random_split_schedules_are_equivalent() {
    let corpus = corpus();
    let limits = RequestLimits::unbounded();
    propcheck::run_shrinking(
        "parser_fuzz::random_split_schedules",
        300,
        |g| {
            // Gen ranges are half-open [lo, hi).
            let which = g.usize_in(0, corpus.len());
            let len = corpus[which].len();
            let n_cuts = g.usize_in(0, 13.min(len + 1));
            let mut cuts: Vec<usize> = if len > 1 {
                (0..n_cuts).map(|_| g.usize_in(1, len)).collect()
            } else {
                Vec::new()
            };
            cuts.sort_unstable();
            cuts.dedup();
            (which, cuts)
        },
        |(which, cuts)| {
            // Shrink only the schedule; the corpus entry is the case.
            propcheck::shrink_vec(cuts)
                .into_iter()
                .map(|c| (*which, c))
                .collect()
        },
        |(which, cuts)| {
            let raw = &corpus[*which];
            let expected = oracle_verdicts(raw, &RequestLimits::unbounded());
            let actual = incremental_verdicts(raw, cuts, &RequestLimits::unbounded());
            if actual == expected {
                Ok(())
            } else {
                Err(format!(
                    "corpus[{which}] {:?}: oracle {expected:?} vs incremental {actual:?}",
                    String::from_utf8_lossy(raw)
                ))
            }
        },
    );
    // The limits binding documents intent for the exhaustive legs; the
    // property builds its own copy per case.
    let _ = limits;
}

/// The byte caps must fire identically however the input is split: a
/// head one byte over the cap is `TooLarge` even though it terminates,
/// and an oversized declared body is `BodyTooLarge` before any body
/// byte is consumed.
#[test]
fn caps_fire_identically_across_splits() {
    let tight = RequestLimits {
        max_head_bytes: 32,
        max_body_bytes: 8,
        body_timeout: None,
    };
    let cases: Vec<Vec<u8>> = vec![
        b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(), // 25 bytes: fits
        b"GET /errors?host=gpub001 HTTP/1.1\r\n\r\n".to_vec(), // over the head cap
        post("/i", b"12345678"),                   // body exactly at cap
        post("/i", b"123456789"),                  // body one over cap
    ];
    for raw in cases {
        assert_equivalent(&raw, &[], &tight);
        for cut in 1..raw.len() {
            assert_equivalent(&raw, &[cut], &tight);
        }
        let every: Vec<usize> = (1..raw.len()).collect();
        assert_equivalent(&raw, &every, &tight);
    }
}

// -------------------------------------------------- slowloris timeouts

/// A slowloris dripping its *body* exhausts the parser's wall-clock
/// budget: the poll after the budget elapses fails `TimedOut` (→ 408)
/// even though bytes are still trickling in.
#[test]
fn body_slowloris_times_out_at_the_budget() {
    let limits = RequestLimits {
        body_timeout: Some(Duration::from_millis(50)),
        ..RequestLimits::unbounded()
    };
    let raw = post("/ingest/logs?seq=0", b"0123456789");
    let head_len = raw.len() - 10;
    let t0 = Instant::now();

    let mut parser = Parser::new(limits);
    parser.push(&raw[..head_len]);
    assert!(
        matches!(parser.poll(Some(t0)), ParseProgress::NeedMore),
        "head alone must not complete a POST"
    );
    // One body byte per poll, well inside the budget: still waiting.
    parser.push(&raw[head_len..head_len + 1]);
    let within = t0 + Duration::from_millis(10);
    assert!(matches!(parser.poll(Some(within)), ParseProgress::NeedMore));
    assert!(
        parser.body_started().is_some(),
        "body phase must expose its start for the timer wheel"
    );
    // The next drip lands past the budget: 408, and the parser stays
    // poisoned afterwards (the connection is closing anyway).
    parser.push(&raw[head_len + 1..head_len + 2]);
    let beyond = t0 + Duration::from_millis(60);
    assert!(
        matches!(
            parser.poll(Some(beyond)),
            ParseProgress::Fail(ReadOutcome::TimedOut)
        ),
        "body read past its wall-clock budget must map to 408"
    );
    assert!(matches!(parser.poll(Some(beyond)), ParseProgress::Fail(_)));

    // Control: the same drip schedule with the clock held inside the
    // budget completes normally.
    let mut patient = Parser::new(limits);
    patient.push(&raw[..head_len]);
    let _ = patient.poll(Some(t0));
    for (i, b) in raw[head_len..].iter().enumerate() {
        patient.push(std::slice::from_ref(b));
        let now = t0 + Duration::from_millis(i as u64); // ≤ 9ms < 50ms
        match patient.poll(Some(now)) {
            ParseProgress::NeedMore => assert!(i + 1 < 10),
            ParseProgress::Done(r) => {
                assert_eq!(i + 1, 10, "completed before the body was whole");
                assert_eq!(r.body, b"0123456789");
            }
            ParseProgress::Fail(o) => panic!("in-budget drip failed: {o:?}"),
        }
    }
}

/// A slowloris stalling mid-*head* never reaches the body budget — the
/// event loop's request deadline covers it — but the parser must
/// expose the idle/mid-request distinction that deadline keys on: an
/// idle keep-alive connection closes silently, a stalled head answers
/// 408. EOF mid-head maps to the same `Malformed` the oracle gives.
#[test]
fn head_slowloris_is_mid_request_not_idle() {
    let mut parser = Parser::new(RequestLimits::unbounded());
    assert!(parser.is_idle(), "fresh connection is idle");
    assert!(!parser.mid_request());

    parser.push(b"GET /err");
    assert!(matches!(parser.poll(None), ParseProgress::NeedMore));
    assert!(
        parser.mid_request() && !parser.is_idle(),
        "a partial head must count as mid-request so the request \
         deadline answers 408 instead of closing silently"
    );
    assert!(
        parser.body_started().is_none(),
        "no body budget before the head completes"
    );

    // The peer gives up: EOF mid-head is the oracle's mid-request
    // malformed close, not a quiet Closed.
    let at_eof = parser.close();
    assert!(
        matches!(at_eof, Some(ReadOutcome::Malformed(_))),
        "EOF mid-head must be Malformed, got {at_eof:?}"
    );

    // And the idle path: a parser that saw nothing closes quietly.
    let mut idle = Parser::new(RequestLimits::unbounded());
    assert!(idle.close().is_none(), "idle EOF closes without a verdict");
}
