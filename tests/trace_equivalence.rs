//! The observability-is-invisible proof: turning on request tracing,
//! the flight recorder, and the `/metrics/history` self-scrape must
//! not change a single served byte.
//!
//! Three claims, each checked differentially:
//!
//! 1. **Byte identity.** Across shard counts {1, 4} × chaos rates
//!    {0%, 5%}, every query endpoint returns the same status, body,
//!    `X-Snapshot`, and `X-Cache` header from a traced server as from
//!    an untraced one — cold and cache-hit alike. The only wire
//!    difference tracing may make is the presence of `X-Trace-Id`.
//! 2. **Trace fidelity.** An uncached `/errors` on a 4-shard store
//!    resolves through `/debug/traces?id=` to a record carrying one
//!    `shard_scan` span per shard (and a `merge`); `/rollup` resolves
//!    too, with zero scatter spans (rollups serve pre-merged cubes).
//!    `/readyz` flips 200 → 503 when the ingest worker dies.
//! 3. **History fidelity.** [`obs::Tsdb`] answers exactly what a
//!    brute-force replay of the scrape-time snapshots answers, through
//!    an independent reimplementation of the bucket downsampling.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use obs::registry::{MetricSnapshot, MetricValue};
use obs::{HistoryQuery, Tsdb};
use resilience::csvio;
use servd::testutil::{connect, get_on, TestResponse};
use servd::{IngestConfig, ServerConfig, StoreHandle, StudyStore};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

const SCALE: f64 = 0.02;
const SEED: u64 = 0x0B5E;
const LOG_YEAR: i32 = 2022;

/// The endpoint surface compared between the traced and untraced arms:
/// the full E15 mix plus the rollup cubes.
const SURFACE: &[&str] = &[
    "/tables/1",
    "/tables/2",
    "/tables/3",
    "/fig2",
    "/errors",
    "/errors?host=gpub001",
    "/errors?xid=74",
    "/mtbe",
    "/mtbe?xid=119",
    "/jobs/impact",
    "/availability",
    "/rollup?metric=errors&bucket=day",
    "/rollup?metric=mtbe&bucket=week&tz=America/Chicago",
    "/rollup?metric=availability&bucket=month",
    "/snapshot",
    "/healthz",
];

/// Same campaign construction as the other differential suites.
fn study(chaos_rate: f64) -> (StudyReport, resilience::QuarantineReport) {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    pipeline.run_lenient(
        log.as_slice(),
        LOG_YEAR,
        &csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        &csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        &csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    )
}

fn serve(
    report: &StudyReport,
    quarantine: &resilience::QuarantineReport,
    shards: usize,
    traced: bool,
) -> servd::RunningServer {
    let store = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report.clone(),
        Some(quarantine),
        shards,
    )));
    servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            trace_capacity: if traced { 256 } else { 0 },
            scrape_secs: if traced { 1 } else { 0 },
            ..ServerConfig::default()
        },
        store,
    )
    .expect("server starts on an ephemeral port")
}

/// The parts of a response that must not depend on tracing.
fn comparable(resp: &TestResponse) -> (u16, Option<String>, Option<String>, Vec<u8>) {
    (
        resp.status,
        resp.header("X-Snapshot").map(str::to_owned),
        resp.header("X-Cache").map(str::to_owned),
        resp.body.clone(),
    )
}

/// Polls `/debug/traces?id=` until the event loop seals and admits the
/// trace (that happens one cycle after the response drains).
fn resolve_trace(conn: &mut TcpStream, id: &str) -> String {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    loop {
        let resp = get_on(conn, &format!("/debug/traces?id={id}"));
        if resp.status == 200 {
            let body = resp.text();
            assert!(
                body.contains(&format!("\"id\": \"{id}\"")),
                "trace {id} resolved to a different record: {body}"
            );
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "trace {id} never appeared in /debug/traces (last status {})",
            resp.status
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

// ------------------------------------------------------------ claim 1

/// Shards {1,4} × chaos {0%,5%}: the traced and untraced arms serve
/// identical bytes, cold and from cache, and `X-Trace-Id` appears on
/// exactly one arm.
#[test]
fn tracing_never_changes_served_bytes() {
    for chaos_rate in [0.0, 0.05] {
        let (report, quarantine) = study(chaos_rate);
        assert!(
            report.errors.len() > 100,
            "chaos={chaos_rate}: dataset too small"
        );
        for shards in [1usize, 4] {
            let plain = serve(&report, &quarantine, shards, false);
            let traced = serve(&report, &quarantine, shards, true);
            let mut plain_conn = connect(plain.addr());
            let mut traced_conn = connect(traced.addr());
            // Two passes: the first render-misses, the second must hit
            // the response cache on both arms — byte identity has to
            // survive the cache round-trip because cached entries are
            // stored *before* the trace header is applied.
            for pass in ["cold", "cached"] {
                for path in SURFACE {
                    let p = get_on(&mut plain_conn, path);
                    let t = get_on(&mut traced_conn, path);
                    assert_eq!(
                        comparable(&p),
                        comparable(&t),
                        "chaos={chaos_rate} shards={shards} {pass} {path}: \
                         traced arm diverged from plain"
                    );
                    assert!(
                        p.header("X-Trace-Id").is_none(),
                        "untraced arm leaked X-Trace-Id at {path}"
                    );
                    assert!(
                        t.header("X-Trace-Id").is_some(),
                        "traced arm missing X-Trace-Id at {path}"
                    );
                }
            }
            plain.shutdown();
            traced.shutdown();
        }
    }
}

// ------------------------------------------------------------ claim 2

/// A scatter query's trace names every shard it fanned out to; a
/// rollup's trace shows none (pre-merged cubes).
#[test]
fn trace_spans_mirror_the_scatter_plan() {
    let (report, quarantine) = study(0.0);
    let server = serve(&report, &quarantine, 4, true);
    let mut conn = connect(server.addr());

    let errors = get_on(&mut conn, "/errors");
    assert_eq!(errors.status, 200);
    let id = errors
        .header("X-Trace-Id")
        .expect("traced /errors carries X-Trace-Id")
        .to_owned();
    let doc = resolve_trace(&mut conn, &id);
    let scans = doc.matches("\"name\": \"shard_scan\"").count();
    assert_eq!(scans, 4, "one shard_scan per shard, got {scans}: {doc}");
    assert_eq!(doc.matches("\"name\": \"merge\"").count(), 1, "{doc}");
    for stage in ["parse", "route", "cache_lookup", "render", "write"] {
        assert!(
            doc.contains(&format!("\"name\": \"{stage}\"")),
            "missing {stage} span: {doc}"
        );
    }
    // Shard details name real shards: `shard=0..3` in some order.
    for shard in 0..4 {
        assert!(
            doc.contains(&format!("\"detail\": \"shard={shard}\"")),
            "missing shard={shard} detail: {doc}"
        );
    }

    let rollup = get_on(&mut conn, "/rollup?metric=errors&bucket=day");
    assert_eq!(rollup.status, 200);
    let id = rollup
        .header("X-Trace-Id")
        .expect("traced /rollup carries X-Trace-Id")
        .to_owned();
    let doc = resolve_trace(&mut conn, &id);
    assert_eq!(
        doc.matches("\"name\": \"shard_scan\"").count(),
        0,
        "rollups serve pre-merged cubes; no scatter expected: {doc}"
    );
    server.shutdown();
}

/// `/readyz` is 200 with a live worker (and without ingest at all) and
/// flips to 503 the moment the worker is gone.
#[test]
fn readyz_flips_when_the_ingest_worker_dies() {
    let dir = std::env::temp_dir().join(format!("trace_eq_readyz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("ingest dir");
    let recovered = servd::ingest::recover(IngestConfig::new(&dir), Pipeline::delta(), LOG_YEAR)
        .expect("recover empty dir");
    let (report, quarantine) = recovered.engine.materialize_full();
    let store = Arc::new(StoreHandle::new(StudyStore::build(
        report,
        Some(&quarantine),
    )));
    let worker = servd::ingest::spawn_worker(
        recovered.engine,
        Arc::clone(&recovered.handle),
        Arc::clone(&store),
    );
    let server = servd::start_with_ingest(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        },
        store,
        Some(Arc::clone(&recovered.handle)),
    )
    .expect("server starts");
    let mut conn = connect(server.addr());

    let up = get_on(&mut conn, "/readyz");
    assert_eq!(up.status, 200, "live worker: {}", up.text());
    assert!(up.text().contains("\"live_ingest\":true"), "{}", up.text());
    assert!(up.text().contains("\"ready\":true"), "{}", up.text());

    worker.stop();
    let down = get_on(&mut conn, "/readyz");
    assert_eq!(down.status, 503, "dead worker: {}", down.text());
    assert!(down.text().contains("\"ready\":false"), "{}", down.text());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------ claim 3

/// Owned label pairs, as the replay oracle keys its series.
type ReplayLabels = Vec<(String, String)>;

/// Brute-force oracle for [`Tsdb::query`]: filters the recorded
/// scrape-time snapshots and re-downsamples them with an independently
/// written last-sample-per-bucket rule.
fn replay(
    history: &[(u64, Vec<MetricSnapshot>)],
    query: &HistoryQuery,
) -> Vec<(ReplayLabels, Vec<(u64, u64)>)> {
    use std::collections::BTreeMap;
    let mut raw: BTreeMap<ReplayLabels, Vec<(u64, u64)>> = BTreeMap::new();
    for (t, snapshot) in history {
        if *t < query.from || *t >= query.to {
            continue;
        }
        for m in snapshot {
            let (name, value) = match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => (m.name.to_owned(), *v),
                MetricValue::Histogram(_) => continue, // exercised in obs's own tests
            };
            if name != query.name {
                continue;
            }
            let labels: ReplayLabels = m
                .labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect();
            raw.entry(labels).or_default().push((*t, value));
        }
    }
    raw.into_iter()
        .filter_map(|(labels, points)| {
            let points = match query.step {
                0 => points,
                step => {
                    // Independent restatement of the downsampling
                    // contract: bucket b covers [from + b*step,
                    // from + (b+1)*step), reports its last sample,
                    // stamped at the bucket start.
                    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
                    for (t, v) in points {
                        let bucket = query.from + (t - query.from) / step * step;
                        buckets.insert(bucket, v);
                    }
                    buckets.into_iter().collect()
                }
            };
            (!points.is_empty()).then_some((labels, points))
        })
        .collect()
}

/// Feeds a deterministic snapshot sequence to a [`Tsdb`] while
/// recording every scrape, then checks raw and stepped queries — plus
/// partial time windows — against the brute-force replay.
#[test]
fn history_agrees_with_brute_force_replay_of_scrapes() {
    let tsdb = Tsdb::new(64);
    let mut history: Vec<(u64, Vec<MetricSnapshot>)> = Vec::new();
    for i in 0..40u64 {
        let t = 1_000 + i * 3; // 3 s cadence
        let snapshot = vec![
            MetricSnapshot {
                name: "requests_total",
                labels: vec![("endpoint", "/errors".to_owned())],
                value: MetricValue::Counter(i * i),
            },
            MetricSnapshot {
                name: "requests_total",
                labels: vec![("endpoint", "/rollup".to_owned())],
                value: MetricValue::Counter(i * 7 % 113),
            },
            MetricSnapshot {
                name: "queue_depth",
                labels: vec![],
                value: MetricValue::Gauge((i * 13) % 29),
            },
        ];
        assert!(tsdb.scrape(t, &snapshot), "scrape at t={t} must advance");
        history.push((t, snapshot));
    }

    let queries = [
        HistoryQuery {
            name: "requests_total".to_owned(),
            from: 0,
            to: u64::MAX,
            step: 0,
        },
        HistoryQuery {
            name: "requests_total".to_owned(),
            from: 1_000,
            to: 1_060,
            step: 10,
        },
        HistoryQuery {
            name: "queue_depth".to_owned(),
            from: 1_030,
            to: 1_090,
            step: 7,
        },
        HistoryQuery {
            name: "queue_depth".to_owned(),
            from: 1_117,
            to: 1_118,
            step: 0,
        },
        HistoryQuery {
            name: "nosuchmetric".to_owned(),
            from: 0,
            to: u64::MAX,
            step: 5,
        },
    ];
    for query in queries {
        let got = tsdb.query(&query);
        let want = replay(&history, &query);
        assert_eq!(
            got.series.len(),
            want.len(),
            "{query:?}: series count diverged from replay"
        );
        for (series, (labels, points)) in got.series.iter().zip(&want) {
            assert_eq!(&series.labels, labels, "{query:?}: label order diverged");
            assert_eq!(
                &series.points, points,
                "{query:?} {labels:?}: points diverged from brute-force replay"
            );
        }
    }

    // Non-advancing scrapes store nothing — replay must keep agreeing
    // after a rejected timestamp.
    let stale = vec![MetricSnapshot {
        name: "queue_depth",
        labels: vec![],
        value: MetricValue::Gauge(9_999),
    }];
    assert!(!tsdb.scrape(1_000, &stale), "stale scrape must be rejected");
    let all = HistoryQuery {
        name: "queue_depth".to_owned(),
        from: 0,
        to: u64::MAX,
        step: 0,
    };
    assert_eq!(
        tsdb.query(&all).series[0].points,
        replay(&history, &all)[0].1,
        "rejected scrape leaked into the history"
    );
}
