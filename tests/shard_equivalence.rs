//! The sharding-is-invisible proof: a [`servd::StudyStore`] built with
//! any shard count must be observationally identical to the unsharded
//! store — byte-for-byte, on every endpoint, for clean and corrupted
//! inputs, through both the in-process renderers and a live HTTP
//! server backed by the scatter-gather scan pool.
//!
//! Sharding partitions the host dictionary into contiguous ranges and
//! splits the canonical `(time, host)` row sequence into per-shard
//! subsequences; renders recombine them with a k-way merge on global
//! row ids. If the partition drops a host, duplicates a boundary row,
//! or the merge perturbs row order, one of these legs diverges. The
//! filter oracle here is an independent linear scan (no reference to
//! the store's indexes), pointed deliberately at host-range
//! boundaries: *every* host in the dictionary is queried, so each
//! shard's first and last host is exercised no matter where the
//! balanced partition put the cuts.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use hpclog::{PciAddr, XidEvent};
use resilience::csvio;
use servd::testutil::{connect, get_on};
use servd::{ErrorFilter, ServerConfig, StoreHandle, StudyStore};
use std::fmt::Write as _;
use std::sync::Arc;
use xid::{ErrorKind, XidCode};

const SCALE: f64 = 0.02;
const SEED: u64 = 0x5AAD;
const LOG_YEAR: i32 = 2022;

/// The shard counts under test; 1 is the fleet-of-one leg.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

// ---------------------------------------------------------------- dataset

/// Same campaign construction as `tests/serve_equivalence.rs`: one
/// simulated study, optionally chaos-corrupted, run through the
/// lenient pipeline into a report the stores are built from.
fn study(chaos_rate: f64) -> (StudyReport, resilience::QuarantineReport) {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    pipeline.run_lenient(
        log.as_slice(),
        LOG_YEAR,
        &csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        &csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        &csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    )
}

/// Every distinct host in the study, sorted — by construction the
/// store's host dictionary, so walking it walks every shard boundary.
fn all_hosts(report: &StudyReport) -> Vec<String> {
    let mut hosts: Vec<String> = report.errors.iter().map(|e| e.host.clone()).collect();
    hosts.sort();
    hosts.dedup();
    hosts
}

/// Independent `/errors` oracle: a brute-force linear scan with
/// `[from, to)` bounds (from inclusive, to exclusive), sharing no code
/// with the store's posting lists, time slices, or merge.
fn brute_force_errors(report: &StudyReport, filter: &ErrorFilter) -> String {
    let mut out = String::from("time,host,pci,xid,kind,merged_lines\n");
    for e in &report.errors {
        if filter.host.as_deref().is_some_and(|h| e.host != h)
            || filter.kind.is_some_and(|k| e.kind != k)
            || filter.from.is_some_and(|t| e.time < t)
            || filter.to.is_some_and(|t| e.time >= t)
        {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            e.time,
            e.host,
            e.pci,
            e.kind.primary_code(),
            e.kind.abbreviation(),
            e.merged_lines
        );
    }
    out
}

/// Every cacheable surface of one store, rendered in-process.
fn all_surfaces(store: &StudyStore) -> Vec<(String, String)> {
    vec![
        ("/tables/1".to_owned(), store.table1().to_owned()),
        ("/tables/2".to_owned(), store.table2().to_owned()),
        ("/tables/3".to_owned(), store.table3().to_owned()),
        ("/fig2".to_owned(), store.fig2().to_owned()),
        (
            "/errors".to_owned(),
            store.errors_csv(&ErrorFilter::default()),
        ),
        ("/mtbe".to_owned(), store.mtbe_csv(None)),
        (
            "/mtbe?xid=119".to_owned(),
            store.mtbe_csv(Some(ErrorKind::GspError)),
        ),
        ("/jobs/impact".to_owned(), store.jobs_impact_csv()),
        ("/availability".to_owned(), store.availability_json()),
    ]
}

// ---------------------------------------------------------------- tests

/// Store-level sweep: shard counts {1,2,4,8} × chaos {0%,5%}, every
/// surface byte-compared against the unsharded baseline, plus the
/// boundary-host filter cross-checks against the brute-force oracle.
#[test]
fn every_shard_count_and_chaos_rate_is_byte_identical_to_unsharded() {
    for chaos_rate in [0.0, 0.05] {
        let (oracle, quarantine) = study(chaos_rate);
        assert!(
            oracle.errors.len() > 100,
            "chaos={chaos_rate}: dataset too small to exercise the merge"
        );
        let hosts = all_hosts(&oracle);
        assert!(hosts.len() >= 4, "need hosts to shard across");
        let baseline = StudyStore::build(oracle.clone(), Some(&quarantine));
        let expected = all_surfaces(&baseline);

        // Representative filters, anchored in the data.
        let probe = &oracle.errors[oracle.errors.len() / 2];
        let from = oracle.errors[oracle.errors.len() / 4].time;
        let to = oracle.errors[3 * oracle.errors.len() / 4].time;
        let filters = vec![
            ErrorFilter::default(),
            ErrorFilter {
                kind: Some(probe.kind),
                ..ErrorFilter::default()
            },
            ErrorFilter {
                from: Some(from),
                to: Some(to),
                ..ErrorFilter::default()
            },
            ErrorFilter {
                host: Some(probe.host.clone()),
                kind: Some(probe.kind),
                from: Some(from),
                to: Some(to),
            },
            ErrorFilter {
                host: Some("nosuchhost".to_owned()),
                ..ErrorFilter::default()
            },
        ];

        for n in SHARD_COUNTS {
            let sharded = StudyStore::build_sharded(oracle.clone(), Some(&quarantine), n);
            assert!(
                (1..=n).contains(&sharded.shard_count()),
                "chaos={chaos_rate} n={n}: got {} shards",
                sharded.shard_count()
            );
            if n == 1 {
                // Fleet-of-one invariant: one shard IS today's store.
                assert_eq!(sharded.shard_count(), 1);
            }
            for (path, want) in &expected {
                let got = match path.as_str() {
                    "/tables/1" => sharded.table1().to_owned(),
                    "/tables/2" => sharded.table2().to_owned(),
                    "/tables/3" => sharded.table3().to_owned(),
                    "/fig2" => sharded.fig2().to_owned(),
                    "/errors" => sharded.errors_csv(&ErrorFilter::default()),
                    "/mtbe" => sharded.mtbe_csv(None),
                    "/mtbe?xid=119" => sharded.mtbe_csv(Some(ErrorKind::GspError)),
                    "/jobs/impact" => sharded.jobs_impact_csv(),
                    "/availability" => sharded.availability_json(),
                    other => unreachable!("unmapped surface {other}"),
                };
                assert_eq!(
                    &got, want,
                    "chaos={chaos_rate} n={n} {path} diverged from unsharded"
                );
            }
            for filter in &filters {
                assert_eq!(
                    sharded.errors_csv(filter),
                    brute_force_errors(&oracle, filter),
                    "chaos={chaos_rate} n={n}: filter {filter:?} diverged from brute force"
                );
            }
            // The boundary sweep: every host in the dictionary — hence
            // the first and last host of every shard range — against
            // the independent scan, alone and time-bounded.
            for host in &hosts {
                let by_host = ErrorFilter {
                    host: Some(host.clone()),
                    ..ErrorFilter::default()
                };
                assert_eq!(
                    sharded.errors_csv(&by_host),
                    brute_force_errors(&oracle, &by_host),
                    "chaos={chaos_rate} n={n}: host {host} diverged"
                );
                let bounded = ErrorFilter {
                    host: Some(host.clone()),
                    from: Some(from),
                    to: Some(to),
                    ..ErrorFilter::default()
                };
                assert_eq!(
                    sharded.errors_csv(&bounded),
                    brute_force_errors(&oracle, &bounded),
                    "chaos={chaos_rate} n={n}: bounded host {host} diverged"
                );
            }
        }
    }
}

/// HTTP leg: the same bytes must come off the wire whatever the shard
/// count — the scattered `/errors` and `/mtbe` paths go through the
/// handle's real scan pool here, not the serial in-process renderers.
#[test]
fn served_bytes_are_identical_across_shard_counts() {
    let (oracle, quarantine) = study(0.0);
    let probe = &oracle.errors[oracle.errors.len() / 2];
    let host = probe.host.clone();
    let xid: XidCode = probe.kind.primary_code();
    let from = oracle.errors[oracle.errors.len() / 4].time;
    let to = oracle.errors[3 * oracle.errors.len() / 4].time;
    let paths: Vec<String> = vec![
        "/errors".to_owned(),
        format!("/errors?host={host}"),
        format!("/errors?xid={xid}"),
        format!(
            "/errors?host={host}&xid={xid}&from={}&to={}",
            from.unix(),
            to.unix()
        ),
        "/errors?host=nosuchhost".to_owned(),
        "/mtbe".to_owned(),
        "/mtbe?xid=119".to_owned(),
        "/tables/1".to_owned(),
        "/tables/2".to_owned(),
        "/tables/3".to_owned(),
        "/fig2".to_owned(),
        "/jobs/impact".to_owned(),
        "/availability".to_owned(),
    ];

    let mut baseline: Option<Vec<(u16, Vec<u8>)>> = None;
    for n in SHARD_COUNTS {
        let store = StudyStore::build_sharded(oracle.clone(), Some(&quarantine), n);
        let handle = Arc::new(StoreHandle::new(store));
        let server = servd::start(
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
            Arc::clone(&handle),
        )
        .expect("server starts");
        let mut conn = connect(server.addr());
        let served: Vec<(u16, Vec<u8>)> = paths
            .iter()
            .map(|p| {
                let resp = get_on(&mut conn, p);
                (resp.status, resp.body)
            })
            .collect();
        match &baseline {
            None => baseline = Some(served),
            Some(expect) => {
                for (i, (path, (got, want))) in paths
                    .iter()
                    .zip(served.iter().zip(expect.iter()))
                    .enumerate()
                {
                    assert_eq!(got.0, want.0, "status drift at {path} with {n} shards");
                    assert_eq!(
                        String::from_utf8_lossy(&got.1),
                        String::from_utf8_lossy(&want.1),
                        "served bytes drift at {path} (leg {i}) with {n} shards"
                    );
                }
            }
        }
        server.shutdown();
    }
}

/// Fleet-of-one on the synthetic fixtures too: `build` and
/// `build_sharded(.., 1)` must be the same store observationally,
/// including the snapshot info text the `/snapshot` endpoint serves.
#[test]
fn one_shard_build_is_todays_store() {
    let base = StudyPeriods::delta().op.start;
    let mk = |secs: u64, host: &str, gpu: u8, code: u16| {
        XidEvent::new(
            base + Duration::from_secs(secs),
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "",
        )
    };
    let report = Pipeline::delta().run_events(
        vec![
            mk(100, "gpub001", 0, 119),
            mk(5_000, "gpub002", 1, 74),
            mk(60_000, "gpub003", 2, 79),
            mk(90_000, "gpub001", 3, 31),
        ],
        None,
        &[],
        &[],
        &[],
    );
    let plain = StudyStore::build(report.clone(), None);
    let one = StudyStore::build_sharded(report, None, 1);
    assert_eq!(one.shard_count(), 1);
    assert_eq!(plain.error_rows(), one.error_rows());
    assert_eq!(plain.snapshot_info(7), one.snapshot_info(7));
    for ((path_a, a), (path_b, b)) in all_surfaces(&plain).into_iter().zip(all_surfaces(&one)) {
        assert_eq!(path_a, path_b);
        assert_eq!(a, b, "{path_a} differs between build and build_sharded(1)");
    }
}
