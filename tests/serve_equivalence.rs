//! The serving-equals-offline proof for `servd`: every HTTP endpoint
//! must return byte-identical output to the offline renderers run over
//! the same study, for clean and 5%-corrupted inputs; every filtered
//! `/errors` query must equal an independently implemented brute-force
//! scan of the oracle's error list; and no reader may ever observe a
//! torn or mixed-snapshot response while stores are swapped under load.
//!
//! The oracle side never touches `servd`'s column/index machinery: the
//! expected bytes come from `resilience::report` and from plain linear
//! scans over `StudyReport::errors` written in this file. If the store's
//! posting lists, binary-searched time slices, response cache or snapshot
//! pinning are wrong in any observable way, one of these legs diverges.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use hpclog::{PciAddr, XidEvent};
use resilience::csvio;
use servd::{ServerConfig, StoreHandle, StudyStore};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xid::XidCode;

const SCALE: f64 = 0.02;
const SEED: u64 = 0x0B5;
/// The scaled calendar stays inside 2022 (see E12/E13).
const LOG_YEAR: i32 = 2022;

// ---------------------------------------------------------------- dataset

struct Dataset {
    pipeline: Pipeline,
    log: Vec<u8>,
    gpu_csv: String,
    cpu_csv: String,
    out_csv: String,
}

/// Same construction as `tests/obs_equivalence.rs`: one simulated
/// campaign, optionally corrupted, plus its CSV exports.
fn dataset(chaos_rate: f64) -> Dataset {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    Dataset {
        pipeline,
        log,
        gpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        cpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        out_csv: csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    }
}

// ------------------------------------------------------- tiny HTTP client
//
// The one-write keep-alive client lives in `servd::testutil` (shared by
// every server suite); this file only aliases the GET helper.

use servd::testutil::{connect, get_on};

fn serve(handle: Arc<StoreHandle>) -> servd::RunningServer {
    servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        },
        handle,
    )
    .expect("server starts on an ephemeral port")
}

// ------------------------------------------------------ oracle rendering

/// Brute-force `/errors` oracle: a linear scan with `[from, to)` time
/// bounds (from inclusive, to exclusive), written without reference to
/// the store's indexes.
fn brute_force_errors(
    report: &StudyReport,
    host: Option<&str>,
    xid: Option<XidCode>,
    from: Option<Timestamp>,
    to: Option<Timestamp>,
) -> String {
    let kind = xid.map(ErrorKind::from_code);
    let mut out = String::from("time,host,pci,xid,kind,merged_lines\n");
    for e in &report.errors {
        if host.is_some_and(|h| e.host != h)
            || kind.is_some_and(|k| e.kind != k)
            || from.is_some_and(|t| e.time < t)
            || to.is_some_and(|t| e.time >= t)
        {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            e.time,
            e.host,
            e.pci,
            e.kind.primary_code(),
            e.kind.abbreviation(),
            e.merged_lines
        );
    }
    out
}

/// Brute-force `/mtbe` oracle straight off the report's statistics.
fn brute_force_mtbe(report: &StudyReport, only: Option<ErrorKind>) -> String {
    let cell = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.3}"));
    let mut out = String::from("xid,kind,phase,count,mtbe_system_h,mtbe_node_h\n");
    let kinds: Vec<ErrorKind> = match only {
        Some(k) => vec![k],
        None => ErrorKind::STUDIED.to_vec(),
    };
    for k in kinds {
        for (phase, label) in [(Phase::PreOp, "pre_op"), (Phase::Op, "op")] {
            let _ = writeln!(
                out,
                "{},{},{label},{},{},{}",
                k.primary_code(),
                k.abbreviation(),
                report.stats.count(k, phase),
                cell(report.stats.mtbe_system(k, phase)),
                cell(report.stats.mtbe_per_node(k, phase)),
            );
        }
    }
    out
}

/// Brute-force `/availability` oracle.
fn brute_force_availability(report: &StudyReport) -> String {
    let num = |v: Option<f64>| match v {
        Some(v) if v.is_finite() => format!("{:.6}", v + 0.0),
        _ => "null".to_owned(),
    };
    let a = &report.availability;
    format!(
        "{{\n  \"outages\": {},\n  \"mttr_hours\": {},\n  \"total_downtime_node_hours\": {},\n  \"mttf_hours\": {},\n  \"availability\": {},\n  \"availability_empirical\": {}\n}}\n",
        a.outage_count(),
        num(a.mttr_hours()),
        num(Some(a.total_downtime_node_hours())),
        num(report.mttf_hours),
        num(report.availability_estimate()),
        num(Some(a.availability_empirical())),
    )
}

// ---------------------------------------------------------------- tests

#[test]
fn every_endpoint_is_byte_identical_to_the_offline_oracle() {
    for chaos_rate in [0.0, 0.05] {
        let d = dataset(chaos_rate);
        let (oracle, quarantine) = d.pipeline.run_lenient(
            d.log.as_slice(),
            LOG_YEAR,
            &d.gpu_csv,
            &d.cpu_csv,
            &d.out_csv,
        );
        assert!(
            oracle.errors.len() > 100,
            "chaos={chaos_rate}: dataset too small to be a meaningful oracle"
        );

        let store = StudyStore::build(oracle.clone(), Some(&quarantine));
        let handle = Arc::new(StoreHandle::new(store));
        let server = serve(Arc::clone(&handle));
        let addr = server.addr();
        let mut conn = connect(addr);

        // The paper surfaces, byte-for-byte against the offline renderers.
        for (path, expected) in [
            ("/tables/1", report::table1(&oracle)),
            ("/tables/2", report::table2(&oracle)),
            ("/tables/3", report::table3(&oracle)),
            ("/fig2", report::figure2(&oracle)),
        ] {
            let resp = get_on(&mut conn, path);
            assert_eq!(resp.status, 200, "chaos={chaos_rate} {path}");
            assert_eq!(resp.text(), expected, "chaos={chaos_rate} {path}");
            assert_eq!(resp.header("X-Snapshot"), Some("1"));
        }

        // Table II CSV + the failed-jobs total.
        let resp = get_on(&mut conn, "/jobs/impact");
        let mut expected = resilience::report::table2_csv(&oracle);
        let _ = writeln!(
            expected,
            "total_gpu_failed_jobs,{}",
            oracle.impact.gpu_failed_jobs()
        );
        assert_eq!(resp.text(), expected, "chaos={chaos_rate} /jobs/impact");
        assert_eq!(resp.header("Content-Type"), Some("text/csv; charset=utf-8"));

        // Availability JSON.
        let resp = get_on(&mut conn, "/availability");
        assert_eq!(
            resp.text(),
            brute_force_availability(&oracle),
            "chaos={chaos_rate} /availability"
        );
        assert_eq!(resp.header("Content-Type"), Some("application/json"));

        // MTBE rows, full and restricted.
        assert_eq!(
            get_on(&mut conn, "/mtbe").text(),
            brute_force_mtbe(&oracle, None),
            "chaos={chaos_rate} /mtbe"
        );
        assert_eq!(
            get_on(&mut conn, "/mtbe?xid=119").text(),
            brute_force_mtbe(&oracle, Some(ErrorKind::GspError)),
            "chaos={chaos_rate} /mtbe?xid=119"
        );

        // Filtered /errors vs the brute-force scan. Filter values are
        // taken from the data so every leg exercises non-empty slices,
        // plus a miss leg for the empty case.
        let probe = &oracle.errors[oracle.errors.len() / 2];
        let host = probe.host.clone();
        let xid = probe.kind.primary_code();
        let from = oracle.errors[oracle.errors.len() / 4].time;
        let to = oracle.errors[3 * oracle.errors.len() / 4].time;
        let legs: Vec<(String, String)> = vec![
            (
                "/errors".to_owned(),
                brute_force_errors(&oracle, None, None, None, None),
            ),
            (
                format!("/errors?host={host}"),
                brute_force_errors(&oracle, Some(&host), None, None, None),
            ),
            (
                format!("/errors?xid={xid}"),
                brute_force_errors(&oracle, None, Some(xid), None, None),
            ),
            (
                format!("/errors?from={}&to={}", from.unix(), to.unix()),
                brute_force_errors(&oracle, None, None, Some(from), Some(to)),
            ),
            (
                format!(
                    "/errors?host={host}&xid={xid}&from={}&to={}",
                    from.unix(),
                    to.unix()
                ),
                brute_force_errors(&oracle, Some(&host), Some(xid), Some(from), Some(to)),
            ),
            (
                // ISO-8601 time bounds parse to the same instants.
                format!("/errors?from={from}&to={to}"),
                brute_force_errors(&oracle, None, None, Some(from), Some(to)),
            ),
            (
                "/errors?host=nosuchhost".to_owned(),
                brute_force_errors(&oracle, Some("nosuchhost"), None, None, None),
            ),
        ];
        for (path, expected) in &legs {
            let resp = get_on(&mut conn, path);
            assert_eq!(resp.status, 200, "chaos={chaos_rate} {path}");
            assert_eq!(&resp.text(), expected, "chaos={chaos_rate} {path}");
        }
        // The non-trivial legs must actually select something.
        assert!(legs[1].1.lines().count() > 1, "host leg selected nothing");
        assert!(legs[3].1.lines().count() > 1, "time leg selected nothing");

        // Error paths stay errors.
        assert_eq!(get_on(&mut conn, "/nope").status, 404);
        assert_eq!(get_on(&mut conn, "/errors?bogus=1").status, 400);
        assert_eq!(get_on(&mut conn, "/errors?xid=13").status, 400);
        assert_eq!(get_on(&mut conn, "/mtbe?xid=abc").status, 400);

        server.shutdown();
    }
}

/// Two distinguishable synthetic studies for the swap tests.
fn synthetic_report(variant: u8) -> StudyReport {
    let base = StudyPeriods::delta().op.start;
    let mk = |secs: u64, host: &str, gpu: u8, code: u16| {
        XidEvent::new(
            base + Duration::from_secs(secs),
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "",
        )
    };
    let events = match variant {
        0 => vec![
            mk(100, "gpub001", 0, 119),
            mk(5_000, "gpub002", 1, 74),
            mk(90_000, "gpub001", 2, 31),
        ],
        _ => vec![
            mk(300, "gpub003", 0, 63),
            mk(7_000, "gpub001", 1, 79),
            mk(40_000, "gpub004", 2, 119),
            mk(95_000, "gpub002", 3, 48),
        ],
    };
    Pipeline::delta().run_events(events, None, &[], &[], &[])
}

#[test]
fn no_reader_observes_a_torn_response_across_snapshot_swaps() {
    let report_a = synthetic_report(0);
    let report_b = synthetic_report(1);
    let body_a = brute_force_errors(&report_a, None, None, None, None);
    let body_b = brute_force_errors(&report_b, None, None, None, None);
    assert_ne!(body_a, body_b, "variants must be distinguishable");

    // Snapshot ids are monotone from 1 (= A); the writer below alternates
    // B, A, B, … so every even id serves B and every odd id serves A.
    let handle = Arc::new(StoreHandle::new(StudyStore::build(report_a.clone(), None)));
    let server = serve(Arc::clone(&handle));
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body_a = body_a.clone();
            let body_b = body_b.clone();
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let (mut served, mut saw_b) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let resp = get_on(&mut conn, "/errors");
                    assert_eq!(resp.status, 200);
                    let id: u64 = resp
                        .header("X-Snapshot")
                        .and_then(|v| v.parse().ok())
                        .expect("snapshot header");
                    // The strong form of "not torn": the body is exactly
                    // the render of the snapshot the header names, never
                    // a mix and never a partial write.
                    let expected = if id % 2 == 1 { &body_a } else { &body_b };
                    assert_eq!(
                        &resp.text(),
                        expected,
                        "snapshot {id} served the wrong or a torn body"
                    );
                    served += 1;
                    saw_b += u64::from(id.is_multiple_of(2));
                }
                (served, saw_b)
            })
        })
        .collect();

    // Writer: 24 full swaps while the readers hammer.
    for i in 0..24 {
        let report = if i % 2 == 0 { &report_b } else { &report_a };
        handle.publish(StudyStore::build(report.clone(), None));
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    let mut total_b = 0;
    for reader in readers {
        let (served, saw_b) = reader.join().expect("reader thread clean");
        assert!(served > 0, "every reader must have been served");
        total += served;
        total_b += saw_b;
    }
    assert!(total >= 24, "load too light to exercise the swaps: {total}");
    assert!(total_b > 0, "no reader ever saw a post-swap snapshot");
    server.shutdown();
}

#[test]
fn cache_hits_reordered_queries_and_invalidates_on_publish() {
    let report = synthetic_report(0);
    let handle = Arc::new(StoreHandle::new(StudyStore::build(report.clone(), None)));
    let server = serve(Arc::clone(&handle));
    let mut conn = connect(server.addr());

    let miss = get_on(&mut conn, "/errors?host=gpub001&xid=119");
    assert_eq!(miss.header("X-Cache"), Some("miss"));
    assert_eq!(miss.header("X-Snapshot"), Some("1"));

    // Same query, different parameter order: canonicalized to a hit.
    let hit = get_on(&mut conn, "/errors?xid=119&host=gpub001");
    assert_eq!(hit.header("X-Cache"), Some("hit"));
    assert_eq!(hit.body, miss.body);

    // A publish invalidates the whole cache and bumps the snapshot id.
    handle.publish(StudyStore::build(synthetic_report(1), None));
    let after = get_on(&mut conn, "/errors?host=gpub001&xid=119");
    assert_eq!(after.header("X-Cache"), Some("miss"));
    assert_eq!(after.header("X-Snapshot"), Some("2"));

    // Snapshot-independent endpoints never carry cache headers.
    let health = get_on(&mut conn, "/healthz");
    assert_eq!(health.header("X-Cache"), None);
    assert_eq!(health.text(), "ok\n");
    server.shutdown();
}

#[test]
fn streaming_publishes_feed_the_server_live() {
    // End-to-end: a streaming pipeline pushes a snapshot through the
    // SnapshotSink hook and an HTTP client sees the refreshed study.
    let handle = Arc::new(StoreHandle::new(StudyStore::build(
        synthetic_report(0),
        None,
    )));
    let server = serve(Arc::clone(&handle));
    let mut conn = connect(server.addr());
    assert_eq!(
        get_on(&mut conn, "/snapshot").header("X-Snapshot"),
        Some("1")
    );

    let d = dataset(0.0);
    let mut engine = resilience::StreamingPipeline::new(d.pipeline, LOG_YEAR);
    for piece in d.log.chunks(1 << 16) {
        engine.push_log(piece);
    }
    engine.finish_log();
    engine.push_gpu_jobs_csv(&d.gpu_csv);
    engine.push_cpu_jobs_csv(&d.cpu_csv);
    engine.push_outages_csv(&d.out_csv);
    engine.publish_snapshot(handle.as_ref());

    let (oracle, _) = engine.finalize();
    let resp = get_on(&mut conn, "/errors");
    assert_eq!(resp.header("X-Snapshot"), Some("2"));
    assert_eq!(
        resp.text(),
        brute_force_errors(&oracle, None, None, None, None)
    );
    assert_eq!(
        get_on(&mut conn, "/tables/1").text(),
        report::table1(&oracle)
    );
    server.shutdown();
}
