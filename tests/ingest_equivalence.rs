//! The live-ingest-equals-offline proof for `servd`: a corpus POSTed to
//! `/ingest/*` — in any chunking, with duplicates, and across an
//! in-process restart — must converge to the exact bytes the offline
//! oracle (`Pipeline::run_lenient` over the whole corpus) renders for
//! every report surface.
//!
//! Three legs:
//!
//! 1. The full simulated campaign, clean and 5%-corrupted, chunked at
//!    1 KiB and as one whole-corpus POST.
//! 2. A corpus prefix chunked at 1 and 7 bytes — the degenerate
//!    chunkings that shake out every boundary in the WAL framing, the
//!    seq protocol, and the streaming scanner's carry logic.
//! 3. A simulated crash: chunks acknowledged (WAL-durable) but never
//!    applied because no worker ran, then a recovery on the same
//!    directory that must replay every acknowledged byte, absorb
//!    re-sent duplicates, and still converge.
//!
//! The oracle never touches the ingest machinery: expected bytes come
//! from `resilience::report` over a batch run of the identical corpus.

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use resilience::csvio;
use servd::{IngestConfig, ServerConfig, StoreHandle, StudyStore};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SCALE: f64 = 0.02;
const SEED: u64 = 0x0B5;
/// The scaled calendar stays inside 2022 (see E12/E13).
const LOG_YEAR: i32 = 2022;

// ---------------------------------------------------------------- dataset

struct Dataset {
    pipeline: Pipeline,
    log: Vec<u8>,
    gpu_csv: String,
    cpu_csv: String,
    out_csv: String,
}

/// Same construction as `tests/serve_equivalence.rs`: one simulated
/// campaign, optionally corrupted, plus its CSV exports.
fn dataset(chaos_rate: f64) -> Dataset {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    Dataset {
        pipeline,
        log,
        gpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        cpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        out_csv: csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    }
}

/// A fresh scratch directory under the system temp root; unique per
/// process and per call so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ingest-eq-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

// ------------------------------------------------------- tiny HTTP client
//
// The one-write keep-alive client lives in `servd::testutil` (shared by
// every server suite); only the 429-aware chunk POST is local.

use servd::testutil::{connect, get_on, request_on};

/// POSTs one chunk with its sequence number, honouring `429` shedding by
/// backing off and retrying until the server accepts (or the attempt
/// budget proves it never will). A `200` duplicate is success: the
/// record is already durable server-side.
fn post_chunk(conn: &mut TcpStream, stream: &str, seq: u64, payload: &[u8]) {
    for _ in 0..10_000 {
        let resp = request_on(
            conn,
            "POST",
            &format!("/ingest/{stream}?seq={seq}"),
            payload,
        );
        match resp.status {
            200 => return,
            429 => {
                let retry: u64 = resp
                    .header("Retry-After")
                    .and_then(|v| v.parse().ok())
                    .expect("429 must carry a parseable Retry-After");
                assert!(retry >= 1, "Retry-After must be at least a second");
                // The header is sized for polite external clients; the
                // test backs off just long enough for the worker to
                // drain a slot.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            other => panic!(
                "POST /ingest/{stream}?seq={seq} -> {other}: {}",
                resp.text()
            ),
        }
    }
    panic!("chunk {stream}/{seq} never accepted after 10000 attempts");
}

// --------------------------------------------------------- live harness

/// One live-ingest server instance over a durable directory: recovered
/// engine, worker, store, HTTP listener.
struct Live {
    handle: Arc<servd::IngestHandle>,
    worker: servd::IngestWorker,
    server: servd::RunningServer,
}

impl Live {
    /// Per-stream accepted chunk counts, straight off the handle.
    fn accepted(&self) -> [u64; 4] {
        self.handle.accepted()
    }
}

impl Live {
    /// Recovers `dir` and serves it with a live ingest worker.
    fn start(dir: &Path, pipeline: Pipeline, queue_capacity: usize) -> Live {
        let mut config = IngestConfig::new(dir);
        config.queue_capacity = queue_capacity;
        // Cadence semantics (publish every N events / T seconds) are
        // covered by the servd unit tests and exercised live by E16 in
        // release builds; here a debug-build materialization costs tens
        // of seconds, so mid-feed publishes would starve the apply loop.
        // This suite proves convergence: the flush barrier publishes.
        config.publish_every_events = u64::MAX;
        config.publish_every = std::time::Duration::from_secs(24 * 3600);
        let recovered = servd::ingest::recover(config, pipeline, LOG_YEAR).expect("recover");
        let (report, quarantine) = recovered.engine.materialize_full();
        let store = Arc::new(StoreHandle::new(StudyStore::build(
            report,
            Some(&quarantine),
        )));
        let worker = servd::ingest::spawn_worker(
            recovered.engine,
            Arc::clone(&recovered.handle),
            Arc::clone(&store),
        );
        let server = servd::start_with_ingest(
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                // The whole-corpus leg POSTs the entire campaign log as
                // one body; give it generous headroom.
                max_body_bytes: 256 * 1024 * 1024,
                ..ServerConfig::default()
            },
            store,
            Some(Arc::clone(&recovered.handle)),
        )
        .expect("server starts on an ephemeral port");
        Live {
            handle: recovered.handle,
            worker,
            server,
        }
    }

    fn connect(&self) -> TcpStream {
        connect(self.server.addr())
    }

    /// Graceful stop: HTTP first, then drain + final checkpoint.
    fn stop(self) {
        self.server.shutdown();
        self.worker.stop();
    }
}

// ------------------------------------------------------ oracle + compare

/// The offline truth for a corpus: batch `run_lenient` over the whole
/// thing, rendered to the four compared surfaces.
fn oracle_surfaces(d: &Dataset, log: &[u8]) -> Vec<(&'static str, String)> {
    let (report, _) = d
        .pipeline
        .run_lenient(log, LOG_YEAR, &d.gpu_csv, &d.cpu_csv, &d.out_csv);
    surfaces_of(&report)
}

fn surfaces_of(report: &StudyReport) -> Vec<(&'static str, String)> {
    let a = &report.availability;
    let num = |v: Option<f64>| match v {
        Some(v) if v.is_finite() => format!("{:.6}", v + 0.0),
        _ => "null".to_owned(),
    };
    let availability = format!(
        "{{\n  \"outages\": {},\n  \"mttr_hours\": {},\n  \"total_downtime_node_hours\": {},\n  \"mttf_hours\": {},\n  \"availability\": {},\n  \"availability_empirical\": {}\n}}\n",
        a.outage_count(),
        num(a.mttr_hours()),
        num(Some(a.total_downtime_node_hours())),
        num(report.mttf_hours),
        num(report.availability_estimate()),
        num(Some(a.availability_empirical())),
    );
    let mut errors = String::from("time,host,pci,xid,kind,merged_lines\n");
    for e in &report.errors {
        use std::fmt::Write as _;
        let _ = writeln!(
            errors,
            "{},{},{},{},{},{}",
            e.time,
            e.host,
            e.pci,
            e.kind.primary_code(),
            e.kind.abbreviation(),
            e.merged_lines
        );
    }
    vec![
        ("/tables/1", report::table1(report)),
        ("/tables/2", report::table2(report)),
        ("/tables/3", report::table3(report)),
        ("/fig2", report::figure2(report)),
        ("/errors", errors),
        ("/availability", availability),
    ]
}

/// Feeds the corpus through the ingest endpoints in acceptance order
/// (logs, then the three CSV streams), `chunk` bytes per POST.
fn post_corpus(conn: &mut TcpStream, d: &Dataset, log: &[u8], chunk: usize) {
    for (i, piece) in log.chunks(chunk).enumerate() {
        post_chunk(conn, "logs", i as u64, piece);
    }
    for (stream, csv) in [
        ("jobs", &d.gpu_csv),
        ("cpu-jobs", &d.cpu_csv),
        ("outages", &d.out_csv),
    ] {
        for (i, piece) in csv.as_bytes().chunks(chunk).enumerate() {
            post_chunk(conn, stream, i as u64, piece);
        }
    }
}

/// Flushes (publish + checkpoint barrier) and asserts every compared
/// surface is byte-identical to the oracle.
fn assert_converged(conn: &mut TcpStream, expected: &[(&'static str, String)], context: &str) {
    let flushed = request_on(conn, "POST", "/ingest/flush", &[]);
    assert_eq!(
        flushed.status,
        200,
        "{context}: flush failed: {}",
        flushed.text()
    );
    for (path, body) in expected {
        let resp = get_on(conn, path);
        assert_eq!(resp.status, 200, "{context} {path}");
        assert_eq!(
            &resp.text(),
            body,
            "{context} {path} diverged from the oracle"
        );
    }
}

// ---------------------------------------------------------------- tests

#[test]
fn chunked_posts_converge_to_the_offline_oracle() {
    for chaos_rate in [0.0, 0.05] {
        let d = dataset(chaos_rate);
        let expected = oracle_surfaces(&d, &d.log);
        assert!(
            expected
                .iter()
                .any(|(p, b)| *p == "/errors" && b.lines().count() > 100),
            "chaos={chaos_rate}: dataset too small to be a meaningful oracle"
        );
        for chunk in [1024usize, usize::MAX] {
            let dir = scratch("matrix");
            let live = Live::start(&dir, d.pipeline, 64);
            let mut conn = live.connect();
            post_corpus(&mut conn, &d, &d.log, chunk);
            let want_logs = d.log.chunks(chunk).count() as u64;
            assert_eq!(
                live.accepted()[0],
                want_logs,
                "chaos={chaos_rate} chunk={chunk}: accepted count drifted"
            );
            assert_converged(
                &mut conn,
                &expected,
                &format!("chaos={chaos_rate} chunk={chunk}"),
            );
            live.stop();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn degenerate_one_and_seven_byte_chunks_converge() {
    // Byte-at-a-time POSTs over the full campaign would be quadratic in
    // round trips; a corpus prefix exercises every boundary condition
    // (WAL framing, seq handoff, mid-line and mid-token scanner carries)
    // at a few thousand requests. The cut deliberately ignores line
    // boundaries — the oracle sees the identical torn tail.
    for chaos_rate in [0.0, 0.05] {
        let d = dataset(chaos_rate);
        let log = &d.log[..d.log.len().min(1500)];
        let small = Dataset {
            pipeline: d.pipeline,
            log: log.to_vec(),
            gpu_csv: d.gpu_csv.lines().take(8).collect::<Vec<_>>().join("\n"),
            cpu_csv: d.cpu_csv.lines().take(8).collect::<Vec<_>>().join("\n"),
            out_csv: d.out_csv.lines().take(4).collect::<Vec<_>>().join("\n"),
        };
        let expected = oracle_surfaces(&small, &small.log);
        for chunk in [1usize, 7] {
            let dir = scratch("tiny");
            let live = Live::start(&dir, small.pipeline, 32);
            let mut conn = live.connect();
            post_corpus(&mut conn, &small, &small.log, chunk);
            assert_converged(
                &mut conn,
                &expected,
                &format!("chaos={chaos_rate} chunk={chunk}"),
            );
            live.stop();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn acknowledged_chunks_survive_a_restart_and_duplicates_are_absorbed() {
    let d = dataset(0.0);
    let expected = oracle_surfaces(&d, &d.log);
    let chunks: Vec<&[u8]> = d.log.chunks(1024).collect();
    let dir = scratch("restart");

    // Phase A — a server that acknowledges but never applies: no worker
    // is spawned, so every accepted chunk exists only in the WAL. This
    // is the worst crash window: durable, acked, not yet in the engine,
    // no checkpoint ever written.
    let mut acked = 0u64;
    {
        let mut config = IngestConfig::new(&dir);
        config.queue_capacity = 48;
        let recovered =
            servd::ingest::recover(config, d.pipeline, LOG_YEAR).expect("fresh recover");
        let (report, quarantine) = recovered.engine.materialize_full();
        let store = Arc::new(StoreHandle::new(StudyStore::build(
            report,
            Some(&quarantine),
        )));
        let server = servd::start_with_ingest(
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
            store,
            Some(Arc::clone(&recovered.handle)),
        )
        .expect("server starts");
        let mut conn = connect(server.addr());
        for (i, piece) in chunks.iter().enumerate().take(40) {
            let resp = request_on(&mut conn, "POST", &format!("/ingest/logs?seq={i}"), piece);
            assert_eq!(resp.status, 200, "phase A chunk {i}");
            acked += 1;
        }
        // SIGKILL-equivalent for an in-process test: the server vanishes
        // with a full queue and no checkpoint on disk.
        server.shutdown();
    }

    // Phase B — recovery on the same directory must replay every
    // acknowledged record from the WAL alone.
    let live = Live::start(&dir, d.pipeline, 64);
    let mut conn = live.connect();
    let status = get_on(&mut conn, "/ingest/status");
    assert!(
        status.text().contains(&format!("\"accepted\":{acked}")),
        "restart lost acknowledged chunks: {}",
        status.text()
    );

    // A client that never saw the acks re-sends from an earlier seq; the
    // duplicates are absorbed as no-ops.
    for i in (acked - 3)..acked {
        let resp = request_on(
            &mut conn,
            "POST",
            &format!("/ingest/logs?seq={i}"),
            chunks[i as usize],
        );
        assert_eq!(resp.status, 200, "duplicate {i} not absorbed");
    }
    // A gap is still refused — recovery must not have weakened the
    // protocol.
    let gap = request_on(&mut conn, "POST", "/ingest/logs?seq=9999999", b"x");
    assert_eq!(gap.status, 409, "gap accepted after restart");

    // The rest of the corpus, then the CSV streams, then the proof.
    for (i, piece) in chunks.iter().enumerate().skip(acked as usize) {
        post_chunk(&mut conn, "logs", i as u64, piece);
    }
    for (stream, csv) in [
        ("jobs", &d.gpu_csv),
        ("cpu-jobs", &d.cpu_csv),
        ("outages", &d.out_csv),
    ] {
        for (i, piece) in csv.as_bytes().chunks(4096).enumerate() {
            post_chunk(&mut conn, stream, i as u64, piece);
        }
    }
    assert_converged(&mut conn, &expected, "restart leg");
    live.stop();

    // A second recovery of the now-checkpointed directory is a clean
    // no-replay load: everything is inside the checkpoint.
    let mut config = IngestConfig::new(&dir);
    config.queue_capacity = 64;
    let recovered = servd::ingest::recover(config, d.pipeline, LOG_YEAR).expect("re-recover");
    assert_eq!(recovered.replayed, 0, "post-flush WAL should be compacted");
    assert_eq!(recovered.accepted[0] as usize, chunks.len());
    let (report, _) = recovered.engine.materialize_full();
    for (path, body) in surfaces_of(&report) {
        let want = expected.iter().find(|(p, _)| *p == path).map(|(_, b)| b);
        assert_eq!(Some(&body), want, "{path} diverged after second recovery");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
