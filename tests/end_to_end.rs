//! Cross-crate integration tests: the full substrate → pipeline round trip
//! on scaled campaigns, validating that the analysis recovers what the
//! generators injected.

use delta_gpu_resilience::prelude::*;

/// A scaled campaign + schedule + analysis, shared across tests.
fn run_study(scale: f64, seed: u64) -> (CampaignOutput, StudyReport) {
    let mut config = FaultConfig::delta_scaled(scale);
    config.seed = seed;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(scale);
    let outcome =
        Simulation::new(&cluster, workload, seed).run(&campaign.ground_truth, &campaign.holds);
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let report = pipeline.run(
        &campaign.archive,
        &bridge::jobs(&outcome.jobs),
        &bridge::jobs(&outcome.cpu_jobs),
        &bridge::outages(campaign.ledger.outages()),
    );
    (campaign, report)
}

#[test]
fn analysis_recovers_injected_error_counts() {
    let (campaign, report) = run_study(0.03, 11);
    // The pipeline reads only rendered log text, yet its per-kind counts
    // must track the injector's ground truth. Coalescing merges genuine
    // short bursts (MMU, PMU followers), so allow headroom on those.
    for kind in [
        ErrorKind::GspError,
        ErrorKind::NvlinkError,
        ErrorKind::FallenOffBus,
    ] {
        let truth = campaign
            .ground_truth
            .iter()
            .filter(|e| e.kind == kind)
            .count() as i64;
        let analysed =
            (report.stats.count(kind, Phase::PreOp) + report.stats.count(kind, Phase::Op)) as i64;
        assert!(
            (truth - analysed).abs() <= truth / 5 + 2,
            "{kind}: truth {truth} vs analysed {analysed}"
        );
    }
}

#[test]
fn coalescing_compresses_duplicates() {
    let (campaign, report) = run_study(0.02, 12);
    // Every ground-truth error emitted 1 + geometric raw lines (mean 2
    // normally, mean 26 during the storm), so the overall ratio is storm-
    // dominated but bounded, and no raw line may be lost.
    assert!(report.coalesce_summary.raw_lines > report.coalesce_summary.errors);
    let ratio = report.coalesce_summary.ratio();
    assert!((1.5..40.0).contains(&ratio), "dedup ratio {ratio}");
    assert_eq!(
        report.coalesce_summary.raw_lines,
        campaign.stats.raw_lines()
    );
    // Coalescing must recover the injected error count closely: duplicates
    // merge, real errors survive.
    let truth = campaign.ground_truth.len() as f64;
    let analysed = report.stats_raw.total_count(Phase::PreOp) as f64
        + report.stats_raw.total_count(Phase::Op) as f64
        - report.stats_raw.uncorrectable_count(Phase::PreOp) as f64
        - report.stats_raw.uncorrectable_count(Phase::Op) as f64;
    let rel = (analysed - truth).abs() / truth;
    assert!(
        rel < 0.12,
        "analysed {analysed} vs truth {truth} (rel {rel:.3})"
    );
}

#[test]
fn storm_is_detected_and_excluded() {
    let (campaign, report) = run_study(0.05, 13);
    let storm = campaign
        .config
        .storm
        .expect("scaled delta config keeps the storm");
    let outlier = report.outlier().expect("storm must trip the outlier rule");
    assert_eq!(outlier.host, storm.gpu.node.hostname());
    assert_eq!(outlier.kind, ErrorKind::UncontainedMemoryError);
    assert!(outlier.excluded_errors > 100);
    // Raw stats keep the storm; headline stats drop it.
    let raw = report
        .stats_raw
        .count(ErrorKind::UncontainedMemoryError, Phase::PreOp);
    let clean = report
        .stats
        .count(ErrorKind::UncontainedMemoryError, Phase::PreOp);
    assert!(raw > clean + 100, "raw {raw} clean {clean}");
}

#[test]
fn mtbe_matches_calibration_within_noise() {
    let (_, report) = run_study(0.08, 14);
    // GSP op per-node MTBE calibrates to ~590 h (Table I). Small scaled
    // samples are noisy; require the right decade.
    if let Some(mtbe) = report.stats.mtbe_per_node(ErrorKind::GspError, Phase::Op) {
        assert!(
            (250.0..1400.0).contains(&mtbe),
            "GSP op per-node MTBE {mtbe}"
        );
    }
    // NVLink op system-wide MTBE calibrates to ~11 h.
    if let Some(mtbe) = report.stats.mtbe_system(ErrorKind::NvlinkError, Phase::Op) {
        assert!((4.0..30.0).contains(&mtbe), "NVLink op system MTBE {mtbe}");
    }
}

#[test]
fn job_impact_has_paper_shape() {
    let (_, report) = run_study(0.08, 15);
    let mmu = report.impact.kind(ErrorKind::MmuError);
    assert!(
        mmu.encountered > 50,
        "need MMU sample, got {}",
        mmu.encountered
    );
    let p_mmu = mmu.failure_probability().unwrap();
    assert!((0.75..0.97).contains(&p_mmu), "P(fail|MMU) {p_mmu}");
    if let Some(p_nvl) = report
        .impact
        .kind(ErrorKind::NvlinkError)
        .failure_probability()
    {
        assert!(
            p_nvl < p_mmu,
            "NVLink {p_nvl} must be more survivable than MMU {p_mmu}"
        );
    }
}

#[test]
fn success_rates_track_targets() {
    let (_, report) = run_study(0.02, 16);
    let gpu = report.gpu_success.unwrap();
    let cpu = report.cpu_success.unwrap();
    assert!((0.70..0.78).contains(&gpu), "gpu success {gpu}");
    assert!((0.73..0.77).contains(&cpu), "cpu success {cpu}");
}

#[test]
fn availability_in_paper_band() {
    let (_, report) = run_study(0.08, 17);
    let mttr = report.availability.mttr_hours().expect("outages happened");
    assert!((0.6..1.2).contains(&mttr), "MTTR {mttr}");
    let avail = report.availability_estimate().expect("estimable");
    assert!((0.985..0.9995).contains(&avail), "availability {avail}");
}

#[test]
fn whole_study_is_deterministic() {
    let (a_campaign, a) = run_study(0.01, 18);
    let (b_campaign, b) = run_study(0.01, 18);
    assert_eq!(a_campaign.ground_truth, b_campaign.ground_truth);
    assert_eq!(a.coalesce_summary, b.coalesce_summary);
    assert_eq!(
        a.stats.total_count(Phase::Op),
        b.stats.total_count(Phase::Op)
    );
    assert_eq!(a.impact.gpu_failed_jobs(), b.impact.gpu_failed_jobs());
    assert_eq!(report::table1(&a), report::table1(&b));
}

#[test]
fn reports_render_on_real_output() {
    let (_, report) = run_study(0.01, 19);
    let t1 = report::table1(&report);
    assert!(t1.contains("GSP Error"));
    assert!(t1.contains("TOTAL"));
    let t3 = report::table3(&report);
    assert!(t3.contains("GPU job success rate"));
    let f2 = report::figure2(&report);
    assert!(f2.contains("MTTR"));
    // CSV variants parse as the right number of columns.
    for line in report::table1_csv(&report).lines().skip(1) {
        assert_eq!(line.split(',').count(), 8, "{line}");
    }
    for line in report::table3_csv(&report).lines().skip(1) {
        assert_eq!(line.split(',').count(), 8, "{line}");
    }
}

#[test]
fn findings_mostly_reproduce_at_moderate_scale() {
    let (_, report) = run_study(0.10, 0xDE17A);
    let findings = Findings::evaluate(&report);
    let (pass, total) = findings.score();
    assert!(total >= 9);
    assert!(pass as f64 >= total as f64 * 0.7, "{findings}");
}

#[test]
fn archive_roundtrip_preserves_analysis() {
    // Render the archive to per-day text files and ingest them back: the
    // analysis result must be identical (the real pipeline consumes files).
    let mut config = FaultConfig::delta_scaled(0.01);
    config.seed = 20;
    let campaign = Campaign::new(config).run();
    let mut reparsed = hpclog::archive::Archive::new();
    for (day, _) in campaign.archive.days() {
        let text = campaign.archive.render_day(day).unwrap();
        let year = hpclog::Timestamp::from_unix(day * 86_400).ymd().0;
        let (_, skipped) = reparsed.ingest_day(&text, year);
        assert_eq!(skipped, 0, "day {day} had unparseable lines");
    }
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let direct = pipeline.run(&campaign.archive, &[], &[], &[]);
    let roundtrip = pipeline.run(&reparsed, &[], &[], &[]);
    assert_eq!(direct.coalesce_summary, roundtrip.coalesce_summary);
    assert_eq!(report::table1(&direct), report::table1(&roundtrip));
}
