//! The no-perturbation proof for the observability layer: running the
//! study with the `obs` registry **enabled** must produce byte-identical
//! rendered surfaces to the uninstrumented run, in every execution mode —
//! serial, parallel at {1, 4, 8} threads, streaming at chunk {7, 1024} —
//! over clean and 5%-corrupted logs. And because instrumentation hangs off
//! the same code paths everywhere, the *invariant* counters (lines
//! scanned, events coalesced, merges, attribution hits) must agree across
//! all modes for the same dataset.
//!
//! Everything runs inside one `#[test]` because the registry is
//! process-global: sequencing the legs keeps the per-mode counter deltas
//! exact. (Unit-level behavior of the registry itself is covered in
//! `crates/obs`, against private instances.)

use delta_gpu_resilience::prelude::*;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use obs::registry::{counter_total, MetricSnapshot};
use resilience::csvio;
use resilience::incremental::StreamingPipeline;
use std::sync::Mutex;

/// Both tests flip the process-global `obs` switch and difference its
/// counters; they must not interleave.
static GLOBAL_OBS: Mutex<()> = Mutex::new(());

const SCALE: f64 = 0.02;
const SEED: u64 = 0x0B5;
/// The scaled calendar stays inside 2022 (see E12/E13).
const LOG_YEAR: i32 = 2022;

/// The mode-invariant counters: whatever path the bytes take, these
/// totals describe the same dataset and must not move.
const INVARIANTS: &[&str] = &[
    "hpclog_lines_scanned_total",
    "hpclog_events_extracted_total",
    "core_events_coalesced_total",
    "core_coalesce_merges_total",
    "core_attribution_window_hits_total",
];

struct Dataset {
    pipeline: Pipeline,
    log: Vec<u8>,
    gpu_csv: String,
    cpu_csv: String,
    out_csv: String,
}

fn dataset(chaos_rate: f64) -> Dataset {
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    config.emit_logs = true;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);
    let outcome =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let log = if chaos_rate > 0.0 {
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(chaos_rate, 0.02, SEED));
        chaos.corrupt_archive(&campaign.archive)
    } else {
        let mut out = Vec::new();
        for line in campaign.archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    Dataset {
        pipeline,
        log,
        gpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.jobs)),
        cpu_csv: csvio::render_jobs(&bridge::jobs(&outcome.cpu_jobs)),
        out_csv: csvio::render_outages(&bridge::outages(campaign.ledger.outages())),
    }
}

/// Every surface a run renders, plus the quarantine ledger.
fn render_all(r: &StudyReport, q: &QuarantineReport) -> String {
    format!(
        "{}\n{}\n{:?}\n{:?}\n{:?}",
        report::full(r),
        report::figure2(r),
        q.ledger.counts(),
        q.ledger.exemplars(),
        q.caveats
    )
}

/// The per-invariant deltas a closure's execution produced in the global
/// registry.
fn deltas_of(run: impl FnOnce()) -> Vec<(&'static str, u64)> {
    let before = obs::global().registry().snapshot();
    run();
    let after = obs::global().registry().snapshot();
    INVARIANTS
        .iter()
        .map(|name| (*name, counter_delta(&before, &after, name)))
        .collect()
}

fn counter_delta(before: &[MetricSnapshot], after: &[MetricSnapshot], name: &str) -> u64 {
    counter_total(after, name) - counter_total(before, name)
}

fn serial(d: &Dataset) -> (StudyReport, QuarantineReport) {
    d.pipeline.run_lenient(
        d.log.as_slice(),
        LOG_YEAR,
        &d.gpu_csv,
        &d.cpu_csv,
        &d.out_csv,
    )
}

fn streaming(d: &Dataset, chunk: usize) -> (StudyReport, QuarantineReport) {
    let mut engine = StreamingPipeline::new(d.pipeline, LOG_YEAR);
    for piece in d.log.chunks(chunk) {
        engine.push_log(piece);
    }
    engine.finish_log();
    engine.push_gpu_jobs_csv(&d.gpu_csv);
    engine.push_cpu_jobs_csv(&d.cpu_csv);
    engine.push_outages_csv(&d.out_csv);
    engine.finalize()
}

#[test]
fn instrumented_runs_are_byte_identical_and_counters_agree_across_modes() {
    let _guard = GLOBAL_OBS.lock().unwrap_or_else(|e| e.into_inner());
    for chaos_rate in [0.0, 0.05] {
        let d = dataset(chaos_rate);

        // Oracle: the uninstrumented run. `obs` starts disabled in a
        // fresh process; make it explicit anyway so leg order can't
        // matter if this test ever grows.
        obs::set_enabled(false);
        let (oracle_r, oracle_q) = serial(&d);
        let oracle = render_all(&oracle_r, &oracle_q);

        // Instrumented legs: every mode must render the oracle's bytes
        // and move the invariant counters by the same amounts.
        obs::set_enabled(true);
        let mut legs: Vec<(String, Vec<(&'static str, u64)>)> = Vec::new();

        let mut out = None;
        let deltas = deltas_of(|| out = Some(serial(&d)));
        let (r, q) = out.expect("serial leg ran");
        assert_eq!(render_all(&r, &q), oracle, "chaos={chaos_rate} serial");
        legs.push(("serial".to_owned(), deltas));

        for threads in [1usize, 4, 8] {
            let mut out = None;
            let deltas = deltas_of(|| {
                out = Some(d.pipeline.run_lenient_parallel(
                    d.log.as_slice(),
                    LOG_YEAR,
                    &d.gpu_csv,
                    &d.cpu_csv,
                    &d.out_csv,
                    threads,
                ))
            });
            let (r, q) = out.expect("parallel leg ran");
            assert_eq!(
                render_all(&r, &q),
                oracle,
                "chaos={chaos_rate} threads={threads}"
            );
            legs.push((format!("threads={threads}"), deltas));
        }

        for chunk in [7usize, 1024] {
            let mut out = None;
            let deltas = deltas_of(|| out = Some(streaming(&d, chunk)));
            let (r, q) = out.expect("streaming leg ran");
            assert_eq!(
                render_all(&r, &q),
                oracle,
                "chaos={chaos_rate} chunk={chunk}"
            );
            legs.push((format!("chunk={chunk}"), deltas));
        }

        obs::set_enabled(false);

        let (ref_name, ref_deltas) = &legs[0];
        for (name, value) in ref_deltas {
            assert!(
                *value > 0 || *name == "core_attribution_window_hits_total",
                "chaos={chaos_rate} {ref_name}: {name} never incremented"
            );
        }
        for (leg_name, leg_deltas) in &legs[1..] {
            assert_eq!(
                leg_deltas, ref_deltas,
                "chaos={chaos_rate}: {leg_name} vs {ref_name}"
            );
        }
    }
}

#[test]
fn scheduler_kill_counter_matches_the_outcome() {
    let _guard = GLOBAL_OBS.lock().unwrap_or_else(|e| e.into_inner());
    // The slurmsim layer runs once per simulation, not per analysis mode;
    // its counters must agree with the outcome it returns, and running
    // the same seeded simulation instrumented vs not must not change the
    // outcome.
    let mut config = FaultConfig::delta_scaled(SCALE);
    config.seed = SEED;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SCALE);

    obs::set_enabled(false);
    let plain = Simulation::new(&cluster, workload.clone(), SEED)
        .run(&campaign.ground_truth, &campaign.holds);

    obs::set_enabled(true);
    let before = obs::global().registry().snapshot();
    let instrumented =
        Simulation::new(&cluster, workload, SEED).run(&campaign.ground_truth, &campaign.holds);
    let after = obs::global().registry().snapshot();
    obs::set_enabled(false);

    assert_eq!(
        csvio::render_jobs(&bridge::jobs(&plain.jobs)),
        csvio::render_jobs(&bridge::jobs(&instrumented.jobs)),
        "instrumentation changed the schedule"
    );
    assert_eq!(
        counter_delta(&before, &after, "slurmsim_jobs_killed_total"),
        instrumented.stats.error_kills,
        "kill counter disagrees with the outcome"
    );
    assert_eq!(
        counter_delta(&before, &after, "slurmsim_jobs_scheduled_total"),
        (instrumented.jobs.len() + instrumented.cpu_jobs.len()) as u64,
        "scheduled counter disagrees with the outcome"
    );
}
