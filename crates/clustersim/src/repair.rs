//! Repair-duration sampling and downtime accounting.

use crate::ids::NodeId;
use simrng::dist::{LogNormal, Sample};
use simrng::Rng;
use simtime::{Duration, Timestamp};
use xid::RecoveryAction;

/// Samples how long a recovery action keeps a node out of service.
///
/// Calibrated to the paper's §V-C: servicing a failed node takes 0.88 hours
/// on average (drain + reboot + health check), with a right-skewed
/// distribution (Fig. 2 shows most outages under an hour and a long tail of
/// multi-hour repairs). Reboots are modelled log-normal around that mean;
/// hardware replacement, which waits on an SRE and possibly a part, is an
/// order of magnitude longer.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairModel {
    reboot: LogNormal,
    replacement: LogNormal,
}

impl RepairModel {
    /// The paper-calibrated model: mean repair 0.88 h with median 0.6 h
    /// (right-skewed), replacement mean 24 h with median 12 h.
    pub fn delta() -> Self {
        RepairModel {
            reboot: LogNormal::from_mean_median(0.88, 0.60).expect("static parameters are valid"),
            replacement: LogNormal::from_mean_median(24.0, 12.0)
                .expect("static parameters are valid"),
        }
    }

    /// A custom model from explicit distributions.
    pub fn new(reboot: LogNormal, replacement: LogNormal) -> Self {
        RepairModel {
            reboot,
            replacement,
        }
    }

    /// The reboot-duration distribution (hours).
    pub fn reboot_hours(&self) -> LogNormal {
        self.reboot
    }

    /// The replacement-duration distribution (hours).
    pub fn replacement_hours(&self) -> LogNormal {
        self.replacement
    }

    /// Samples the out-of-service time for `action`.
    ///
    /// [`RecoveryAction::None`] takes zero time; resets and reboots draw
    /// from the reboot distribution (the paper's drain+reboot episodes);
    /// SRE interventions draw the same but with a floor of 15 minutes of
    /// human response; replacement draws from the replacement distribution.
    pub fn sample(&self, action: RecoveryAction, rng: &mut Rng) -> Duration {
        let hours = match action {
            RecoveryAction::None => 0.0,
            RecoveryAction::GpuReset | RecoveryAction::NodeReboot => self.reboot.sample(rng),
            RecoveryAction::SreIntervention => self.reboot.sample(rng).max(0.25),
            RecoveryAction::GpuReplacement => self.replacement.sample(rng),
        };
        Duration::from_secs((hours * 3600.0).round() as u64)
    }
}

impl Default for RepairModel {
    fn default() -> Self {
        RepairModel::delta()
    }
}

/// One completed outage of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// When the node left service (reboot began).
    pub start: Timestamp,
    /// How long it stayed out of service.
    pub duration: Duration,
    /// What recovery action was performed.
    pub action: RecoveryAction,
}

impl Outage {
    /// When the node returned to service.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration
    }
}

/// Accumulates outages and derives the availability statistics of §V-C.
///
/// # Example
///
/// ```
/// use clustersim::{DowntimeLedger, NodeId, Outage};
/// use simtime::{Duration, Timestamp};
/// use xid::RecoveryAction;
///
/// let mut ledger = DowntimeLedger::new(106);
/// ledger.record(Outage {
///     node: NodeId::new(3),
///     start: Timestamp::from_unix(1_000_000),
///     duration: Duration::from_mins(53),
///     action: RecoveryAction::NodeReboot,
/// });
/// assert_eq!(ledger.outage_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DowntimeLedger {
    node_count: usize,
    outages: Vec<Outage>,
}

impl DowntimeLedger {
    /// Creates a ledger for a cluster of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        DowntimeLedger {
            node_count,
            outages: Vec::new(),
        }
    }

    /// Records a completed outage.
    pub fn record(&mut self, outage: Outage) {
        self.outages.push(outage);
    }

    /// All recorded outages, in recording order.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Number of outages recorded.
    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }

    /// Total node-hours lost across all outages.
    pub fn total_downtime_hours(&self) -> f64 {
        self.outages.iter().map(|o| o.duration.as_hours_f64()).sum()
    }

    /// Mean time to repair in hours (the paper's MTTR, 0.88 h), or `None`
    /// with no outages.
    pub fn mttr_hours(&self) -> Option<f64> {
        if self.outages.is_empty() {
            None
        } else {
            Some(self.total_downtime_hours() / self.outages.len() as f64)
        }
    }

    /// Per-node availability over an observation window of `window_hours`,
    /// as the fraction of node-hours in service:
    /// `1 - downtime / (nodes × window)`.
    ///
    /// The paper reports this as 99.5% (7 minutes/day of downtime).
    ///
    /// # Panics
    ///
    /// Panics if the window or node count is zero.
    pub fn availability(&self, window_hours: f64) -> f64 {
        assert!(window_hours > 0.0 && self.node_count > 0);
        let capacity = self.node_count as f64 * window_hours;
        (1.0 - self.total_downtime_hours() / capacity).max(0.0)
    }

    /// Availability via the paper's MTTF/(MTTF+MTTR) formula given an
    /// externally computed MTTF (the paper derives MTTF from MTBE).
    pub fn availability_from_mttf(&self, mttf_hours: f64) -> Option<f64> {
        let mttr = self.mttr_hours()?;
        Some(mttf_hours / (mttf_hours + mttr))
    }

    /// Equivalent downtime in minutes per node per day.
    pub fn downtime_minutes_per_node_day(&self, window_hours: f64) -> f64 {
        (1.0 - self.availability(window_hours)) * 24.0 * 60.0
    }

    /// The outage durations in hours (the Fig. 2 distribution).
    pub fn duration_hours(&self) -> Vec<f64> {
        self.outages
            .iter()
            .map(|o| o.duration.as_hours_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(node: u16, start_h: u64, mins: u64) -> Outage {
        Outage {
            node: NodeId::new(node),
            start: Timestamp::from_unix(start_h * 3600),
            duration: Duration::from_mins(mins),
            action: RecoveryAction::NodeReboot,
        }
    }

    #[test]
    fn repair_model_mean_tracks_calibration() {
        let model = RepairModel::delta();
        let mut rng = Rng::seed_from(42);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| {
                model
                    .sample(RecoveryAction::NodeReboot, &mut rng)
                    .as_hours_f64()
            })
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.88).abs() < 0.03, "mean repair {mean} h");
    }

    #[test]
    fn none_action_takes_no_time() {
        let model = RepairModel::delta();
        let mut rng = Rng::seed_from(1);
        assert_eq!(model.sample(RecoveryAction::None, &mut rng), Duration::ZERO);
    }

    #[test]
    fn sre_intervention_has_floor() {
        let model = RepairModel::delta();
        let mut rng = Rng::seed_from(2);
        for _ in 0..1000 {
            let d = model.sample(RecoveryAction::SreIntervention, &mut rng);
            assert!(d >= Duration::from_mins(15));
        }
    }

    #[test]
    fn replacement_is_much_slower_than_reboot() {
        let model = RepairModel::delta();
        let mut rng = Rng::seed_from(3);
        let reboot: f64 = (0..2000)
            .map(|_| {
                model
                    .sample(RecoveryAction::NodeReboot, &mut rng)
                    .as_hours_f64()
            })
            .sum::<f64>()
            / 2000.0;
        let replace: f64 = (0..2000)
            .map(|_| {
                model
                    .sample(RecoveryAction::GpuReplacement, &mut rng)
                    .as_hours_f64()
            })
            .sum::<f64>()
            / 2000.0;
        assert!(
            replace > 10.0 * reboot,
            "replace {replace} vs reboot {reboot}"
        );
    }

    #[test]
    fn ledger_totals() {
        let mut ledger = DowntimeLedger::new(106);
        ledger.record(outage(0, 0, 60));
        ledger.record(outage(1, 10, 30));
        assert_eq!(ledger.outage_count(), 2);
        assert!((ledger.total_downtime_hours() - 1.5).abs() < 1e-9);
        assert!((ledger.mttr_hours().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_has_no_mttr_but_full_availability() {
        let ledger = DowntimeLedger::new(106);
        assert_eq!(ledger.mttr_hours(), None);
        assert!((ledger.availability(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn availability_matches_hand_computation() {
        let mut ledger = DowntimeLedger::new(10);
        // 5 node-hours lost out of 10 nodes * 100 h = 1000 node-hours.
        for i in 0..5 {
            ledger.record(outage(i, i as u64, 60));
        }
        assert!((ledger.availability(100.0) - 0.995).abs() < 1e-12);
        // 0.5% of a day = 7.2 minutes.
        assert!((ledger.downtime_minutes_per_node_day(100.0) - 7.2).abs() < 1e-9);
    }

    #[test]
    fn availability_from_mttf_formula() {
        let mut ledger = DowntimeLedger::new(1);
        ledger.record(outage(0, 0, 53)); // 0.883 h
                                         // Paper: MTTF 162 h, MTTR 0.88 h -> 99.46%.
        let a = ledger.availability_from_mttf(162.0).unwrap();
        assert!((a - 162.0 / 162.883).abs() < 1e-3, "{a}");
    }

    #[test]
    fn outage_end() {
        let o = outage(0, 1, 90);
        assert_eq!(o.end(), o.start + Duration::from_mins(90));
    }

    #[test]
    fn duration_hours_collects_fig2_series() {
        let mut ledger = DowntimeLedger::new(2);
        ledger.record(outage(0, 0, 30));
        ledger.record(outage(1, 5, 120));
        assert_eq!(ledger.duration_hours(), vec![0.5, 2.0]);
    }
}
