//! The SRE health-check response model.
//!
//! Delta's SREs run automatic node health checks that watch for the
//! critical XID errors of Table I and page/drain nodes when one fires
//! (§II-B). [`HealthPolicy`] captures that operational loop as data: which
//! error kinds trigger a response, how quickly the check notices, and what
//! recovery action follows.

use simtime::Duration;
use xid::{ErrorKind, RecoveryAction};

/// The planned response to a detected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepairPlan {
    /// Delay between the error and the health check noticing it.
    pub detect_delay: Duration,
    /// How long the node drains before rebooting (running jobs finish).
    pub drain_time: Duration,
    /// The recovery action to execute.
    pub action: RecoveryAction,
}

/// Which errors the site responds to, and how fast.
///
/// # Example
///
/// ```
/// use clustersim::HealthPolicy;
/// use xid::ErrorKind;
///
/// let policy = HealthPolicy::delta();
/// let plan = policy.response(ErrorKind::GspError).expect("GSP is critical");
/// assert!(plan.action.takes_node_down());
/// assert!(policy.response(ErrorKind::ContainedMemoryError).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    check_interval: Duration,
    mean_drain: Duration,
}

impl HealthPolicy {
    /// The Delta policy: health checks every 5 minutes, ~20 minutes of
    /// drain before a reboot (jobs are given bounded time to checkpoint,
    /// long-running ones are killed).
    pub fn delta() -> Self {
        HealthPolicy {
            check_interval: Duration::from_mins(5),
            mean_drain: Duration::from_mins(20),
        }
    }

    /// A custom policy.
    pub fn new(check_interval: Duration, mean_drain: Duration) -> Self {
        HealthPolicy {
            check_interval,
            mean_drain,
        }
    }

    /// How often health checks run; the mean detection delay is half this.
    pub fn check_interval(&self) -> Duration {
        self.check_interval
    }

    /// The planned response to `kind`, or `None` if the error needs no
    /// administrative action (it clears on its own or with the offending
    /// process).
    ///
    /// The mapping follows Table I's "Recovery Action" column via
    /// [`ErrorKind::recovery`]; anything at
    /// [`RecoveryAction::GpuReset`] or above triggers the drain-and-recover
    /// loop.
    pub fn response(&self, kind: ErrorKind) -> Option<RepairPlan> {
        let action = kind.recovery();
        if !action.requires_reset() {
            return None;
        }
        Some(RepairPlan {
            // Mean delay of a periodic check is half the interval.
            detect_delay: Duration::from_secs(self.check_interval.as_secs() / 2),
            drain_time: self.mean_drain,
            action,
        })
    }

    /// Whether `kind` triggers any automated response.
    pub fn is_critical(&self, kind: ErrorKind) -> bool {
        self.response(kind).is_some()
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy::delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsp_triggers_node_reboot_plan() {
        let policy = HealthPolicy::delta();
        let plan = policy.response(ErrorKind::GspError).unwrap();
        assert_eq!(plan.action, RecoveryAction::NodeReboot);
        assert!(plan.detect_delay <= policy.check_interval());
        assert!(plan.drain_time > Duration::ZERO);
    }

    #[test]
    fn benign_kinds_have_no_plan() {
        let policy = HealthPolicy::delta();
        for kind in [
            ErrorKind::MmuError,
            ErrorKind::PmuSpiError,
            ErrorKind::ContainedMemoryError,
            ErrorKind::GpuSoftware,
        ] {
            assert!(policy.response(kind).is_none(), "{kind}");
            assert!(!policy.is_critical(kind), "{kind}");
        }
    }

    #[test]
    fn reset_class_kinds_are_critical() {
        let policy = HealthPolicy::delta();
        for kind in [
            ErrorKind::DoubleBitError,
            ErrorKind::RowRemapEvent,
            ErrorKind::RowRemapFailure,
            ErrorKind::NvlinkError,
            ErrorKind::FallenOffBus,
            ErrorKind::UncontainedMemoryError,
            ErrorKind::GspError,
        ] {
            assert!(policy.is_critical(kind), "{kind}");
        }
    }

    #[test]
    fn custom_policy_changes_delays() {
        let policy = HealthPolicy::new(Duration::from_mins(60), Duration::from_mins(5));
        let plan = policy.response(ErrorKind::GspError).unwrap();
        assert_eq!(plan.detect_delay, Duration::from_mins(30));
        assert_eq!(plan.drain_time, Duration::from_mins(5));
    }

    #[test]
    fn default_is_delta() {
        assert_eq!(HealthPolicy::default(), HealthPolicy::delta());
    }
}
