//! Identifiers for nodes, GPUs and NVLink links, with Delta's hostname
//! conventions.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A compute node, identified by its cluster-wide index.
///
/// Delta's A100 nodes are named `gpub001`, `gpub002`, ... ; [`NodeId`]
/// renders and parses that convention so log hostnames and structured
/// records interconvert losslessly.
///
/// # Example
///
/// ```
/// use clustersim::NodeId;
///
/// let node = NodeId::new(41);
/// assert_eq!(node.hostname(), "gpub042"); // indices are 0-based, names 1-based
/// assert_eq!("gpub042".parse::<NodeId>()?, node);
/// # Ok::<(), clustersim::ParseNodeIdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a 0-based index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The 0-based index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// The Delta-style hostname (`gpub001` for index 0).
    pub fn hostname(self) -> String {
        format!("gpub{:03}", self.0 + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpub{:03}", self.0 + 1)
    }
}

impl FromStr for NodeId {
    type Err = ParseNodeIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("gpub")
            .ok_or_else(|| ParseNodeIdError::new(s, "missing 'gpub' prefix"))?;
        let n: u16 = digits
            .parse()
            .map_err(|_| ParseNodeIdError::new(s, "non-numeric suffix"))?;
        if n == 0 {
            return Err(ParseNodeIdError::new(s, "hostnames are 1-based"));
        }
        Ok(NodeId(n - 1))
    }
}

/// Error returned when a hostname cannot be parsed as a [`NodeId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNodeIdError {
    input: String,
    why: &'static str,
}

impl ParseNodeIdError {
    fn new(input: &str, why: &'static str) -> Self {
        ParseNodeIdError {
            input: input.to_owned(),
            why,
        }
    }
}

impl fmt::Display for ParseNodeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid node hostname {:?}: {}", self.input, self.why)
    }
}

impl Error for ParseNodeIdError {}

/// One physical GPU: a node plus a within-node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GpuId {
    /// The hosting node.
    pub node: NodeId,
    /// The 0-based GPU index within the node (0..4 or 0..8).
    pub index: u8,
}

impl GpuId {
    /// Creates a GPU id.
    pub const fn new(node: NodeId, index: u8) -> Self {
        GpuId { node, index }
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/gpu{}", self.node, self.index)
    }
}

/// One NVLink link: an unordered pair of GPUs on the same node.
///
/// Constructed in canonical order (`a < b`) so a link compares equal no
/// matter which direction it was observed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// The hosting node.
    pub node: NodeId,
    /// Lower GPU index of the pair.
    pub a: u8,
    /// Higher GPU index of the pair.
    pub b: u8,
}

impl LinkId {
    /// Creates a link id, normalising the endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`: a GPU has no link to itself. Use
    /// [`LinkId::try_new`] when the endpoints come from untrusted input.
    pub fn new(node: NodeId, a: u8, b: u8) -> Self {
        match LinkId::try_new(node, a, b) {
            Ok(link) => link,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a link id, normalising the endpoint order; fails instead of
    /// panicking on a self-loop. This is the constructor for endpoints
    /// parsed from logs or other external data.
    ///
    /// # Errors
    ///
    /// [`SelfLoopError`] if `a == b`.
    pub fn try_new(node: NodeId, a: u8, b: u8) -> Result<Self, SelfLoopError> {
        if a == b {
            return Err(SelfLoopError { node, endpoint: a });
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        Ok(LinkId { node, a, b })
    }

    /// The two endpoint GPUs.
    pub fn endpoints(self) -> (GpuId, GpuId) {
        (GpuId::new(self.node, self.a), GpuId::new(self.node, self.b))
    }

    /// Whether `gpu` is one of the endpoints.
    pub fn touches(self, gpu: GpuId) -> bool {
        gpu.node == self.node && (gpu.index == self.a || gpu.index == self.b)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/nvlink{}-{}", self.node, self.a, self.b)
    }
}

/// Error returned by [`LinkId::try_new`] when both endpoints are the same
/// GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfLoopError {
    /// The hosting node.
    pub node: NodeId,
    /// The repeated endpoint index.
    pub endpoint: u8,
}

impl fmt::Display for SelfLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NVLink endpoints must differ: {}/gpu{} linked to itself",
            self.node, self.endpoint
        )
    }
}

impl Error for SelfLoopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostname_roundtrip() {
        for idx in [0u16, 1, 41, 105, 999] {
            let node = NodeId::new(idx);
            assert_eq!(node.hostname().parse::<NodeId>().unwrap(), node);
        }
    }

    #[test]
    fn hostname_is_one_based() {
        assert_eq!(NodeId::new(0).hostname(), "gpub001");
        assert_eq!(NodeId::new(105).hostname(), "gpub106");
    }

    #[test]
    fn parse_rejects_bad_hostnames() {
        for bad in ["", "gpua001", "gpub", "gpubxyz", "gpub000", "cn001"] {
            assert!(bad.parse::<NodeId>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_error_mentions_input() {
        let err = "cn001".parse::<NodeId>().unwrap_err();
        assert!(err.to_string().contains("cn001"));
    }

    #[test]
    fn display_matches_hostname() {
        let n = NodeId::new(7);
        assert_eq!(n.to_string(), n.hostname());
    }

    #[test]
    fn gpu_display_is_informative() {
        let gpu = GpuId::new(NodeId::new(41), 3);
        assert_eq!(gpu.to_string(), "gpub042/gpu3");
    }

    #[test]
    fn link_normalises_order() {
        let n = NodeId::new(0);
        assert_eq!(LinkId::new(n, 3, 1), LinkId::new(n, 1, 3));
        let (a, b) = LinkId::new(n, 3, 1).endpoints();
        assert_eq!(a.index, 1);
        assert_eq!(b.index, 3);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn link_self_loop_panics() {
        LinkId::new(NodeId::new(0), 2, 2);
    }

    #[test]
    fn try_new_reports_self_loops() {
        let err = LinkId::try_new(NodeId::new(0), 2, 2).unwrap_err();
        assert_eq!(err.endpoint, 2);
        assert!(err.to_string().contains("gpub001/gpu2"), "{err}");
        assert_eq!(
            LinkId::try_new(NodeId::new(0), 3, 1),
            Ok(LinkId::new(NodeId::new(0), 1, 3))
        );
    }

    #[test]
    fn link_touches_its_endpoints_only() {
        let n = NodeId::new(5);
        let link = LinkId::new(n, 0, 2);
        assert!(link.touches(GpuId::new(n, 0)));
        assert!(link.touches(GpuId::new(n, 2)));
        assert!(!link.touches(GpuId::new(n, 1)));
        assert!(!link.touches(GpuId::new(NodeId::new(6), 0)));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(GpuId::new(NodeId::new(1), 3) < GpuId::new(NodeId::new(2), 0));
    }
}
