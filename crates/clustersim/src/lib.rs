//! A Delta-like GPU cluster model: topology, node/GPU state machines,
//! health-check policy, repair-time model and downtime accounting.
//!
//! The DSN'25 study measures a concrete machine — NCSA *Delta*: 106 A100
//! nodes (100 four-way + 6 eight-way, 448 GPUs total), NVLink within each
//! node, SRE-operated health checks that drain and reboot nodes on critical
//! XID errors. This crate models exactly those parts of the machine that
//! the study's availability and recovery findings depend on:
//!
//! * [`ClusterSpec`] / [`Cluster`] — the static topology (nodes, GPUs,
//!   per-node NVLink links), with [`ClusterSpec::delta`] preconfigured to
//!   the paper's machine.
//! * [`NodeState`] / [`GpuHealth`] — the dynamic state machines with
//!   validated transitions (`Up → Draining → Rebooting → Up`, GPU
//!   error/reset/replacement).
//! * [`HealthPolicy`] — the SRE response model: which error kinds trigger
//!   automatic drain/reboot and with what detection latency.
//! * [`RepairModel`] / [`DowntimeLedger`] — repair-duration sampling
//!   (calibrated to the paper's 0.88 h mean, Fig. 2) and per-node downtime
//!   intervals from which availability (the 99.5% headline) is computed.
//!
//! The crate is purely a model: the discrete-event loop that drives it
//! lives in `faultsim`.
//!
//! # Example
//!
//! ```
//! use clustersim::{Cluster, ClusterSpec};
//!
//! let cluster = Cluster::new(ClusterSpec::delta());
//! assert_eq!(cluster.node_count(), 106);
//! assert_eq!(cluster.gpu_count(), 448);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error_event;
mod health;
mod ids;
mod repair;
mod state;
mod topology;

pub use error_event::{GpuErrorEvent, IncidentId};
pub use health::{HealthPolicy, RepairPlan};
pub use ids::{GpuId, LinkId, NodeId, ParseNodeIdError, SelfLoopError};
pub use repair::{DowntimeLedger, Outage, RepairModel};
pub use state::{GpuHealth, InvalidTransition, NodeState};
pub use topology::{Cluster, ClusterSpec, Node};
