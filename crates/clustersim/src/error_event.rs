//! Ground-truth GPU error events, the shared vocabulary between the fault
//! injector (producer), the scheduler simulator (job-impact consumer) and
//! the analysis pipeline (validation consumer).

use crate::ids::GpuId;
use simtime::Timestamp;
use std::fmt;
use xid::ErrorKind;

/// Identifies a root-cause incident.
///
/// One physical fault can surface as several logged errors — an NVLink
/// fault logs XID 74 on every GPU sharing the link (the paper: 42% of
/// NVLink errors propagate to two or more GPUs), and one uncorrectable
/// memory fault produces an ECC error, a row-remap event and a containment
/// event in quick succession. Events from the same root cause share an
/// [`IncidentId`] so propagation statistics can be recovered exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IncidentId(pub u64);

impl fmt::Display for IncidentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "incident#{}", self.0)
    }
}

/// One ground-truth error on one GPU.
///
/// This is what *actually happened* in a simulated campaign, as opposed to
/// what the logs show (duplicated, interleaved, possibly truncated). The
/// analysis pipeline never sees these directly — it works from rendered log
/// text — but integration tests compare its output against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuErrorEvent {
    /// When the error occurred.
    pub time: Timestamp,
    /// The affected GPU.
    pub gpu: GpuId,
    /// The error kind.
    pub kind: ErrorKind,
    /// The root-cause incident this event belongs to.
    pub incident: IncidentId,
}

impl GpuErrorEvent {
    /// Creates an event.
    pub fn new(time: Timestamp, gpu: GpuId, kind: ErrorKind, incident: IncidentId) -> Self {
        GpuErrorEvent {
            time,
            gpu,
            kind,
            incident,
        }
    }
}

impl fmt::Display for GpuErrorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} ({})",
            self.time, self.gpu, self.kind, self.incident
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn display_is_informative() {
        let ev = GpuErrorEvent::new(
            Timestamp::from_unix(1_700_000_000),
            GpuId::new(NodeId::new(41), 2),
            ErrorKind::NvlinkError,
            IncidentId(7),
        );
        let s = ev.to_string();
        assert!(s.contains("gpub042"));
        assert!(s.contains("NVLink"));
        assert!(s.contains("incident#7"));
    }

    #[test]
    fn incident_grouping_by_equality() {
        let a = IncidentId(1);
        let b = IncidentId(1);
        let c = IncidentId(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
    }
}
