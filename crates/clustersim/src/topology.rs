//! Static cluster topology: nodes, GPUs and per-node NVLink links.

use crate::ids::{GpuId, LinkId, NodeId};

/// The shape of a GPU cluster: how many nodes of each flavour.
///
/// [`ClusterSpec::delta`] reproduces the paper's machine; custom shapes
/// support the scaling ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSpec {
    /// Number of 4-way A100 nodes.
    pub four_way_nodes: u16,
    /// Number of 8-way A100 nodes.
    pub eight_way_nodes: u16,
    /// Number of CPU-only nodes (carry jobs but no GPUs).
    pub cpu_nodes: u16,
}

impl ClusterSpec {
    /// NCSA Delta as studied: 100 four-way + 6 eight-way A100 nodes
    /// (448 GPUs) and 132 CPU-only nodes.
    pub const fn delta() -> Self {
        ClusterSpec {
            four_way_nodes: 100,
            eight_way_nodes: 6,
            cpu_nodes: 132,
        }
    }

    /// A small spec for fast tests: 3 four-way + 1 eight-way node.
    pub const fn tiny() -> Self {
        ClusterSpec {
            four_way_nodes: 3,
            eight_way_nodes: 1,
            cpu_nodes: 2,
        }
    }

    /// Total number of GPU nodes.
    pub const fn gpu_node_count(self) -> u16 {
        self.four_way_nodes + self.eight_way_nodes
    }

    /// Total number of GPUs.
    pub const fn gpu_count(self) -> u32 {
        self.four_way_nodes as u32 * 4 + self.eight_way_nodes as u32 * 8
    }
}

impl Default for ClusterSpec {
    /// Defaults to the paper's Delta configuration.
    fn default() -> Self {
        ClusterSpec::delta()
    }
}

/// One GPU node: identity plus GPU count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    id: NodeId,
    gpu_count: u8,
}

impl Node {
    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of GPUs on this node (4 or 8 on Delta).
    pub fn gpu_count(&self) -> u8 {
        self.gpu_count
    }

    /// The GPUs hosted by this node.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        let id = self.id;
        (0..self.gpu_count).map(move |i| GpuId::new(id, i))
    }

    /// The NVLink links on this node: every unordered GPU pair (A100 HGX
    /// baseboards are fully connected through NVLink/NVSwitch).
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        let id = self.id;
        let n = self.gpu_count;
        (0..n).flat_map(move |a| ((a + 1)..n).map(move |b| LinkId::new(id, a, b)))
    }
}

/// The full static topology built from a [`ClusterSpec`].
///
/// Nodes are numbered with the 8-way nodes last (Delta convention: the
/// larger nodes were added late in bring-up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
}

impl Cluster {
    /// Builds the topology.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut nodes = Vec::with_capacity(spec.gpu_node_count() as usize);
        for i in 0..spec.four_way_nodes {
            nodes.push(Node {
                id: NodeId::new(i),
                gpu_count: 4,
            });
        }
        for i in 0..spec.eight_way_nodes {
            nodes.push(Node {
                id: NodeId::new(spec.four_way_nodes + i),
                gpu_count: 8,
            });
        }
        Cluster { spec, nodes }
    }

    /// The spec this cluster was built from.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// Number of GPU nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.nodes.iter().map(|n| n.gpu_count as usize).sum()
    }

    /// The nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id, or `None` if out of range.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index() as usize)
    }

    /// Iterates over every GPU in the cluster, node-major.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.nodes.iter().flat_map(|n| n.gpus())
    }

    /// Iterates over every NVLink link in the cluster.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.nodes.iter().flat_map(|n| n.links())
    }

    /// Whether `gpu` exists in this topology.
    pub fn contains_gpu(&self, gpu: GpuId) -> bool {
        self.node(gpu.node)
            .is_some_and(|n| gpu.index < n.gpu_count())
    }

    /// GPU-hours of exposure over a window of `hours` wall-clock hours,
    /// assuming all GPUs present the whole window (the denominator of
    /// system-wide error-rate calculations).
    pub fn gpu_hours(&self, hours: f64) -> f64 {
        self.gpu_count() as f64 * hours
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::new(ClusterSpec::delta())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_spec_matches_paper() {
        let spec = ClusterSpec::delta();
        assert_eq!(spec.gpu_node_count(), 106);
        assert_eq!(spec.gpu_count(), 448);
        assert_eq!(spec.cpu_nodes, 132);
    }

    #[test]
    fn cluster_builds_all_nodes() {
        let c = Cluster::new(ClusterSpec::delta());
        assert_eq!(c.node_count(), 106);
        assert_eq!(c.gpu_count(), 448);
        assert_eq!(c.gpus().count(), 448);
        // First 100 nodes are 4-way, last 6 are 8-way.
        assert_eq!(c.nodes()[0].gpu_count(), 4);
        assert_eq!(c.nodes()[99].gpu_count(), 4);
        assert_eq!(c.nodes()[100].gpu_count(), 8);
        assert_eq!(c.nodes()[105].gpu_count(), 8);
    }

    #[test]
    fn node_lookup() {
        let c = Cluster::new(ClusterSpec::tiny());
        assert_eq!(c.node(NodeId::new(0)).unwrap().id(), NodeId::new(0));
        assert!(c.node(NodeId::new(99)).is_none());
    }

    #[test]
    fn contains_gpu_respects_node_width() {
        let c = Cluster::new(ClusterSpec::tiny());
        // Node 0 is 4-way.
        assert!(c.contains_gpu(GpuId::new(NodeId::new(0), 3)));
        assert!(!c.contains_gpu(GpuId::new(NodeId::new(0), 4)));
        // Node 3 is 8-way.
        assert!(c.contains_gpu(GpuId::new(NodeId::new(3), 7)));
        assert!(!c.contains_gpu(GpuId::new(NodeId::new(9), 0)));
    }

    #[test]
    fn link_counts_are_complete_graphs() {
        let c = Cluster::new(ClusterSpec::tiny());
        // 4-way: C(4,2)=6 links; 8-way: C(8,2)=28.
        assert_eq!(c.nodes()[0].links().count(), 6);
        assert_eq!(c.nodes()[3].links().count(), 28);
        assert_eq!(c.links().count(), 3 * 6 + 28);
    }

    #[test]
    fn links_stay_within_their_node() {
        let c = Cluster::new(ClusterSpec::tiny());
        for link in c.links() {
            let (a, b) = link.endpoints();
            assert_eq!(a.node, b.node);
            assert!(c.contains_gpu(a) && c.contains_gpu(b));
        }
    }

    #[test]
    fn gpu_hours_scale() {
        let c = Cluster::new(ClusterSpec::delta());
        // The paper's 12.5M GPU-hour figure: 448 GPUs over ~1170 days.
        let hours = 1170.0 * 24.0;
        let gpu_hours = c.gpu_hours(hours);
        assert!((gpu_hours - 12_579_840.0).abs() < 1.0);
    }

    #[test]
    fn default_is_delta() {
        assert_eq!(Cluster::default().spec(), ClusterSpec::delta());
    }
}
