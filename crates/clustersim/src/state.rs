//! Dynamic node and GPU state machines with validated transitions.

use std::error::Error;
use std::fmt;
use xid::ErrorKind;

/// The service state of a node.
///
/// ```text
///        drain          reboot           recover
///  Up ──────────► Draining ──────► Rebooting ──────► Up
///                                      │ fail
///                                      ▼
///                                    Down ──────────► Up (after replacement)
/// ```
///
/// Transitions outside this graph return [`InvalidTransition`], which makes
/// simulator bugs (double-draining a node, rebooting an up node) loud
/// instead of silently corrupting the downtime ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeState {
    /// In service, schedulable.
    #[default]
    Up,
    /// Unschedulable; running jobs are allowed to finish.
    Draining,
    /// Out of service, rebooting.
    Rebooting,
    /// Reboot failed; awaiting hardware replacement.
    Down,
}

impl NodeState {
    /// Whether new jobs may be scheduled onto the node.
    pub fn schedulable(self) -> bool {
        self == NodeState::Up
    }

    /// Whether the node counts as unavailable for the availability metric.
    ///
    /// Draining nodes still run their current jobs; the paper counts
    /// unavailability from the reboot onward (drain time shows up as
    /// capacity loss, not node downtime).
    pub fn is_down(self) -> bool {
        matches!(self, NodeState::Rebooting | NodeState::Down)
    }

    /// Begins draining.
    ///
    /// # Errors
    ///
    /// Only valid from [`NodeState::Up`].
    pub fn drain(self) -> Result<NodeState, InvalidTransition> {
        match self {
            NodeState::Up => Ok(NodeState::Draining),
            other => Err(InvalidTransition::node(other, "drain")),
        }
    }

    /// Begins the reboot once draining completes.
    ///
    /// # Errors
    ///
    /// Only valid from [`NodeState::Draining`].
    pub fn reboot(self) -> Result<NodeState, InvalidTransition> {
        match self {
            NodeState::Draining => Ok(NodeState::Rebooting),
            other => Err(InvalidTransition::node(other, "reboot")),
        }
    }

    /// Returns to service after a successful reboot or replacement.
    ///
    /// # Errors
    ///
    /// Only valid from [`NodeState::Rebooting`] or [`NodeState::Down`].
    pub fn recover(self) -> Result<NodeState, InvalidTransition> {
        match self {
            NodeState::Rebooting | NodeState::Down => Ok(NodeState::Up),
            other => Err(InvalidTransition::node(other, "recover")),
        }
    }

    /// Marks the node failed (post-reboot health check did not pass).
    ///
    /// # Errors
    ///
    /// Only valid from [`NodeState::Rebooting`].
    pub fn fail(self) -> Result<NodeState, InvalidTransition> {
        match self {
            NodeState::Rebooting => Ok(NodeState::Down),
            other => Err(InvalidTransition::node(other, "fail")),
        }
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::Up => "up",
            NodeState::Draining => "draining",
            NodeState::Rebooting => "rebooting",
            NodeState::Down => "down",
        };
        f.write_str(s)
    }
}

/// The health of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpuHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// In an error state caused by `kind`; may or may not still run work.
    ErrorState(ErrorKind),
    /// Flagged for physical replacement (repeated RRFs, persistent
    /// uncontained errors).
    AwaitingReplacement,
}

impl GpuHealth {
    /// Whether the GPU can host work.
    pub fn usable(self) -> bool {
        self == GpuHealth::Healthy
    }

    /// Records an error, escalating state but never de-escalating:
    /// a GPU awaiting replacement stays that way regardless of further
    /// errors.
    pub fn record_error(self, kind: ErrorKind) -> GpuHealth {
        match self {
            GpuHealth::AwaitingReplacement => GpuHealth::AwaitingReplacement,
            _ => GpuHealth::ErrorState(kind),
        }
    }

    /// Clears the error state after a successful reset/reboot.
    pub fn reset(self) -> GpuHealth {
        match self {
            GpuHealth::AwaitingReplacement => GpuHealth::AwaitingReplacement,
            _ => GpuHealth::Healthy,
        }
    }

    /// Escalates to replacement (SRE decision).
    pub fn condemn(self) -> GpuHealth {
        GpuHealth::AwaitingReplacement
    }

    /// Installs a fresh GPU.
    pub fn replace(self) -> GpuHealth {
        GpuHealth::Healthy
    }
}

impl fmt::Display for GpuHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuHealth::Healthy => f.write_str("healthy"),
            GpuHealth::ErrorState(kind) => write!(f, "error({kind})"),
            GpuHealth::AwaitingReplacement => f.write_str("awaiting-replacement"),
        }
    }
}

/// Error returned when a state machine transition is not legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTransition {
    from: String,
    attempted: &'static str,
}

impl InvalidTransition {
    fn node(from: NodeState, attempted: &'static str) -> Self {
        InvalidTransition {
            from: from.to_string(),
            attempted,
        }
    }
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} a node in state {}", self.attempted, self.from)
    }
}

impl Error for InvalidTransition {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_cycle() {
        let s = NodeState::Up;
        let s = s.drain().unwrap();
        assert_eq!(s, NodeState::Draining);
        assert!(!s.schedulable());
        assert!(!s.is_down()); // draining still runs jobs
        let s = s.reboot().unwrap();
        assert!(s.is_down());
        let s = s.recover().unwrap();
        assert_eq!(s, NodeState::Up);
        assert!(s.schedulable());
    }

    #[test]
    fn failed_reboot_goes_down_then_recovers() {
        let s = NodeState::Up.drain().unwrap().reboot().unwrap();
        let s = s.fail().unwrap();
        assert_eq!(s, NodeState::Down);
        assert!(s.is_down());
        assert_eq!(s.recover().unwrap(), NodeState::Up);
    }

    #[test]
    fn illegal_transitions_error() {
        assert!(NodeState::Up.reboot().is_err());
        assert!(NodeState::Up.recover().is_err());
        assert!(NodeState::Up.fail().is_err());
        assert!(NodeState::Draining.drain().is_err());
        assert!(NodeState::Rebooting.drain().is_err());
        assert!(NodeState::Down.fail().is_err());
    }

    #[test]
    fn error_message_names_state_and_action() {
        let err = NodeState::Down.drain().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("drain") && msg.contains("down"), "{msg}");
    }

    #[test]
    fn gpu_error_and_reset() {
        let g = GpuHealth::Healthy;
        assert!(g.usable());
        let g = g.record_error(ErrorKind::GspError);
        assert_eq!(g, GpuHealth::ErrorState(ErrorKind::GspError));
        assert!(!g.usable());
        assert_eq!(g.reset(), GpuHealth::Healthy);
    }

    #[test]
    fn condemned_gpu_is_sticky() {
        let g = GpuHealth::Healthy.condemn();
        assert_eq!(
            g.record_error(ErrorKind::MmuError),
            GpuHealth::AwaitingReplacement
        );
        assert_eq!(g.reset(), GpuHealth::AwaitingReplacement);
        assert_eq!(g.replace(), GpuHealth::Healthy);
    }

    #[test]
    fn newer_error_overwrites_older() {
        let g = GpuHealth::Healthy
            .record_error(ErrorKind::NvlinkError)
            .record_error(ErrorKind::GspError);
        assert_eq!(g, GpuHealth::ErrorState(ErrorKind::GspError));
    }

    #[test]
    fn defaults() {
        assert_eq!(NodeState::default(), NodeState::Up);
        assert_eq!(GpuHealth::default(), GpuHealth::Healthy);
    }

    #[test]
    fn displays() {
        assert_eq!(NodeState::Rebooting.to_string(), "rebooting");
        assert_eq!(GpuHealth::Healthy.to_string(), "healthy");
        assert!(GpuHealth::ErrorState(ErrorKind::GspError)
            .to_string()
            .contains("GSP"));
    }
}
