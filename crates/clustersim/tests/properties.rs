//! Property tests for the cluster model: topology identities, state
//! machine safety and downtime-ledger arithmetic — on the in-repo
//! `propcheck` harness.

use clustersim::{
    Cluster, ClusterSpec, DowntimeLedger, GpuHealth, LinkId, NodeId, NodeState, Outage,
};
use propcheck::{run, Gen};
use simtime::{Duration, Timestamp};
use xid::{ErrorKind, RecoveryAction};

fn arbitrary_spec(g: &mut Gen) -> ClusterSpec {
    ClusterSpec {
        four_way_nodes: g.u16_in(1, 64),
        eight_way_nodes: g.u16_in(0, 16),
        cpu_nodes: g.u16_in(0, 64),
    }
}

/// Topology identities hold for arbitrary cluster shapes.
#[test]
fn topology_identities() {
    run("topology_identities", 64, |g| {
        let spec = arbitrary_spec(g);
        let cluster = Cluster::new(spec);
        assert_eq!(cluster.node_count() as u16, spec.gpu_node_count());
        assert_eq!(cluster.gpu_count() as u32, spec.gpu_count());
        assert_eq!(cluster.gpus().count(), cluster.gpu_count());
        // Links: C(4,2)=6 per 4-way node, C(8,2)=28 per 8-way node.
        let expected_links = spec.four_way_nodes as usize * 6 + spec.eight_way_nodes as usize * 28;
        assert_eq!(cluster.links().count(), expected_links);
        // Every GPU id the topology yields is contained by the topology.
        for gpu in cluster.gpus() {
            assert!(cluster.contains_gpu(gpu));
        }
        // GPU-hours scale linearly.
        let hours = 123.0;
        assert!((cluster.gpu_hours(hours) - spec.gpu_count() as f64 * hours).abs() < 1e-9);
    });
}

/// Node ids round-trip through hostnames for the whole fleet.
#[test]
fn hostnames_roundtrip() {
    run("hostnames_roundtrip", 256, |g| {
        let node = NodeId::new(g.u16_in(0, 2000));
        assert_eq!(node.hostname().parse::<NodeId>().unwrap(), node);
    });
}

/// Links normalise endpoint order regardless of construction order.
#[test]
fn links_are_unordered_pairs() {
    run("links_are_unordered_pairs", 256, |g| {
        let node = g.u16_in(0, 200);
        let a = g.u8_in(0, 8);
        let b = g.u8_in(0, 8);
        if a == b {
            return;
        }
        let n = NodeId::new(node);
        assert_eq!(LinkId::new(n, a, b), LinkId::new(n, b, a));
        let (lo, hi) = LinkId::new(n, a, b).endpoints();
        assert!(lo.index < hi.index);
    });
}

/// Random walks over the node state machine never reach an illegal
/// state: every accepted transition comes from the legal graph, every
/// rejected one leaves the state untouched.
#[test]
fn node_state_machine_is_safe() {
    run("node_state_machine_is_safe", 128, |g| {
        let ops = g.vec_with(0, 64, |g| g.u8_in(0, 4));
        let mut state = NodeState::Up;
        for op in ops {
            let attempt = match op {
                0 => state.drain(),
                1 => state.reboot(),
                2 => state.recover(),
                _ => state.fail(),
            };
            match attempt {
                Ok(next) => {
                    let legal = matches!(
                        (state, next),
                        (NodeState::Up, NodeState::Draining)
                            | (NodeState::Draining, NodeState::Rebooting)
                            | (NodeState::Rebooting, NodeState::Up)
                            | (NodeState::Rebooting, NodeState::Down)
                            | (NodeState::Down, NodeState::Up)
                    );
                    assert!(legal, "illegal {state:?} -> {next:?}");
                    state = next;
                }
                Err(_) => { /* state unchanged by contract */ }
            }
        }
    });
}

/// GPU health transitions: condemned is absorbing except for replace.
#[test]
fn gpu_health_condemned_is_sticky() {
    run("gpu_health_condemned_is_sticky", 128, |g| {
        let ops = g.vec_with(0, 32, |g| g.u8_in(0, 3));
        let mut health = GpuHealth::Healthy.condemn();
        for op in ops {
            health = match op {
                0 => health.record_error(ErrorKind::GspError),
                1 => health.reset(),
                _ => health, // no-op
            };
            assert_eq!(health, GpuHealth::AwaitingReplacement);
        }
        assert_eq!(health.replace(), GpuHealth::Healthy);
    });
}

/// Ledger arithmetic: availability and MTTR agree with hand sums for
/// arbitrary outage sets.
#[test]
fn ledger_arithmetic() {
    run("ledger_arithmetic", 128, |g| {
        let mins = g.vec_with(0, 50, |g| g.u64_in(1, 600));
        let mut ledger = DowntimeLedger::new(106);
        for (i, &m) in mins.iter().enumerate() {
            ledger.record(Outage {
                node: NodeId::new((i % 106) as u16),
                start: Timestamp::from_unix(i as u64 * 10_000),
                duration: Duration::from_mins(m),
                action: RecoveryAction::NodeReboot,
            });
        }
        let total_hours: f64 = mins.iter().map(|&m| m as f64 / 60.0).sum();
        assert!((ledger.total_downtime_hours() - total_hours).abs() < 1e-9);
        match ledger.mttr_hours() {
            Some(mttr) => {
                assert!(!mins.is_empty());
                assert!((mttr - total_hours / mins.len() as f64).abs() < 1e-9);
            }
            None => assert!(mins.is_empty()),
        }
        let window = 10_000.0;
        let avail = ledger.availability(window);
        assert!((0.0..=1.0).contains(&avail));
        assert!((avail - (1.0 - total_hours / (106.0 * window))).abs() < 1e-9);
    });
}
