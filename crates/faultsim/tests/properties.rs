//! Property tests for the fault-injection substrate: hazard processes,
//! the event queue, calibration identities and campaign invariants.

use faultsim::hazard::PiecewiseHazard;
use faultsim::rates::{CalibratedRates, TableOneCounts};
use faultsim::{Campaign, EventQueue, FaultConfig};
use proptest::prelude::*;
use simrng::Rng;
use simtime::{StudyPeriods, Timestamp};

proptest! {
    /// Hazard firings are strictly increasing and inside the window for
    /// arbitrary rate pairs.
    #[test]
    fn hazard_fires_ordered_in_window(
        seed in any::<u64>(),
        pre_rate in 0.0f64..0.1,
        op_rate in 0.0f64..0.1,
    ) {
        let periods = StudyPeriods::delta_scaled(0.05);
        let hazard = PiecewiseHazard::new(periods, pre_rate, op_rate);
        let mut rng = Rng::seed_from(seed);
        let mut t = periods.pre_op.start;
        for _ in 0..200 {
            match hazard.next_fire(t, &mut rng) {
                Some(fire) => {
                    prop_assert!(fire > t);
                    prop_assert!(periods.period_of(fire).is_some());
                    t = fire;
                }
                None => break,
            }
        }
    }

    /// The expected-events identity holds for any rates.
    #[test]
    fn hazard_expected_events_identity(pre in 0.0f64..10.0, op in 0.0f64..10.0) {
        let periods = StudyPeriods::delta();
        let hazard = PiecewiseHazard::new(periods, pre, op);
        let expected = pre * periods.pre_op.hours() + op * periods.op.hours();
        prop_assert!((hazard.expected_events() - expected).abs() < 1e-6);
    }

    /// The event queue pops every pushed event in time order.
    #[test]
    fn event_queue_is_a_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(Timestamp::from_unix(t), i);
        }
        prop_assert_eq!(queue.len(), times.len());
        let mut popped = Vec::new();
        while let Some((t, _)) = queue.pop() {
            popped.push(t);
        }
        prop_assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    /// Calibration inverts exactly: rates × exposure × divisors recover
    /// the table counts for arbitrary (positive) counts.
    #[test]
    fn calibration_roundtrip(
        mmu in 100u64..20_000,
        gsp in 14u64..10_000,
        nvlink in 25u64..10_000,
        pmu in 1u64..500,
    ) {
        let counts = TableOneCounts {
            mmu: (mmu, mmu),
            gsp: (gsp, gsp),
            nvlink: (nvlink, nvlink),
            pmu: (pmu, pmu),
            ..TableOneCounts::paper()
        };
        let periods = StudyPeriods::delta();
        let rates = CalibratedRates::from_counts(&counts, &periods, 448, 106);
        let op_gpu_hours = periods.op.hours() * 448.0;
        let op_node_hours = periods.op.hours() * 106.0;
        // GSP: incidents * cycles == count.
        let gsp_back = rates.gsp_per_gpu_hour.1 * op_gpu_hours * faultsim::rates::GSP_CYCLES_MEAN;
        prop_assert!((gsp_back - gsp as f64).abs() < 1e-6 * gsp as f64 + 1e-6);
        // NVLink: incidents * cycles * fanout == count.
        let nvl_back = rates.nvlink_incidents_per_node_hour.1
            * op_node_hours
            * faultsim::rates::NVLINK_CYCLES_MEAN
            * faultsim::rates::NVLINK_EXPECTED_FANOUT;
        prop_assert!((nvl_back - nvlink as f64).abs() < 1e-6 * nvlink as f64 + 1e-6);
        // MMU: incidents * burst + PMU followers == count (when positive).
        let mmu_back = rates.mmu_per_gpu_hour.1
            * op_gpu_hours
            * (1.0 + faultsim::rates::MMU_EXTRA_MEAN)
            + pmu as f64 * 2.4;
        if rates.mmu_per_gpu_hour.1 > 0.0 {
            prop_assert!((mmu_back - mmu as f64).abs() < 1e-6 * mmu as f64 + 1e-6);
        }
    }
}

proptest! {
    // Campaigns are slow; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded tiny campaign satisfies the structural invariants:
    /// sorted ground truth, in-window events, studied kinds only,
    /// per-cycle outages within holds.
    #[test]
    fn campaign_invariants(seed in any::<u64>()) {
        let out = Campaign::new(FaultConfig::tiny(seed)).run();
        let periods = out.config.periods;
        for pair in out.ground_truth.windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        for ev in &out.ground_truth {
            prop_assert!(ev.kind.is_studied());
            prop_assert!(periods.period_of(ev.time).is_some());
        }
        // Holds are disjoint per node.
        let mut by_node: std::collections::BTreeMap<_, Vec<_>> = Default::default();
        for h in &out.holds {
            by_node.entry(h.node).or_default().push(h);
        }
        for (_, mut hs) in by_node {
            hs.sort_by_key(|h| h.start);
            for pair in hs.windows(2) {
                prop_assert!(pair[0].end() < pair[1].start);
            }
        }
        // Determinism.
        let again = Campaign::new(FaultConfig::tiny(seed)).run();
        prop_assert_eq!(out.ground_truth, again.ground_truth);
    }
}
