//! Property tests for the fault-injection substrate: hazard processes,
//! the event queue, calibration identities and campaign invariants — on
//! the in-repo `propcheck` harness.

use faultsim::hazard::PiecewiseHazard;
use faultsim::rates::{CalibratedRates, TableOneCounts};
use faultsim::{Campaign, EventQueue, FaultConfig};
use propcheck::run;
use simrng::Rng;
use simtime::{StudyPeriods, Timestamp};

/// Hazard firings are strictly increasing and inside the window for
/// arbitrary rate pairs.
#[test]
fn hazard_fires_ordered_in_window() {
    run("hazard_fires_ordered_in_window", 64, |g| {
        let seed = g.u64();
        let pre_rate = g.f64_in(0.0, 0.1);
        let op_rate = g.f64_in(0.0, 0.1);
        let periods = StudyPeriods::delta_scaled(0.05);
        let hazard = PiecewiseHazard::new(periods, pre_rate, op_rate);
        let mut rng = Rng::seed_from(seed);
        let mut t = periods.pre_op.start;
        for _ in 0..200 {
            match hazard.next_fire(t, &mut rng) {
                Some(fire) => {
                    assert!(fire > t);
                    assert!(periods.period_of(fire).is_some());
                    t = fire;
                }
                None => break,
            }
        }
    });
}

/// The expected-events identity holds for any rates.
#[test]
fn hazard_expected_events_identity() {
    run("hazard_expected_events_identity", 128, |g| {
        let pre = g.f64_in(0.0, 10.0);
        let op = g.f64_in(0.0, 10.0);
        let periods = StudyPeriods::delta();
        let hazard = PiecewiseHazard::new(periods, pre, op);
        let expected = pre * periods.pre_op.hours() + op * periods.op.hours();
        assert!((hazard.expected_events() - expected).abs() < 1e-6);
    });
}

/// The event queue pops every pushed event in time order.
#[test]
fn event_queue_is_a_priority_queue() {
    run("event_queue_is_a_priority_queue", 64, |g| {
        let times = g.vec_with(0, 200, |g| g.u64_below(1_000_000));
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(Timestamp::from_unix(t), i);
        }
        assert_eq!(queue.len(), times.len());
        let mut popped = Vec::new();
        while let Some((t, _)) = queue.pop() {
            popped.push(t);
        }
        assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    });
}

/// Calibration inverts exactly: rates × exposure × divisors recover the
/// table counts for arbitrary (positive) counts.
#[test]
fn calibration_roundtrip() {
    run("calibration_roundtrip", 128, |g| {
        let mmu = g.u64_in(100, 20_000);
        let gsp = g.u64_in(14, 10_000);
        let nvlink = g.u64_in(25, 10_000);
        let pmu = g.u64_in(1, 500);
        let counts = TableOneCounts {
            mmu: (mmu, mmu),
            gsp: (gsp, gsp),
            nvlink: (nvlink, nvlink),
            pmu: (pmu, pmu),
            ..TableOneCounts::paper()
        };
        let periods = StudyPeriods::delta();
        let rates = CalibratedRates::from_counts(&counts, &periods, 448, 106);
        let op_gpu_hours = periods.op.hours() * 448.0;
        let op_node_hours = periods.op.hours() * 106.0;
        // GSP: incidents * cycles == count.
        let gsp_back = rates.gsp_per_gpu_hour.1 * op_gpu_hours * faultsim::rates::GSP_CYCLES_MEAN;
        assert!((gsp_back - gsp as f64).abs() < 1e-6 * gsp as f64 + 1e-6);
        // NVLink: incidents * cycles * fanout == count.
        let nvl_back = rates.nvlink_incidents_per_node_hour.1
            * op_node_hours
            * faultsim::rates::NVLINK_CYCLES_MEAN
            * faultsim::rates::NVLINK_EXPECTED_FANOUT;
        assert!((nvl_back - nvlink as f64).abs() < 1e-6 * nvlink as f64 + 1e-6);
        // MMU: incidents * burst + PMU followers == count (when positive).
        let mmu_back =
            rates.mmu_per_gpu_hour.1 * op_gpu_hours * (1.0 + faultsim::rates::MMU_EXTRA_MEAN)
                + pmu as f64 * 2.4;
        if rates.mmu_per_gpu_hour.1 > 0.0 {
            assert!((mmu_back - mmu as f64).abs() < 1e-6 * mmu as f64 + 1e-6);
        }
    });
}

/// Any seeded tiny campaign satisfies the structural invariants: sorted
/// ground truth, in-window events, studied kinds only, disjoint holds,
/// and per-seed determinism. Campaigns are slow; keep the case count low.
#[test]
fn campaign_invariants() {
    run("campaign_invariants", 8, |g| {
        let seed = g.u64();
        let out = Campaign::new(FaultConfig::tiny(seed)).run();
        let periods = out.config.periods;
        for pair in out.ground_truth.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for ev in &out.ground_truth {
            assert!(ev.kind.is_studied());
            assert!(periods.period_of(ev.time).is_some());
        }
        // Holds are disjoint per node.
        let mut by_node: std::collections::BTreeMap<_, Vec<_>> = Default::default();
        for h in &out.holds {
            by_node.entry(h.node).or_default().push(h);
        }
        for (_, mut hs) in by_node {
            hs.sort_by_key(|h| h.start);
            for pair in hs.windows(2) {
                assert!(pair[0].end() < pair[1].start);
            }
        }
        // Determinism.
        let again = Campaign::new(FaultConfig::tiny(seed)).run();
        assert_eq!(out.ground_truth, again.ground_truth);
    });
}
