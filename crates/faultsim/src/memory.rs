//! The uncorrectable-memory-error chain (§II-B, §IV(vi)).
//!
//! One root uncorrectable fault (a DBE or two SBEs at one address) fans out
//! into the sub-events the driver actually logs:
//!
//! ```text
//! uncorrectable fault
//!   ├─ sometimes an explicit XID 48 DBE record
//!   ├─ a row-remap attempt → XID 63 (RRE) on success, XID 64 (RRF) when
//!   │  the bank's spare rows are exhausted
//!   └─ a containment attempt → XID 94 (contained) or XID 95 (uncontained)
//! ```
//!
//! Outcome probabilities are calibrated per period from Table I by
//! [`crate::rates::CalibratedRates`]; spare-row exhaustion is additionally
//! tracked per GPU (A100s have 512 remappable rows) so that a long-lived
//! campaign exhausts spares the way real silicon does.

use crate::rates::CalibratedRates;
use simrng::Rng;
use simtime::Phase;
use xid::ErrorKind;

/// Rows available for remapping on an A100 (per the NVIDIA memory error
/// management documentation).
pub const A100_SPARE_ROWS: u32 = 512;

/// What one uncorrectable memory fault turned into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryChainOutcome {
    /// The logged sub-events, in emission order.
    pub events: Vec<ErrorKind>,
    /// Whether the fault requires a GPU reset (remap failure or
    /// uncontained error).
    pub needs_reset: bool,
}

/// Per-GPU spare-row accounting plus the outcome sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryChain {
    remapped_rows: u32,
    spare_rows: u32,
}

impl MemoryChain {
    /// A fresh A100 memory subsystem.
    pub fn new() -> Self {
        MemoryChain {
            remapped_rows: 0,
            spare_rows: A100_SPARE_ROWS,
        }
    }

    /// Rows remapped so far.
    pub fn remapped_rows(&self) -> u32 {
        self.remapped_rows
    }

    /// Whether spares remain.
    pub fn has_spares(&self) -> bool {
        self.remapped_rows < self.spare_rows
    }

    /// Resets the accounting (GPU replacement).
    pub fn replace(&mut self) {
        self.remapped_rows = 0;
    }

    /// Plays out one uncorrectable fault at calibrated probabilities for
    /// `phase`.
    pub fn fault(
        &mut self,
        rates: &CalibratedRates,
        phase: Phase,
        rng: &mut Rng,
    ) -> MemoryChainOutcome {
        let pick = |pair: (f64, f64)| CalibratedRates::phase_of(pair, phase);
        let mut events = Vec::with_capacity(3);
        let mut needs_reset = false;

        // The driver sometimes logs the raw DBE itself (rare: 1 of 34 in
        // the operational period).
        if rng.bool_with(pick(rates.dbe_log_prob)) {
            events.push(ErrorKind::DoubleBitError);
        }

        // Row-remap attempt: calibrated failure probability, *and* a hard
        // failure once the physical spares run out.
        let remap_fails = !self.has_spares() || rng.bool_with(pick(rates.remap_failure_prob));
        if remap_fails {
            events.push(ErrorKind::RowRemapFailure);
            needs_reset = true;
        } else {
            self.remapped_rows += 1;
            events.push(ErrorKind::RowRemapEvent);
        }

        // Containment attempt: contained, uncontained, or silent
        // (mitigated without a containment record).
        let contained_p = pick(rates.contained_prob);
        let uncontained_p = pick(rates.uncontained_prob);
        let roll = rng.f64();
        if roll < contained_p {
            events.push(ErrorKind::ContainedMemoryError);
        } else if roll < contained_p + uncontained_p {
            events.push(ErrorKind::UncontainedMemoryError);
            needs_reset = true;
        }

        MemoryChainOutcome {
            events,
            needs_reset,
        }
    }
}

impl Default for MemoryChain {
    fn default() -> Self {
        MemoryChain::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> CalibratedRates {
        CalibratedRates::delta()
    }

    #[test]
    fn every_fault_logs_a_remap_outcome() {
        let mut chain = MemoryChain::new();
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let out = chain.fault(&rates(), Phase::Op, &mut rng);
            let has_remap = out
                .events
                .iter()
                .any(|k| matches!(k, ErrorKind::RowRemapEvent | ErrorKind::RowRemapFailure));
            assert!(has_remap, "{:?}", out.events);
        }
    }

    #[test]
    fn op_period_has_no_remap_failures() {
        // Table I: RRF count 0 in the operational period.
        let mut chain = MemoryChain::new();
        let mut rng = Rng::seed_from(2);
        for _ in 0..450 {
            let out = chain.fault(&rates(), Phase::Op, &mut rng);
            assert!(!out.events.contains(&ErrorKind::RowRemapFailure));
        }
    }

    #[test]
    fn pre_op_remap_failures_near_calibration() {
        // Pre-op failure probability is 15/46 ≈ 0.33.
        let mut rng = Rng::seed_from(3);
        let mut failures = 0;
        let n = 20_000;
        for _ in 0..n {
            // Fresh chain each time so spare exhaustion doesn't interfere.
            let mut chain = MemoryChain::new();
            let out = chain.fault(&rates(), Phase::PreOp, &mut rng);
            if out.events.contains(&ErrorKind::RowRemapFailure) {
                failures += 1;
            }
        }
        let frac = failures as f64 / n as f64;
        assert!((frac - 15.0 / 46.0).abs() < 0.02, "failure frac {frac}");
    }

    #[test]
    fn spare_exhaustion_forces_failures() {
        let mut chain = MemoryChain::new();
        let mut rng = Rng::seed_from(4);
        // Exhaust all 512 spares.
        let mut remaps = 0;
        while chain.has_spares() {
            let out = chain.fault(&rates(), Phase::Op, &mut rng);
            if out.events.contains(&ErrorKind::RowRemapEvent) {
                remaps += 1;
            }
        }
        assert_eq!(remaps, A100_SPARE_ROWS);
        // Every further fault must fail remapping and need a reset.
        let out = chain.fault(&rates(), Phase::Op, &mut rng);
        assert!(out.events.contains(&ErrorKind::RowRemapFailure));
        assert!(out.needs_reset);
        // Replacement restores spares.
        chain.replace();
        assert!(chain.has_spares());
        assert_eq!(chain.remapped_rows(), 0);
    }

    #[test]
    fn containment_outcomes_match_op_calibration() {
        // Op: contained 13/34 ≈ 0.38, uncontained 11/34 ≈ 0.32.
        let mut rng = Rng::seed_from(5);
        let (mut contained, mut uncontained) = (0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            let mut chain = MemoryChain::new();
            let out = chain.fault(&rates(), Phase::Op, &mut rng);
            if out.events.contains(&ErrorKind::ContainedMemoryError) {
                contained += 1;
            }
            if out.events.contains(&ErrorKind::UncontainedMemoryError) {
                uncontained += 1;
            }
        }
        let cf = contained as f64 / n as f64;
        let uf = uncontained as f64 / n as f64;
        assert!((cf - 13.0 / 34.0).abs() < 0.02, "contained {cf}");
        assert!((uf - 11.0 / 34.0).abs() < 0.02, "uncontained {uf}");
    }

    #[test]
    fn uncontained_needs_reset() {
        let mut rng = Rng::seed_from(6);
        let mut seen = false;
        for _ in 0..2000 {
            let mut chain = MemoryChain::new();
            let out = chain.fault(&rates(), Phase::Op, &mut rng);
            if out.events.contains(&ErrorKind::UncontainedMemoryError) {
                assert!(out.needs_reset);
                seen = true;
            }
        }
        assert!(seen, "never sampled an uncontained outcome");
    }

    #[test]
    fn dbe_logs_are_rare_in_op() {
        let mut rng = Rng::seed_from(7);
        let mut dbe = 0;
        let n = 50_000;
        for _ in 0..n {
            let mut chain = MemoryChain::new();
            if chain
                .fault(&rates(), Phase::Op, &mut rng)
                .events
                .contains(&ErrorKind::DoubleBitError)
            {
                dbe += 1;
            }
        }
        let frac = dbe as f64 / n as f64;
        assert!((frac - 1.0 / 34.0).abs() < 0.01, "dbe frac {frac}");
    }
}
