//! The discrete-event campaign engine.
//!
//! [`Campaign::run`] drives every hazard process, propagation chain, the
//! storm episode and the health-check/repair loop over the configured
//! calendar, producing ground truth ([`clustersim::GpuErrorEvent`]s), raw
//! log text ([`hpclog::archive::Archive`]), the outage ledger
//! ([`clustersim::DowntimeLedger`]) and scheduler-facing hold windows, in
//! one deterministic pass.
//!
//! # Incidents, cycles, holds
//!
//! Error kinds whose recovery needs a reset *flap*: the health check drains
//! the node, the reboot fails to clear the fault, the error re-fires, and
//! the cycle repeats until SREs resolve it. One root **incident** therefore
//! produces a chain of **cycles**, each contributing one logged error and
//! one reboot ([`clustersim::Outage`] in the ledger — this is what makes
//! Table I's 3,857 GSP errors consistent with §V-C's thousands of repair
//! episodes and with Table II's few affected jobs). The node is
//! unschedulable for the whole episode; that window is exported as a *hold*
//! for the scheduler simulator, which kills no jobs (drains let jobs
//! finish, §V-C) but blocks new placements.

use crate::config::FaultConfig;
use crate::duplication::Duplicator;
use crate::hazard::PiecewiseHazard;
use crate::memory::MemoryChain;
use crate::nvlink::NvlinkFanout;
use crate::queue::EventQueue;
use crate::rates::CalibratedRates;
use clustersim::{Cluster, DowntimeLedger, GpuErrorEvent, GpuId, IncidentId, NodeId, Outage};
use hpclog::archive::Archive;
use hpclog::chaos::{ChaosInjector, ChaosStats};
use hpclog::{PciAddr, XidEvent};
use simrng::dist::{Exponential, Poisson, Sample};
use simrng::Rng;
use simtime::{Duration, Phase, Timestamp};
use std::collections::BTreeMap;
use xid::{ErrorKind, RecoveryAction, XidCode};

/// Which hazard process a [`Proc`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcKind {
    Mmu,
    Gsp,
    Pmu,
    Fallen,
    Memory,
    Nvlink,
}

/// One hazard process bound to a GPU (or, for NVLink, a node).
#[derive(Debug, Clone)]
struct Proc {
    kind: ProcKind,
    node: NodeId,
    gpu: Option<GpuId>,
    hazard: PiecewiseHazard,
    rng: Rng,
}

/// Scheduled simulation events.
#[derive(Debug, Clone)]
enum Ev {
    /// A hazard process fires (a new incident begins).
    Fire(usize),
    /// A single error lands on a GPU (episode cycle, burst member, chain
    /// sub-event or propagated follower).
    Error {
        gpu: GpuId,
        kind: ErrorKind,
        incident: IncidentId,
    },
    /// The storm GPU emits its next error.
    StormTick,
}

/// Aggregate counters of a finished campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    counts: BTreeMap<ErrorKind, (u64, u64)>,
    incidents: u64,
    raw_lines: u64,
    noise_lines: u64,
    replacements: u64,
}

impl CampaignStats {
    /// Ground-truth error count for `(kind, phase)`.
    pub fn count(&self, kind: ErrorKind, phase: Phase) -> u64 {
        let pair = self.counts.get(&kind).copied().unwrap_or((0, 0));
        match phase {
            Phase::PreOp => pair.0,
            Phase::Op => pair.1,
        }
    }

    /// Total ground-truth errors in a phase.
    pub fn total(&self, phase: Phase) -> u64 {
        ErrorKind::STUDIED
            .iter()
            .map(|&k| self.count(k, phase))
            .sum()
    }

    /// Number of distinct root incidents.
    pub fn incidents(&self) -> u64 {
        self.incidents
    }

    /// Raw error log lines emitted (including duplicates, excluding
    /// background noise).
    pub fn raw_lines(&self) -> u64 {
        self.raw_lines
    }

    /// Benign background lines written into the archive.
    pub fn noise_lines(&self) -> u64 {
        self.noise_lines
    }

    /// GPUs physically replaced under the repeated-RRF rule.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }
}

/// Everything a campaign produces.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Ground-truth errors, in time order.
    pub ground_truth: Vec<GpuErrorEvent>,
    /// The rendered per-day log archive (empty when `emit_logs` is off).
    pub archive: Archive,
    /// Completed node reboots (one per episode cycle): the availability and
    /// Fig. 2 data source.
    pub ledger: DowntimeLedger,
    /// Scheduler-facing unschedulable windows, one per *episode*, merged
    /// per node. Feed these to `slurmsim` as its outage list.
    pub holds: Vec<Outage>,
    /// Aggregate counters.
    pub stats: CampaignStats,
    /// The configuration the campaign ran with.
    pub config: FaultConfig,
}

impl CampaignOutput {
    /// Ground-truth events within a phase.
    pub fn events_in(&self, phase: Phase) -> impl Iterator<Item = &GpuErrorEvent> {
        let periods = self.config.periods;
        self.ground_truth
            .iter()
            .filter(move |e| periods.period_of(e.time) == Some(phase))
    }

    /// Renders the archive to the syslog byte stream the analysis pipeline
    /// ingests. With `config.chaos` set, the stream is fed through a
    /// [`ChaosInjector`] on the way out — corrupted exactly as the seeded
    /// configuration dictates — and the injector's [`ChaosStats`] are
    /// returned so a test can check the quarantine ledger accounts for
    /// every injected defect. Without chaos the stats are `None` and the
    /// bytes are the clean rendering.
    pub fn render_log(&self) -> (Vec<u8>, Option<ChaosStats>) {
        match self.config.chaos {
            Some(chaos) => {
                let mut injector = ChaosInjector::new(chaos);
                let bytes = injector.corrupt_archive(&self.archive);
                (bytes, Some(injector.stats()))
            }
            None => {
                let mut out = Vec::new();
                for line in self.archive.iter() {
                    out.extend_from_slice(line.to_string().as_bytes());
                    out.push(b'\n');
                }
                (out, None)
            }
        }
    }
}

/// A configured, runnable fault-injection campaign.
///
/// See the [crate docs](crate) for the model description.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: FaultConfig,
}

impl Campaign {
    /// Creates a campaign from a configuration.
    pub fn new(config: FaultConfig) -> Self {
        Campaign { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Runs the campaign to completion.
    pub fn run(&self) -> CampaignOutput {
        let mut span = obs::span("stage_campaign");
        let output = Engine::new(self.config.clone()).run();
        span.add_items(output.stats.raw_lines() + output.stats.noise_lines());
        record_campaign_metrics(&output.stats);
        output
    }
}

/// Publishes a finished campaign's ground-truth tallies — per hazard
/// class and phase — to the global metrics registry. Write-only.
fn record_campaign_metrics(stats: &CampaignStats) {
    if !obs::is_enabled() {
        return;
    }
    for phase in [Phase::PreOp, Phase::Op] {
        let phase_label = match phase {
            Phase::PreOp => "pre_op",
            Phase::Op => "op",
        };
        for kind in ErrorKind::STUDIED {
            let count = stats.count(kind, phase);
            if count > 0 {
                obs::counter(
                    "faultsim_events_total",
                    &[("kind", kind.abbreviation()), ("phase", phase_label)],
                )
                .add(count);
            }
        }
    }
    obs::counter("faultsim_incidents_total", &[]).add(stats.incidents());
    obs::counter("faultsim_raw_lines_total", &[]).add(stats.raw_lines());
    obs::counter("faultsim_noise_lines_total", &[]).add(stats.noise_lines());
    obs::counter("faultsim_replacements_total", &[]).add(stats.replacements());
}

/// Internal mutable engine state.
struct Engine {
    config: FaultConfig,
    cluster: Cluster,
    procs: Vec<Proc>,
    queue: EventQueue<Ev>,
    memory_chains: BTreeMap<GpuId, MemoryChain>,
    fanout: NvlinkFanout,
    duplicator: Duplicator,
    storm_duplicator: Option<Duplicator>,
    fx: Rng,
    next_incident: u64,
    rrf_counts: BTreeMap<GpuId, u32>,
    ground_truth: Vec<GpuErrorEvent>,
    archive: Archive,
    ledger: DowntimeLedger,
    raw_holds: Vec<Outage>,
    stats: CampaignStats,
}

impl Engine {
    fn new(config: FaultConfig) -> Self {
        let cluster = Cluster::new(config.spec);
        let root = Rng::seed_from(config.seed);
        let rates = config.rates;
        let periods = config.periods;

        let mut procs = Vec::new();
        let mut push_proc = |kind, node, gpu, pair: (f64, f64), stream: u64| {
            procs.push(Proc {
                kind,
                node,
                gpu,
                hazard: PiecewiseHazard::new(periods, pair.0, pair.1),
                rng: root.fork(stream),
            });
        };
        let mut stream = 0u64;
        for gpu in cluster.gpus() {
            let node = gpu.node;
            for (kind, pair) in [
                (ProcKind::Mmu, rates.mmu_per_gpu_hour),
                (ProcKind::Gsp, rates.gsp_per_gpu_hour),
                (ProcKind::Pmu, rates.pmu_per_gpu_hour),
                (ProcKind::Fallen, rates.fallen_per_gpu_hour),
                (ProcKind::Memory, rates.uncorrectable_per_gpu_hour),
            ] {
                push_proc(kind, node, Some(gpu), pair, stream);
                stream += 1;
            }
        }
        for node in cluster.nodes() {
            push_proc(
                ProcKind::Nvlink,
                node.id(),
                None,
                rates.nvlink_incidents_per_node_hour,
                stream,
            );
            stream += 1;
        }

        let node_count = cluster.node_count();
        let storm_duplicator = config.storm.map(|s| {
            Duplicator::new(crate::config::DuplicationConfig {
                mean_extra: s.duplicate_mean_extra,
                window: config.duplication.window,
            })
        });
        Engine {
            cluster,
            procs,
            queue: EventQueue::new(),
            memory_chains: BTreeMap::new(),
            fanout: NvlinkFanout::new(config.propagation.nvlink_fanout_weights),
            duplicator: Duplicator::new(config.duplication),
            storm_duplicator,
            fx: root.fork(u64::MAX),
            next_incident: 0,
            rrf_counts: BTreeMap::new(),
            ground_truth: Vec::new(),
            archive: Archive::new(),
            ledger: DowntimeLedger::new(node_count),
            raw_holds: Vec::new(),
            stats: CampaignStats::default(),
            config,
        }
    }

    fn run(mut self) -> CampaignOutput {
        let start = self.config.periods.pre_op.start;
        // Seed the queue with every process's first firing.
        for i in 0..self.procs.len() {
            let p = &mut self.procs[i];
            if let Some(t) = p.hazard.next_fire(start, &mut p.rng) {
                self.queue.push(t, Ev::Fire(i));
            }
        }
        if let Some(storm) = self.config.storm {
            if self.cluster.contains_gpu(storm.gpu) {
                self.queue.push(storm.start, Ev::StormTick);
            }
        }
        if self.config.emit_logs && self.config.noise_lines_per_node_day > 0.0 {
            // Benign background traffic, bulk-generated per node (the
            // archive time-orders within each day regardless of insertion
            // order).
            let window = self.config.periods.whole();
            let rate = self.config.noise_lines_per_node_day;
            let mut noise_rng = self.fx.fork(0x4015E);
            for node in self.cluster.nodes() {
                for line in crate::noise::node_noise(node.id(), window, rate, &mut noise_rng) {
                    self.archive.push(line);
                    self.stats.noise_lines += 1;
                }
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Ev::Fire(i) => self.on_fire(t, i),
                Ev::Error {
                    gpu,
                    kind,
                    incident,
                } => self.emit(t, gpu, kind, incident, false),
                Ev::StormTick => self.on_storm_tick(t),
            }
        }

        self.ground_truth.sort_by_key(|e| e.time);
        let holds = merge_holds(std::mem::take(&mut self.raw_holds));
        CampaignOutput {
            ground_truth: self.ground_truth,
            archive: self.archive,
            ledger: self.ledger,
            holds,
            stats: self.stats,
            config: self.config,
        }
    }

    fn on_fire(&mut self, t: Timestamp, i: usize) {
        // Reschedule first so the process keeps its own rng stream.
        let (kind, node, gpu) = {
            let p = &mut self.procs[i];
            if let Some(next) = p.hazard.next_fire(t, &mut p.rng) {
                self.queue.push(next, Ev::Fire(i));
            }
            (p.kind, p.node, p.gpu)
        };
        let incident = self.new_incident();
        let episodes = self.config.episodes;
        // Every ProcKind except Nvlink is constructed with `gpu: Some(..)`
        // in `Engine::new`, so the per-kind `expect`s below cannot fire.
        match kind {
            ProcKind::Mmu => {
                let gpu = gpu.expect("MMU process is GPU-bound");
                self.emit(t, gpu, ErrorKind::MmuError, incident, false);
                // Short same-GPU burst; MMU needs no reset, so no cycles.
                let extras = Poisson::new(episodes.mmu_extra_mean.max(1e-9))
                    .expect("validated configuration")
                    .sample(&mut self.fx);
                let gap = Exponential::with_mean(episodes.mmu_gap_mean.as_secs().max(1) as f64)
                    .expect("positive mean");
                let mut tc = t;
                for _ in 0..extras {
                    tc = tc + Duration::from_secs(gap.sample(&mut self.fx).ceil() as u64 + 1);
                    self.queue.push(
                        tc,
                        Ev::Error {
                            gpu,
                            kind: ErrorKind::MmuError,
                            incident,
                        },
                    );
                }
            }
            ProcKind::Gsp => {
                let gpu = gpu.expect("GSP process is GPU-bound");
                self.run_episode(
                    t,
                    ErrorKind::GspError,
                    incident,
                    episodes.gsp_cycles_mean,
                    EpisodeTarget::Gpu(gpu),
                );
            }
            ProcKind::Pmu => {
                let gpu = gpu.expect("PMU process is GPU-bound");
                self.emit(t, gpu, ErrorKind::PmuSpiError, incident, false);
                self.schedule_pmu_followers(t, gpu, incident);
            }
            ProcKind::Fallen => {
                let gpu = gpu.expect("fallen-off-bus process is GPU-bound");
                self.run_episode(
                    t,
                    ErrorKind::FallenOffBus,
                    incident,
                    episodes.fallen_cycles_mean,
                    EpisodeTarget::Gpu(gpu),
                );
            }
            ProcKind::Memory => {
                let gpu = gpu.expect("memory process is GPU-bound");
                self.run_memory_chain(t, gpu, incident);
            }
            ProcKind::Nvlink => {
                self.run_episode(
                    t,
                    ErrorKind::NvlinkError,
                    incident,
                    episodes.nvlink_cycles_mean,
                    EpisodeTarget::NodeFanout(node),
                );
            }
        }
    }

    /// Plays out a flapping episode: `cycles` ≈ 1 + Poisson(mean − 1)
    /// error/reboot rounds, one ledger outage per round, one merged hold
    /// for the scheduler covering the whole episode.
    fn run_episode(
        &mut self,
        t: Timestamp,
        kind: ErrorKind,
        incident: IncidentId,
        cycles_mean: f64,
        target: EpisodeTarget,
    ) {
        let node = match target {
            EpisodeTarget::Gpu(gpu) => gpu.node,
            EpisodeTarget::NodeFanout(node) => node,
        };
        let Some(plan) = self.config.health.response(kind) else {
            // Non-critical kinds never reach here, but stay safe.
            if let EpisodeTarget::Gpu(gpu) = target {
                self.emit(t, gpu, kind, incident, false);
            }
            return;
        };
        let cycles = if cycles_mean > 1.0 {
            1 + Poisson::new(cycles_mean - 1.0)
                .expect("validated configuration")
                .sample(&mut self.fx)
        } else {
            1
        };
        let gap =
            Exponential::with_mean(self.config.episodes.cycle_gap_mean.as_secs().max(1) as f64)
                .expect("positive mean");
        let end = self.config.periods.op.end;
        let mut tc = t;
        let mut hold_end = t;
        for _ in 0..cycles {
            if tc >= end {
                break;
            }
            match target {
                EpisodeTarget::Gpu(gpu) => {
                    self.queue.push(
                        tc,
                        Ev::Error {
                            gpu,
                            kind,
                            incident,
                        },
                    );
                }
                EpisodeTarget::NodeFanout(node) => {
                    let Some(node_ref) = self.cluster.node(node) else {
                        return;
                    };
                    for gpu in self.fanout.touched_gpus(node_ref, &mut self.fx) {
                        self.queue.push(
                            tc,
                            Ev::Error {
                                gpu,
                                kind,
                                incident,
                            },
                        );
                    }
                }
            }
            // One drain + reboot per cycle.
            let reboot_start = tc + plan.detect_delay + plan.drain_time;
            let duration = self.config.repair.sample(plan.action, &mut self.fx);
            self.ledger.record(Outage {
                node,
                start: reboot_start,
                duration,
                action: plan.action,
            });
            hold_end = reboot_start + duration;
            tc = hold_end + Duration::from_secs(gap.sample(&mut self.fx).ceil() as u64 + 1);
        }
        // The scheduler sees one continuous unschedulable window.
        self.raw_holds.push(Outage {
            node,
            start: t + plan.detect_delay,
            duration: hold_end - (t + plan.detect_delay),
            action: plan.action,
        });
    }

    fn schedule_pmu_followers(&mut self, t: Timestamp, gpu: GpuId, incident: IncidentId) {
        let prop = self.config.propagation;
        if !self.fx.bool_with(prop.pmu_mmu_burst_prob) {
            return;
        }
        let count = Poisson::new(prop.pmu_mmu_burst_mean)
            .expect("burst mean is validated configuration")
            .sample(&mut self.fx);
        let delay_dist = Exponential::with_mean(prop.pmu_mmu_mean_delay.as_secs().max(1) as f64)
            .expect("mean delay is positive");
        for _ in 0..count {
            let delay = Duration::from_secs(delay_dist.sample(&mut self.fx).ceil() as u64 + 1);
            self.queue.push(
                t + delay,
                Ev::Error {
                    gpu,
                    kind: ErrorKind::MmuError,
                    incident,
                },
            );
        }
    }

    fn run_memory_chain(&mut self, t: Timestamp, gpu: GpuId, incident: IncidentId) {
        let phase = match self.config.periods.period_of(t) {
            Some(p) => p,
            None => return,
        };
        let rates: CalibratedRates = self.config.rates;
        let chain = self.memory_chains.entry(gpu).or_default();
        let outcome = chain.fault(&rates, phase, &mut self.fx);
        // Sub-events land a second apart, mirroring the driver's cadence.
        for (offset, kind) in outcome.events.iter().enumerate() {
            self.queue.push(
                t + Duration::from_secs(offset as u64),
                Ev::Error {
                    gpu,
                    kind: *kind,
                    incident,
                },
            );
        }
        // SRE replacement rule: a GPU that keeps failing to remap gets
        // physically swapped, restoring its spare-row budget.
        let threshold = self.config.rrf_replacement_threshold;
        let mut action = if outcome.needs_reset {
            RecoveryAction::SreIntervention
        } else {
            // Row remapping activates at the next GPU reset (Table I), so
            // every uncorrectable fault schedules one drain/reboot cycle.
            RecoveryAction::GpuReset
        };
        if threshold > 0 && outcome.events.contains(&ErrorKind::RowRemapFailure) {
            let count = self.rrf_counts.entry(gpu).or_insert(0);
            *count += 1;
            if *count >= threshold {
                *count = 0;
                self.stats.replacements += 1;
                // A RowRemapFailure outcome only comes out of this GPU's
                // chain, so the entry must exist.
                self.memory_chains
                    .get_mut(&gpu)
                    .expect("chain just used")
                    .replace();
                action = RecoveryAction::GpuReplacement;
            }
        }
        if let Some(plan) = self.config.health.response(ErrorKind::RowRemapEvent) {
            let reboot_start = t + plan.detect_delay + plan.drain_time;
            let duration = self.config.repair.sample(action, &mut self.fx);
            self.ledger.record(Outage {
                node: gpu.node,
                start: reboot_start,
                duration,
                action,
            });
            self.raw_holds.push(Outage {
                node: gpu.node,
                start: t + plan.detect_delay,
                duration: plan.drain_time + duration,
                action,
            });
        }
    }

    fn on_storm_tick(&mut self, t: Timestamp) {
        let Some(storm) = self.config.storm else {
            return;
        };
        if t >= storm.end() {
            return;
        }
        let incident = self.new_incident();
        self.emit(
            t,
            storm.gpu,
            ErrorKind::UncontainedMemoryError,
            incident,
            true,
        );
        // The storm predates the automated health checks (§IV(vi): it ran
        // 17 days without recovery), so no drain is triggered. Gaps carry
        // a floor of 30 s (or 80% of the mean for very hot storms): the
        // driver throttles identical-error reporting, which is what lets
        // the study count storm errors as distinct events after Δt
        // coalescing rather than merging the whole episode away.
        let mean_gap_secs = 3600.0 / storm.errors_per_hour;
        let floor = (0.8 * mean_gap_secs).min(30.0);
        let exp_gap = Exponential::with_mean((mean_gap_secs - floor).max(0.1))
            .expect("storm rate is validated configuration")
            .sample(&mut self.fx);
        let gap = Duration::from_secs(((floor + exp_gap).ceil() as u64).max(1));
        self.queue.push(t + gap, Ev::StormTick);
    }

    /// Records one ground-truth error and renders its log lines.
    fn emit(
        &mut self,
        t: Timestamp,
        gpu: GpuId,
        kind: ErrorKind,
        incident: IncidentId,
        storm: bool,
    ) {
        let Some(phase) = self.config.periods.period_of(t) else {
            return;
        };
        self.ground_truth
            .push(GpuErrorEvent::new(t, gpu, kind, incident));
        let entry = self.stats.counts.entry(kind).or_insert((0, 0));
        match phase {
            Phase::PreOp => entry.0 += 1,
            Phase::Op => entry.1 += 1,
        }
        if self.config.emit_logs {
            self.render_lines(t, gpu, kind, storm);
        }
    }

    fn render_lines(&mut self, t: Timestamp, gpu: GpuId, kind: ErrorKind, storm: bool) {
        let pid = self.fx.range(1000, 4_000_000) as u32;
        // GSP and PMU kinds span two XID codes; pick either like real logs.
        let code = match kind {
            ErrorKind::GspError if self.fx.bool_with(0.5) => XidCode::GSP_ERROR,
            ErrorKind::PmuSpiError if self.fx.bool_with(0.5) => XidCode::PMU_SPI_WRITE_FAILURE,
            other => other.primary_code(),
        };
        let event = XidEvent::new(
            t,
            gpu.node.hostname(),
            PciAddr::for_gpu_index(gpu.index),
            code,
            XidEvent::canonical_detail(kind, pid),
        );
        let duplicator = if storm {
            self.storm_duplicator.as_ref().unwrap_or(&self.duplicator)
        } else {
            &self.duplicator
        };
        let times = duplicator.line_times(t, &mut self.fx);
        for lt in times {
            let mut line_event = event.clone();
            line_event.time = lt;
            self.archive.push(line_event.to_log_line());
            self.stats.raw_lines += 1;
        }
    }

    fn new_incident(&mut self) -> IncidentId {
        let id = IncidentId(self.next_incident);
        self.next_incident += 1;
        self.stats.incidents += 1;
        id
    }
}

/// Episode targets: a single GPU or a node with per-cycle NVLink fan-out.
#[derive(Debug, Clone, Copy)]
enum EpisodeTarget {
    Gpu(GpuId),
    NodeFanout(NodeId),
}

/// Merges overlapping holds per node so the scheduler sees disjoint
/// unschedulable windows.
fn merge_holds(mut holds: Vec<Outage>) -> Vec<Outage> {
    holds.sort_by_key(|h| (h.node, h.start));
    let mut merged: Vec<Outage> = Vec::with_capacity(holds.len());
    for h in holds {
        match merged.last_mut() {
            Some(last) if last.node == h.node && h.start <= last.end() => {
                if h.end() > last.end() {
                    last.duration = h.end() - last.start;
                }
            }
            _ => merged.push(h),
        }
    }
    merged.sort_by_key(|h| (h.start, h.node));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StormConfig;

    fn tiny_output(seed: u64) -> CampaignOutput {
        Campaign::new(FaultConfig::tiny(seed)).run()
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_output(7);
        let b = tiny_output(7);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.ledger.outage_count(), b.ledger.outage_count());
        assert_eq!(a.holds.len(), b.holds.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_output(1);
        let b = tiny_output(2);
        assert_ne!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn ground_truth_is_time_sorted_and_in_window() {
        let out = tiny_output(3);
        let periods = out.config.periods;
        for pair in out.ground_truth.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for ev in &out.ground_truth {
            assert!(periods.period_of(ev.time).is_some());
        }
    }

    #[test]
    fn only_studied_kinds_are_generated() {
        let out = tiny_output(4);
        for ev in &out.ground_truth {
            assert!(ev.kind.is_studied(), "{:?}", ev.kind);
        }
    }

    #[test]
    fn render_log_clean_matches_archive() {
        let mut config = FaultConfig::tiny(11);
        config.emit_logs = true;
        config.noise_lines_per_node_day = 2.0;
        let out = Campaign::new(config).run();
        let (bytes, stats) = out.render_log();
        assert!(stats.is_none());
        let expect: Vec<u8> = out
            .archive
            .iter()
            .flat_map(|l| {
                let mut v = l.to_string().into_bytes();
                v.push(b'\n');
                v
            })
            .collect();
        assert_eq!(bytes, expect);
    }

    #[test]
    fn render_log_with_chaos_is_deterministic_and_accounted() {
        let mut config = FaultConfig::tiny(12).with_chaos(0.2);
        config.emit_logs = true;
        config.noise_lines_per_node_day = 2.0;
        let out = Campaign::new(config.clone()).run();
        let (bytes, stats) = out.render_log();
        let stats = stats.expect("chaos configured");
        assert_eq!(stats.lines_in, out.archive.line_count() as u64);
        // Same campaign, same rendering — byte for byte.
        let (again, stats_again) = Campaign::new(config).run().render_log();
        assert_eq!(bytes, again);
        assert_eq!(Some(stats), stats_again);
        // Every injected defect is detected by the lenient extractor.
        let mut ledger = hpclog::quarantine::QuarantineLedger::new();
        let mut ex = hpclog::extract::XidExtractor::new(2022);
        ex.scan_reader_lenient(bytes.as_slice(), &mut ledger);
        assert_eq!(ledger.total(), stats.quarantinable());
    }

    #[test]
    fn episodes_produce_outages_and_holds() {
        // Run long enough that at least one GSP/NVLink incident fires.
        let mut config = FaultConfig::tiny(5);
        config.periods = simtime::StudyPeriods::delta_scaled(0.2);
        let out = Campaign::new(config).run();
        let episodic = out
            .ground_truth
            .iter()
            .filter(|e| matches!(e.kind, ErrorKind::GspError | ErrorKind::NvlinkError))
            .count();
        if episodic > 0 {
            assert!(out.ledger.outage_count() > 0);
            assert!(!out.holds.is_empty());
        }
    }

    #[test]
    fn holds_are_disjoint_per_node() {
        let mut config = FaultConfig::tiny(6);
        config.periods = simtime::StudyPeriods::delta_scaled(0.2);
        let out = Campaign::new(config).run();
        let mut by_node: BTreeMap<NodeId, Vec<&Outage>> = BTreeMap::new();
        for h in &out.holds {
            by_node.entry(h.node).or_default().push(h);
        }
        for (_, mut hs) in by_node {
            hs.sort_by_key(|h| h.start);
            for pair in hs.windows(2) {
                assert!(pair[0].end() < pair[1].start, "overlapping holds");
            }
        }
    }

    #[test]
    fn gsp_errors_cluster_into_episodes() {
        let mut config = FaultConfig::tiny(8);
        config.periods = simtime::StudyPeriods::delta_scaled(0.3);
        let out = Campaign::new(config).run();
        let gsp: Vec<_> = out
            .ground_truth
            .iter()
            .filter(|e| e.kind == ErrorKind::GspError)
            .collect();
        if gsp.len() >= 4 {
            // Many errors, few incidents: the episode model at work.
            let mut incidents: Vec<_> = gsp.iter().map(|e| e.incident).collect();
            incidents.sort_unstable();
            incidents.dedup();
            assert!(
                incidents.len() * 2 <= gsp.len(),
                "{} incidents for {} errors",
                incidents.len(),
                gsp.len()
            );
            // All cycles of an incident stay on one GPU.
            for &inc in &incidents {
                let gpus: Vec<_> = gsp
                    .iter()
                    .filter(|e| e.incident == inc)
                    .map(|e| e.gpu)
                    .collect();
                assert!(gpus.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn no_logs_when_disabled() {
        let out = tiny_output(6);
        assert_eq!(out.archive.line_count(), 0);
        assert_eq!(out.stats.raw_lines(), 0);
    }

    #[test]
    fn logs_at_least_one_line_per_event_when_enabled() {
        let mut config = FaultConfig::tiny(8);
        config.emit_logs = true;
        let out = Campaign::new(config).run();
        assert!(out.archive.line_count() >= out.ground_truth.len());
        assert_eq!(
            (out.stats.raw_lines() + out.stats.noise_lines()) as usize,
            out.archive.line_count()
        );
    }

    #[test]
    fn noise_interleaves_without_perturbing_errors() {
        let mut quiet = FaultConfig::tiny(21);
        quiet.emit_logs = true;
        let mut noisy = quiet.clone();
        noisy.noise_lines_per_node_day = 25.0;
        let a = Campaign::new(quiet).run();
        let b = Campaign::new(noisy).run();
        // Noise must not change the error process at all.
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.stats.raw_lines(), b.stats.raw_lines());
        assert!(b.stats.noise_lines() > 0);
        assert_eq!(
            b.archive.line_count() - a.archive.line_count(),
            b.stats.noise_lines() as usize
        );
    }

    #[test]
    fn storm_generates_expected_volume() {
        let mut config = FaultConfig::tiny(9);
        // A one-day storm at 100/h on a valid GPU.
        let gpu = GpuId::new(NodeId::new(0), 0);
        config.storm = Some(StormConfig {
            gpu,
            start: config.periods.pre_op.start + Duration::from_days(1),
            length: Duration::from_days(1),
            errors_per_hour: 100.0,
            duplicate_mean_extra: 5.0,
        });
        let out = Campaign::new(config).run();
        let storm_events = out
            .ground_truth
            .iter()
            .filter(|e| e.gpu == gpu && e.kind == ErrorKind::UncontainedMemoryError)
            .count();
        assert!(
            (2_000..2_900).contains(&storm_events),
            "storm events {storm_events}"
        );
    }

    #[test]
    fn nvlink_cycles_share_incident_and_node() {
        let mut config = FaultConfig::tiny(10);
        config.periods = simtime::StudyPeriods::delta_scaled(0.3);
        let out = Campaign::new(config).run();
        let mut by_incident: BTreeMap<IncidentId, Vec<&GpuErrorEvent>> = BTreeMap::new();
        for ev in out
            .ground_truth
            .iter()
            .filter(|e| e.kind == ErrorKind::NvlinkError)
        {
            by_incident.entry(ev.incident).or_default().push(ev);
        }
        for (incident, events) in &by_incident {
            let node = events[0].gpu.node;
            for ev in events {
                assert_eq!(ev.gpu.node, node, "{incident}");
            }
        }
    }

    #[test]
    fn events_in_filters_by_phase() {
        let out = tiny_output(11);
        let pre: Vec<_> = out.events_in(Phase::PreOp).collect();
        let op: Vec<_> = out.events_in(Phase::Op).collect();
        assert_eq!(pre.len() + op.len(), out.ground_truth.len());
        assert_eq!(out.stats.total(Phase::PreOp), pre.len() as u64);
        assert_eq!(out.stats.total(Phase::Op), op.len() as u64);
    }

    #[test]
    fn outage_mttr_near_repair_model() {
        let mut config = FaultConfig::tiny(12);
        config.periods = simtime::StudyPeriods::delta_scaled(0.3);
        let out = Campaign::new(config).run();
        if out.ledger.outage_count() >= 30 {
            let mttr = out.ledger.mttr_hours().unwrap();
            assert!(mttr > 0.4 && mttr < 1.6, "MTTR {mttr}");
        }
    }

    #[test]
    fn repeated_rrfs_trigger_replacement() {
        // Crank the uncorrectable rate and force pre-op-style remap
        // failures so RRFs accumulate fast.
        let mut config = FaultConfig::tiny(33);
        config.rates.uncorrectable_per_gpu_hour = (0.05, 0.05);
        config.rates.remap_failure_prob = (0.9, 0.9);
        config.rrf_replacement_threshold = 2;
        let out = Campaign::new(config).run();
        let rrfs = out
            .ground_truth
            .iter()
            .filter(|e| e.kind == ErrorKind::RowRemapFailure)
            .count() as u64;
        assert!(rrfs >= 4, "need RRFs for the test, got {rrfs}");
        assert!(out.stats.replacements() >= 1);
        assert!(out.stats.replacements() <= rrfs / 2);
        // Replacement outages appear in the ledger.
        let swaps = out
            .ledger
            .outages()
            .iter()
            .filter(|o| o.action == RecoveryAction::GpuReplacement)
            .count() as u64;
        assert_eq!(swaps, out.stats.replacements());
    }

    #[test]
    fn zero_threshold_disables_replacement() {
        let mut config = FaultConfig::tiny(33);
        config.rates.uncorrectable_per_gpu_hour = (0.05, 0.05);
        config.rates.remap_failure_prob = (0.9, 0.9);
        config.rrf_replacement_threshold = 0;
        let out = Campaign::new(config).run();
        assert_eq!(out.stats.replacements(), 0);
    }

    #[test]
    fn merge_holds_combines_overlaps() {
        let node = NodeId::new(1);
        let mk = |start: u64, mins: u64| Outage {
            node,
            start: Timestamp::from_unix(start),
            duration: Duration::from_mins(mins),
            action: RecoveryAction::NodeReboot,
        };
        let merged = merge_holds(vec![mk(0, 10), mk(300, 10), mk(5000, 5)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start, Timestamp::from_unix(0));
        assert_eq!(merged[0].end(), Timestamp::from_unix(900));
        // Different nodes never merge.
        let other = Outage {
            node: NodeId::new(2),
            ..mk(0, 10)
        };
        let merged = merge_holds(vec![mk(0, 10), other]);
        assert_eq!(merged.len(), 2);
    }
}
