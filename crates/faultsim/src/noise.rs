//! Benign background log traffic.
//!
//! Real consolidated syslogs are overwhelmingly *not* XID lines — slurmd
//! job lifecycle messages, health-check heartbeats, systemd chatter. The
//! extraction stage's whole job is rejecting that traffic cheaply, so the
//! campaign writes a configurable stream of realistic noise lines into the
//! archive alongside the error lines. Without it, parsing benchmarks and
//! extractor tests would measure a fantasy workload.

use clustersim::NodeId;
use hpclog::LogLine;
use simrng::dist::{Exponential, Sample};
use simrng::Rng;
use simtime::{Duration, Period, Timestamp};

/// Noise templates, roughly in observed frequency order. `{}` takes a
/// small random integer.
const TEMPLATES: &[(&str, &str)] = &[
    ("slurmd", "launch task StepId={}.0 request from UID 52{}"),
    ("slurmd", "done with job {}"),
    (
        "healthd",
        "node health check passed ({} checks, 0 failures)",
    ),
    ("systemd", "Started Session {} of User root."),
    (
        "kernel",
        "perf: interrupt took too long ({} > 9500), lowering kernel.perf_event_max_sample_rate",
    ),
    (
        "nvidia-persistenced",
        "device 0000:{}:00.0 - persistence mode enabled",
    ),
    (
        "sshd",
        "Accepted publickey for svcuser from 141.142.0.{} port 522{}",
    ),
    (
        "kernel",
        "EXT4-fs (nvme0n1p2): mounted filesystem with ordered data mode. Opts: ({})",
    ),
    ("lustre", "delta-OST00{}: Connection restored to service"),
    ("kernel", "NVRM: GPU at PCI:0000:{}:00: GPU-serial-number"),
];

/// Generates background lines for one node over a window.
///
/// Lines arrive as a Poisson process with the given daily mean; contents
/// cycle through realistic service templates. The final template
/// deliberately contains `NVRM:` without being an XID line, keeping the
/// extractor's prefilter honest.
pub fn node_noise(node: NodeId, window: Period, lines_per_day: f64, rng: &mut Rng) -> Vec<LogLine> {
    if lines_per_day <= 0.0 {
        return Vec::new();
    }
    let gap = Exponential::with_mean(86_400.0 / lines_per_day).expect("positive mean");
    let mut out = Vec::new();
    let mut t = window.start;
    loop {
        let step = Duration::from_secs(gap.sample(rng).ceil() as u64 + 1);
        t = t + step;
        if t >= window.end {
            break;
        }
        out.push(line_at(node, t, rng));
    }
    out
}

fn line_at(node: NodeId, t: Timestamp, rng: &mut Rng) -> LogLine {
    let (tag, template) = TEMPLATES[rng.range_u64(TEMPLATES.len() as u64) as usize];
    let mut body = String::with_capacity(template.len() + 8);
    let mut parts = template.split("{}");
    if let Some(first) = parts.next() {
        body.push_str(first);
    }
    for part in parts {
        body.push_str(&rng.range(1, 99).to_string());
        body.push_str(part);
    }
    LogLine::new(t, node.hostname(), tag, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::extract::XidExtractor;
    use simtime::StudyPeriods;

    fn window() -> Period {
        let p = StudyPeriods::delta();
        Period::new(p.pre_op.start, p.pre_op.start + Duration::from_days(10))
    }

    #[test]
    fn volume_tracks_rate() {
        let mut rng = Rng::seed_from(1);
        let lines = node_noise(NodeId::new(0), window(), 50.0, &mut rng);
        // 10 days at 50/day = 500 expected.
        assert!((400..600).contains(&lines.len()), "{}", lines.len());
    }

    #[test]
    fn zero_rate_is_silent() {
        let mut rng = Rng::seed_from(2);
        assert!(node_noise(NodeId::new(0), window(), 0.0, &mut rng).is_empty());
    }

    #[test]
    fn lines_stay_in_window_and_on_node() {
        let mut rng = Rng::seed_from(3);
        let w = window();
        for line in node_noise(NodeId::new(7), w, 20.0, &mut rng) {
            assert!(w.contains(line.time));
            assert_eq!(line.host, "gpub008");
        }
    }

    #[test]
    fn noise_is_rejected_by_the_extractor() {
        let mut rng = Rng::seed_from(4);
        let lines = node_noise(NodeId::new(0), window(), 100.0, &mut rng);
        assert!(!lines.is_empty());
        let mut extractor = XidExtractor::studied_only(2022);
        for line in &lines {
            assert!(
                extractor.extract(line).is_none(),
                "noise extracted as XID: {line}"
            );
        }
        // And none of it is even malformed-XID: it is plain noise.
        assert_eq!(extractor.stats().malformed, 0);
    }

    #[test]
    fn noise_lines_parse_as_syslog() {
        let mut rng = Rng::seed_from(5);
        for line in node_noise(NodeId::new(3), window(), 30.0, &mut rng) {
            let rendered = line.to_string();
            let year = line.time.ymd().0;
            let parsed = hpclog::LogLine::parse_with_year(&rendered, year)
                .unwrap_or_else(|e| panic!("{rendered:?}: {e}"));
            assert_eq!(parsed.time, line.time);
        }
    }

    #[test]
    fn templates_fill_placeholders() {
        let mut rng = Rng::seed_from(6);
        for line in node_noise(NodeId::new(0), window(), 100.0, &mut rng) {
            assert!(!line.body.contains("{}"), "{}", line.body);
        }
    }
}
