//! A deterministic discrete-event queue.

use simtime::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events popping at equal timestamps come out in insertion order, which
/// makes whole-campaign runs bit-reproducible — a requirement for the
/// seeded experiment tables in `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// use faultsim::EventQueue;
/// use simtime::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.push(Timestamp::from_unix(20), "late");
/// q.push(Timestamp::from_unix(10), "early");
/// assert_eq!(q.pop(), Some((Timestamp::from_unix(10), "early")));
/// assert_eq!(q.pop(), Some((Timestamp::from_unix(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Timestamp, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_unix(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 9, 3, 7] {
            q.push(t(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(10), "b");
        q.push(t(10), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(4), ());
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), 10u64);
        q.push(t(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(t(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
