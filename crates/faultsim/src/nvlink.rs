//! NVLink incident fan-out (§IV(v)).
//!
//! An NVLink fault is a *link* phenomenon: the same physical event can log
//! XID 74 on one GPU (a link endpoint noticed) or on several (the fault
//! propagated through the fabric). The paper measures 42% of operational
//! NVLink errors touching two or more GPUs; [`NvlinkFanout`] reproduces
//! that by sampling the touched-GPU count from configurable weights and
//! then picking distinct GPUs on the node.

use clustersim::{GpuId, Node};
use simrng::dist::{Categorical, Sample};
use simrng::Rng;

/// Samples which GPUs an NVLink incident touches.
#[derive(Debug, Clone)]
pub struct NvlinkFanout {
    sizes: Categorical,
}

impl NvlinkFanout {
    /// Builds a fan-out sampler from weights for touching 1, 2 or 3 GPUs.
    ///
    /// # Panics
    ///
    /// Panics if the weights are invalid (all zero, negative or
    /// non-finite) — these come from static configuration.
    pub fn new(weights: [f64; 3]) -> Self {
        NvlinkFanout {
            sizes: Categorical::new(&weights).expect("fan-out weights must be valid"),
        }
    }

    /// Picks the set of touched GPUs for an incident on `node`.
    ///
    /// The touched count is capped at the node's GPU count (a 4-way node
    /// cannot propagate to 5 GPUs). At least one GPU is always touched.
    pub fn touched_gpus(&self, node: &Node, rng: &mut Rng) -> Vec<GpuId> {
        let want = self.sizes.sample(rng) + 1;
        let count = want.min(node.gpu_count() as usize).max(1);
        let mut indices: Vec<u8> = (0..node.gpu_count()).collect();
        rng.shuffle(&mut indices);
        indices.truncate(count);
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|i| GpuId::new(node.id(), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustersim::{Cluster, ClusterSpec};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::tiny())
    }

    #[test]
    fn touched_gpus_are_distinct_and_on_node() {
        let c = cluster();
        let fanout = NvlinkFanout::new([0.58, 0.30, 0.12]);
        let mut rng = Rng::seed_from(1);
        for node in c.nodes() {
            for _ in 0..200 {
                let touched = fanout.touched_gpus(node, &mut rng);
                assert!(!touched.is_empty() && touched.len() <= 3);
                let mut dedup = touched.clone();
                dedup.dedup();
                assert_eq!(dedup.len(), touched.len());
                for gpu in &touched {
                    assert_eq!(gpu.node, node.id());
                    assert!(gpu.index < node.gpu_count());
                }
            }
        }
    }

    #[test]
    fn multi_gpu_fraction_matches_weights() {
        let c = cluster();
        let node = &c.nodes()[3]; // 8-way, no capping distortion
        let fanout = NvlinkFanout::new([0.58, 0.30, 0.12]);
        let mut rng = Rng::seed_from(2);
        let n = 50_000;
        let multi = (0..n)
            .filter(|_| fanout.touched_gpus(node, &mut rng).len() >= 2)
            .count();
        let frac = multi as f64 / n as f64;
        assert!((frac - 0.42).abs() < 0.01, "multi-GPU fraction {frac}");
    }

    #[test]
    fn single_only_weights_never_propagate() {
        let c = cluster();
        let fanout = NvlinkFanout::new([1.0, 0.0, 0.0]);
        let mut rng = Rng::seed_from(3);
        for _ in 0..500 {
            assert_eq!(fanout.touched_gpus(&c.nodes()[0], &mut rng).len(), 1);
        }
    }

    #[test]
    fn fanout_capped_by_node_width() {
        // A pathological 1-GPU "node" cannot exist in ClusterSpec, so test
        // the 4-way cap with always-3 weights.
        let c = cluster();
        let fanout = NvlinkFanout::new([0.0, 0.0, 1.0]);
        let mut rng = Rng::seed_from(4);
        for _ in 0..100 {
            let touched = fanout.touched_gpus(&c.nodes()[0], &mut rng);
            assert_eq!(touched.len(), 3);
        }
    }
}
