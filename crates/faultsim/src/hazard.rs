//! Piecewise-constant hazard processes over the study calendar.
//!
//! Each `(GPU, error kind)` pair is a Poisson process whose rate jumps at
//! the pre-operational → operational boundary (the paper attributes the
//! observed GSP/PMU/MMU rate changes to the utilization jump when Delta
//! entered production). Sampling across the boundary uses the standard
//! restart property of the exponential distribution: if a gap drawn at rate
//! `r₁` overshoots the boundary, the draw is redone from the boundary at
//! rate `r₂` — memorylessness makes this exact, not an approximation.

use simrng::Rng;
use simtime::{Duration, Timestamp};
use simtime::{Phase, StudyPeriods};

/// A two-phase Poisson error process.
///
/// # Example
///
/// ```
/// use faultsim::hazard::PiecewiseHazard;
/// use faultsim::StudyPeriods;
/// use simrng::Rng;
///
/// let periods = StudyPeriods::delta();
/// // GSP: rare in testing, frequent in production.
/// let hazard = PiecewiseHazard::new(periods, 0.0001, 0.0006);
/// let mut rng = Rng::seed_from(1);
/// let first = hazard.next_fire(periods.pre_op.start, &mut rng);
/// assert!(first.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseHazard {
    periods: StudyPeriods,
    /// Rate during pre-op, events per hour.
    pre_rate: f64,
    /// Rate during op, events per hour.
    op_rate: f64,
}

impl PiecewiseHazard {
    /// Creates a process with the given per-hour rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite.
    pub fn new(periods: StudyPeriods, pre_rate: f64, op_rate: f64) -> Self {
        assert!(
            pre_rate >= 0.0 && pre_rate.is_finite(),
            "pre_rate {pre_rate}"
        );
        assert!(op_rate >= 0.0 && op_rate.is_finite(), "op_rate {op_rate}");
        PiecewiseHazard {
            periods,
            pre_rate,
            op_rate,
        }
    }

    /// The rate in effect at `t` (zero outside the study window).
    pub fn rate_at(&self, t: Timestamp) -> f64 {
        match self.periods.period_of(t) {
            Some(Phase::PreOp) => self.pre_rate,
            Some(Phase::Op) => self.op_rate,
            None => 0.0,
        }
    }

    /// The expected total number of events over the whole window.
    pub fn expected_events(&self) -> f64 {
        self.pre_rate * self.periods.pre_op.hours() + self.op_rate * self.periods.op.hours()
    }

    /// Samples the first firing time strictly after `now`, or `None` if the
    /// process never fires again before the window ends.
    pub fn next_fire(&self, now: Timestamp, rng: &mut Rng) -> Option<Timestamp> {
        let mut cursor = now.max(self.periods.pre_op.start);
        loop {
            let (rate, period_end) = match self.periods.period_of(cursor) {
                Some(Phase::PreOp) => (self.pre_rate, self.periods.pre_op.end),
                Some(Phase::Op) => (self.op_rate, self.periods.op.end),
                None => return None,
            };
            if rate <= 0.0 {
                // Dormant this phase; fast-forward to the next one.
                cursor = period_end;
                continue;
            }
            let gap_hours = -rng.f64_open().ln() / rate;
            // Cap the gap so the seconds conversion cannot overflow even
            // for absurdly small rates.
            let gap_secs = (gap_hours * 3600.0).min(4.0e17);
            let fire = cursor.saturating_add(Duration::from_secs(gap_secs.ceil() as u64));
            if fire < period_end {
                return Some(fire);
            }
            // Overshot: restart from the boundary (memorylessness).
            cursor = period_end;
        }
    }
}

/// A power-law (Weibull-intensity) non-homogeneous process, the standard
/// model for *infant mortality* and *wear-out* in repairable systems.
///
/// The intensity at device age `t` hours is
/// `λ(t) = (shape / scale) · (t / scale)^(shape−1)`: `shape < 1` gives a
/// decreasing error rate (early defects shaken out — the paper's pre-op
/// NVLink and RRF rates improving into the operational period), `shape = 1`
/// reduces to a homogeneous Poisson process, and `shape > 1` models
/// wear-out. Sampling uses the closed-form inverse of the cumulative
/// hazard `Λ(t) = (t/scale)^shape`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawProcess {
    origin: Timestamp,
    end: Timestamp,
    shape: f64,
    scale_hours: f64,
}

impl PowerLawProcess {
    /// Creates a process observed from `origin` (device age zero) to `end`.
    ///
    /// # Panics
    ///
    /// Panics unless `shape` and `scale_hours` are finite and positive and
    /// `end > origin`.
    pub fn new(origin: Timestamp, end: Timestamp, shape: f64, scale_hours: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape {shape}");
        assert!(
            scale_hours > 0.0 && scale_hours.is_finite(),
            "scale {scale_hours}"
        );
        assert!(end > origin, "empty observation window");
        PowerLawProcess {
            origin,
            end,
            shape,
            scale_hours,
        }
    }

    /// Expected events by device age `age_hours`: `(age/scale)^shape`.
    pub fn expected_by(&self, age_hours: f64) -> f64 {
        (age_hours / self.scale_hours).powf(self.shape)
    }

    /// Samples the next event strictly after `now`, or `None` past the
    /// window end.
    ///
    /// Inversion: with `Λ(t) = (t/s)^k`, the next event after age `a`
    /// arrives at age `s · (Λ(a) − ln U)^(1/k)`.
    pub fn next_fire(&self, now: Timestamp, rng: &mut Rng) -> Option<Timestamp> {
        let now = now.max(self.origin);
        if now >= self.end {
            return None;
        }
        let age = (now - self.origin).as_hours_f64();
        let lambda_now = self.expected_by(age);
        let next_age = self.scale_hours * (lambda_now - rng.f64_open().ln()).powf(1.0 / self.shape);
        let gap_secs = ((next_age - age) * 3600.0).clamp(1.0, 4.0e17);
        let fire = now.saturating_add(Duration::from_secs(gap_secs.ceil() as u64));
        if fire < self.end {
            Some(fire)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periods() -> StudyPeriods {
        StudyPeriods::delta()
    }

    /// Counts fires of a hazard over the whole window.
    fn count_fires(h: &PiecewiseHazard, rng: &mut Rng) -> (u64, u64) {
        let mut pre = 0;
        let mut op = 0;
        let mut t = h.periods.pre_op.start;
        while let Some(fire) = h.next_fire(t, rng) {
            match h.periods.period_of(fire) {
                Some(Phase::PreOp) => pre += 1,
                Some(Phase::Op) => op += 1,
                None => break,
            }
            t = fire;
        }
        (pre, op)
    }

    #[test]
    fn fires_match_expected_counts_per_phase() {
        // Rates chosen to give ~200 pre-op and ~2000 op events.
        let h = PiecewiseHazard::new(
            periods(),
            200.0 / periods().pre_op.hours(),
            2000.0 / periods().op.hours(),
        );
        let mut rng = Rng::seed_from(11);
        let (pre, op) = count_fires(&h, &mut rng);
        assert!((150..250).contains(&pre), "pre {pre}");
        assert!((1800..2200).contains(&op), "op {op}");
    }

    #[test]
    fn zero_pre_rate_skips_to_op() {
        let h = PiecewiseHazard::new(periods(), 0.0, 1.0);
        let mut rng = Rng::seed_from(2);
        let fire = h.next_fire(periods().pre_op.start, &mut rng).unwrap();
        assert_eq!(periods().period_of(fire), Some(Phase::Op));
    }

    #[test]
    fn zero_rates_never_fire() {
        let h = PiecewiseHazard::new(periods(), 0.0, 0.0);
        let mut rng = Rng::seed_from(3);
        assert_eq!(h.next_fire(periods().pre_op.start, &mut rng), None);
    }

    #[test]
    fn no_fires_after_window() {
        let h = PiecewiseHazard::new(periods(), 1.0, 1.0);
        let mut rng = Rng::seed_from(4);
        assert_eq!(h.next_fire(periods().op.end, &mut rng), None);
    }

    #[test]
    fn fires_are_strictly_increasing() {
        let h = PiecewiseHazard::new(periods(), 0.05, 0.05);
        let mut rng = Rng::seed_from(5);
        let mut t = periods().pre_op.start;
        for _ in 0..500 {
            match h.next_fire(t, &mut rng) {
                Some(fire) => {
                    assert!(fire > t);
                    t = fire;
                }
                None => break,
            }
        }
    }

    #[test]
    fn rate_at_respects_phases() {
        let h = PiecewiseHazard::new(periods(), 1.0, 2.0);
        assert_eq!(h.rate_at(periods().pre_op.start), 1.0);
        assert_eq!(h.rate_at(periods().op.start), 2.0);
        assert_eq!(h.rate_at(periods().op.end), 0.0);
    }

    #[test]
    fn expected_events_formula() {
        let h = PiecewiseHazard::new(periods(), 0.0, 1.0);
        assert!((h.expected_events() - periods().op.hours()).abs() < 1e-6);
    }

    #[test]
    fn tiny_rate_does_not_overflow() {
        let h = PiecewiseHazard::new(periods(), 1e-300, 1e-300);
        let mut rng = Rng::seed_from(6);
        // Will almost surely be None (gap far beyond window) without panic.
        let _ = h.next_fire(periods().pre_op.start, &mut rng);
    }

    #[test]
    #[should_panic(expected = "pre_rate")]
    fn negative_rate_panics() {
        PiecewiseHazard::new(periods(), -1.0, 0.0);
    }

    fn power_law(shape: f64, scale: f64) -> PowerLawProcess {
        let p = periods();
        PowerLawProcess::new(p.pre_op.start, p.op.end, shape, scale)
    }

    fn count_power_law_fires(
        proc_: &PowerLawProcess,
        until_hours: f64,
        rng: &mut Rng,
    ) -> (u64, u64) {
        // Counts in [0, until/2) and [until/2, until).
        let start = periods().pre_op.start;
        let half = start + Duration::from_secs((until_hours * 1800.0) as u64);
        let end = start + Duration::from_secs((until_hours * 3600.0) as u64);
        let (mut first, mut second) = (0, 0);
        let mut t = start;
        while let Some(fire) = proc_.next_fire(t, rng) {
            if fire >= end {
                break;
            }
            if fire < half {
                first += 1;
            } else {
                second += 1;
            }
            t = fire;
        }
        (first, second)
    }

    #[test]
    fn power_law_shape_one_is_poisson() {
        // shape 1, scale s: rate 1/s per hour.
        let proc_ = power_law(1.0, 10.0);
        let mut rng = Rng::seed_from(41);
        let (a, b) = count_power_law_fires(&proc_, 10_000.0, &mut rng);
        let total = a + b;
        assert!((900..1100).contains(&total), "total {total}");
        // Halves roughly equal.
        let ratio = a as f64 / b.max(1) as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn infant_mortality_front_loads_events() {
        let proc_ = power_law(0.4, 0.001);
        let mut rng = Rng::seed_from(42);
        let (first, second) = count_power_law_fires(&proc_, 10_000.0, &mut rng);
        assert!(first > second * 2, "first {first} second {second}");
    }

    #[test]
    fn wear_out_back_loads_events() {
        let proc_ = power_law(2.5, 1_500.0);
        let mut rng = Rng::seed_from(43);
        let (first, second) = count_power_law_fires(&proc_, 10_000.0, &mut rng);
        assert!(second > first * 2, "first {first} second {second}");
    }

    #[test]
    fn power_law_expected_count_matches_cumulative_hazard() {
        let proc_ = power_law(0.5, 0.01);
        let mut rng = Rng::seed_from(44);
        let hours = 10_000.0;
        let (a, b) = count_power_law_fires(&proc_, hours, &mut rng);
        let total = (a + b) as f64;
        let expected = proc_.expected_by(hours);
        assert!(
            (total - expected).abs() / expected < 0.1,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn power_law_fires_strictly_increase_and_stop_at_end() {
        let proc_ = power_law(0.7, 5.0);
        let mut rng = Rng::seed_from(45);
        let mut t = periods().pre_op.start;
        while let Some(fire) = proc_.next_fire(t, &mut rng) {
            assert!(fire > t);
            assert!(fire < periods().op.end);
            t = fire;
            if t > periods().pre_op.start + Duration::from_days(400) {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn power_law_rejects_bad_shape() {
        power_law(0.0, 1.0);
    }
}
