//! Duplicate-log-line emission.
//!
//! A GPU error condition rarely logs exactly once: the driver re-reports it
//! until it clears, so one ground-truth error becomes a small cluster of
//! identical lines seconds apart (and during the storm episode, dozens).
//! The analysis pipeline's coalescing stage exists precisely to undo this;
//! [`Duplicator`] is the forward model it is undoing.

use crate::config::DuplicationConfig;
use simrng::dist::{Geometric, Sample};
use simrng::Rng;
use simtime::{Duration, Timestamp};

/// Samples the timestamps at which one error's log lines appear.
#[derive(Debug, Clone)]
pub struct Duplicator {
    extra: Geometric,
    window: Duration,
}

impl Duplicator {
    /// Builds a duplicator emitting `1 + Geometric` lines, with the extras
    /// uniform over `window` after the first.
    ///
    /// # Panics
    ///
    /// Panics if `mean_extra` is negative or non-finite — these come from
    /// static configuration.
    pub fn new(config: DuplicationConfig) -> Self {
        assert!(
            config.mean_extra >= 0.0 && config.mean_extra.is_finite(),
            "mean_extra {}",
            config.mean_extra
        );
        // Geometric(p) has mean (1-p)/p = m  =>  p = 1/(1+m).
        let p = 1.0 / (1.0 + config.mean_extra);
        Duplicator {
            extra: Geometric::new(p).expect("p in (0, 1] by construction"),
            window: config.window,
        }
    }

    /// The expected number of extra lines per error.
    pub fn mean_extra(&self) -> f64 {
        self.extra.mean()
    }

    /// The timestamps of all lines for an error at `time`: the first line
    /// exactly at `time`, extras sorted within the window.
    pub fn line_times(&self, time: Timestamp, rng: &mut Rng) -> Vec<Timestamp> {
        let extras = self.extra.sample(rng) as usize;
        let mut times = Vec::with_capacity(1 + extras);
        times.push(time);
        let span = self.window.as_secs().max(1);
        for _ in 0..extras {
            times.push(time + Duration::from_secs(rng.range(1, span + 1)));
        }
        times.sort_unstable();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mean: f64) -> DuplicationConfig {
        DuplicationConfig {
            mean_extra: mean,
            window: Duration::from_secs(30),
        }
    }

    #[test]
    fn first_line_is_at_error_time() {
        let d = Duplicator::new(config(2.0));
        let mut rng = Rng::seed_from(1);
        let t = Timestamp::from_unix(1_000_000);
        for _ in 0..200 {
            let times = d.line_times(t, &mut rng);
            assert_eq!(times[0], t);
        }
    }

    #[test]
    fn extras_stay_in_window_and_sorted() {
        let d = Duplicator::new(config(5.0));
        let mut rng = Rng::seed_from(2);
        let t = Timestamp::from_unix(500_000);
        for _ in 0..200 {
            let times = d.line_times(t, &mut rng);
            for pair in times.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
            for &lt in &times {
                assert!(lt >= t && lt <= t + Duration::from_secs(30));
            }
        }
    }

    #[test]
    fn mean_extra_matches_configuration() {
        let d = Duplicator::new(config(26.0));
        assert!((d.mean_extra() - 26.0).abs() < 1e-9);
        let mut rng = Rng::seed_from(3);
        let t = Timestamp::from_unix(0);
        let n = 20_000;
        let total: usize = (0..n).map(|_| d.line_times(t, &mut rng).len() - 1).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 26.0).abs() < 0.5, "mean extras {mean}");
    }

    #[test]
    fn zero_mean_never_duplicates() {
        let d = Duplicator::new(config(0.0));
        let mut rng = Rng::seed_from(4);
        for _ in 0..100 {
            assert_eq!(d.line_times(Timestamp::from_unix(1), &mut rng).len(), 1);
        }
    }
}
