//! GPU-utilization modelling and the utilization-sensitivity ablation.
//!
//! The paper *hypothesises* (findings i, iii, iv) that the MTBE degradation
//! of GSP, PMU and MMU errors between the pre-operational and operational
//! periods is driven by higher GPU utilization in production. This module
//! makes that hypothesis a first-class, testable model object:
//!
//! * [`UtilizationProfile`] — time-varying utilization: phase base levels
//!   (bring-up vs production) with diurnal and weekly modulation, the shape
//!   HPC schedulers actually exhibit.
//! * [`sensitivity_from_rates`] — inverts the paper's own numbers: given
//!   the observed rate jump of a component and the utilization jump, the
//!   power-law exponent `s` in `rate ∝ utilization^s` that explains it.
//! * [`scale_sensitive_rates`] — rewrites a [`CalibratedRates`] for a
//!   counterfactual utilization level, scaling exactly the kinds the paper
//!   identifies as utilization-sensitive (GSP, PMU, MMU); memory, NVLink
//!   and bus errors are left alone, matching §IV's observations that their
//!   rates *improved* or held steady.
//!
//! The `utilization` bench binary sweeps counterfactual utilization levels
//! and reports the resulting per-node MTBE — the E6 ablation.

use crate::rates::CalibratedRates;
use simtime::Timestamp;

/// A time-varying GPU utilization model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationProfile {
    /// Mean utilization in the pre-operational period.
    pub pre_op_base: f64,
    /// Mean utilization in the operational period.
    pub op_base: f64,
    /// Fractional diurnal swing (day vs night), 0..1.
    pub diurnal_amplitude: f64,
    /// Fractional weekly swing (weekday vs weekend), 0..1.
    pub weekly_amplitude: f64,
}

impl UtilizationProfile {
    /// The Delta-like profile: bring-up ran light (~35%), production runs
    /// hot (~94% of GPU capacity allocated per Table III GPU-hours, with
    /// ~75% of allocations keeping the silicon busy), with mild diurnal
    /// and weekly structure.
    pub fn delta() -> Self {
        UtilizationProfile {
            pre_op_base: 0.35,
            op_base: 0.75,
            diurnal_amplitude: 0.15,
            weekly_amplitude: 0.10,
        }
    }

    /// Utilization at instant `t` for the given phase base, modulated by
    /// hour-of-day and day-of-week, clamped to `[0, 1]`.
    pub fn at(&self, t: Timestamp, op_phase: bool) -> f64 {
        let base = if op_phase {
            self.op_base
        } else {
            self.pre_op_base
        };
        let secs = t.unix();
        let hour = (secs % 86_400) as f64 / 3_600.0;
        // Peak mid-afternoon (15:00), trough pre-dawn (03:00).
        let diurnal =
            1.0 + self.diurnal_amplitude * ((hour - 15.0) * std::f64::consts::TAU / 24.0).cos();
        // Unix epoch was a Thursday; days 2-3 of the week cycle land on
        // the weekend.
        let dow = (secs / 86_400 + 4) % 7;
        let weekly = if dow >= 5 {
            1.0 - self.weekly_amplitude
        } else {
            1.0
        };
        (base * diurnal * weekly).clamp(0.0, 1.0)
    }

    /// The pre-op → op utilization ratio.
    pub fn op_over_pre(&self) -> f64 {
        self.op_base / self.pre_op_base
    }
}

impl Default for UtilizationProfile {
    fn default() -> Self {
        UtilizationProfile::delta()
    }
}

/// Infers the power-law sensitivity `s` with `rate_op / rate_pre =
/// (u_op / u_pre)^s` from an observed rate ratio and a utilization ratio.
///
/// Applied to the paper's own numbers (GSP per-node MTBE 3,347 h → 590 h,
/// utilization 0.35 → 0.75) this gives `s ≈ 2.3`: GSP errors grow faster
/// than linearly in load, consistent with a queue-pressure failure mode in
/// the RPC path.
///
/// # Panics
///
/// Panics unless both ratios are positive and the utilization ratio is
/// not 1 (the exponent is undefined there).
pub fn sensitivity_from_rates(rate_ratio: f64, utilization_ratio: f64) -> f64 {
    assert!(rate_ratio > 0.0 && utilization_ratio > 0.0);
    assert!(
        (utilization_ratio - 1.0).abs() > 1e-9,
        "sensitivity undefined at equal utilization"
    );
    rate_ratio.ln() / utilization_ratio.ln()
}

/// Scales the utilization-sensitive operational rates (GSP, PMU, MMU) of
/// `rates` for a counterfactual operational utilization `u_new`, using a
/// power law with exponent `sensitivity` around the profile's baseline.
///
/// Insensitive kinds (memory chain, NVLink, fallen-off-bus) are left
/// untouched, matching the paper's per-component observations.
pub fn scale_sensitive_rates(
    rates: &mut CalibratedRates,
    profile: &UtilizationProfile,
    u_new: f64,
    sensitivity: f64,
) {
    assert!(u_new > 0.0 && u_new <= 1.0, "utilization must be in (0, 1]");
    let factor = (u_new / profile.op_base).powf(sensitivity);
    rates.gsp_per_gpu_hour.1 *= factor;
    rates.pmu_per_gpu_hour.1 *= factor;
    rates.mmu_per_gpu_hour.1 *= factor;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::StudyPeriods;

    #[test]
    fn phase_bases_differ() {
        let p = UtilizationProfile::delta();
        let t = Timestamp::from_ymd_hms(2023, 6, 7, 15, 0, 0).unwrap(); // Wed 15:00
        let op = p.at(t, true);
        let pre = p.at(t, false);
        assert!(op > pre);
        assert!((op / pre - p.op_over_pre()).abs() < 1e-9);
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let p = UtilizationProfile::delta();
        let peak = Timestamp::from_ymd_hms(2023, 6, 7, 15, 0, 0).unwrap();
        let trough = Timestamp::from_ymd_hms(2023, 6, 7, 3, 0, 0).unwrap();
        assert!(p.at(peak, true) > p.at(trough, true));
        // Swing magnitude matches the configured amplitude.
        let ratio = p.at(peak, true) / p.at(trough, true);
        let expected = (1.0 + p.diurnal_amplitude) / (1.0 - p.diurnal_amplitude);
        assert!((ratio - expected).abs() < 1e-9, "{ratio} vs {expected}");
    }

    #[test]
    fn weekend_dip() {
        let p = UtilizationProfile::delta();
        // 2023-06-10 was a Saturday; 2023-06-07 a Wednesday.
        let saturday = Timestamp::from_ymd_hms(2023, 6, 10, 12, 0, 0).unwrap();
        let wednesday = Timestamp::from_ymd_hms(2023, 6, 7, 12, 0, 0).unwrap();
        assert!(p.at(saturday, true) < p.at(wednesday, true));
    }

    #[test]
    fn utilization_clamped_to_unit_interval() {
        let p = UtilizationProfile {
            pre_op_base: 0.9,
            op_base: 0.99,
            diurnal_amplitude: 0.5,
            weekly_amplitude: 0.0,
        };
        let start = StudyPeriods::delta().op.start;
        for h in 0..48 {
            let t = start + simtime::Duration::from_hours(h);
            let u = p.at(t, true);
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn sensitivity_inverts_paper_gsp_numbers() {
        // GSP per-node MTBE 3,347 h -> 590 h is a 5.67x rate jump; the
        // utilization jump is 0.75/0.35 = 2.14x.
        let s = sensitivity_from_rates(3_347.0 / 590.0, 0.75 / 0.35);
        assert!((2.0..2.6).contains(&s), "s = {s}");
        // PMU: 87,450 -> 29,569 per-node MTBE is ~3x.
        let s_pmu = sensitivity_from_rates(87_450.0 / 29_569.0, 0.75 / 0.35);
        assert!((1.2..1.7).contains(&s_pmu), "s = {s_pmu}");
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn sensitivity_rejects_equal_utilization() {
        sensitivity_from_rates(2.0, 1.0);
    }

    #[test]
    fn scaling_touches_only_sensitive_kinds() {
        let profile = UtilizationProfile::delta();
        let base = CalibratedRates::delta();
        let mut scaled = base;
        scale_sensitive_rates(&mut scaled, &profile, 0.375, 2.0); // half utilization, s=2
                                                                  // Sensitive op rates drop 4x.
        assert!((scaled.gsp_per_gpu_hour.1 / base.gsp_per_gpu_hour.1 - 0.25).abs() < 1e-9);
        assert!((scaled.pmu_per_gpu_hour.1 / base.pmu_per_gpu_hour.1 - 0.25).abs() < 1e-9);
        assert!((scaled.mmu_per_gpu_hour.1 / base.mmu_per_gpu_hour.1 - 0.25).abs() < 1e-9);
        // Pre-op rates and insensitive kinds untouched.
        assert_eq!(scaled.gsp_per_gpu_hour.0, base.gsp_per_gpu_hour.0);
        assert_eq!(
            scaled.nvlink_incidents_per_node_hour,
            base.nvlink_incidents_per_node_hour
        );
        assert_eq!(
            scaled.uncorrectable_per_gpu_hour,
            base.uncorrectable_per_gpu_hour
        );
        assert_eq!(scaled.fallen_per_gpu_hour, base.fallen_per_gpu_hour);
    }

    #[test]
    fn scaling_at_baseline_is_identity() {
        let profile = UtilizationProfile::delta();
        let base = CalibratedRates::delta();
        let mut scaled = base;
        scale_sensitive_rates(&mut scaled, &profile, profile.op_base, 2.3);
        assert!((scaled.gsp_per_gpu_hour.1 - base.gsp_per_gpu_hour.1).abs() < 1e-15);
    }
}
