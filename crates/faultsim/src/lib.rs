//! Discrete-event GPU fault injection with calibrated per-component hazard
//! processes, error propagation, recovery interplay and raw-log emission.
//!
//! This crate is the generative counterpart of the DSN'25 Delta study: where
//! the paper *measured* three years of A100 error behaviour, `faultsim`
//! *reproduces* that behaviour as a stochastic model over a
//! [`clustersim`] cluster, so every downstream stage (log extraction,
//! coalescing, MTBE statistics, job impact, availability) runs on data with
//! the same structure and rates the paper reports.
//!
//! The model, per §IV of the paper:
//!
//! * **Hazard processes** ([`hazard`]) — each `(GPU, error kind)` pair draws
//!   inter-error gaps from an exponential process whose rate is
//!   piecewise-constant across the pre-operational / operational boundary
//!   (the paper attributes the GSP/PMU/MMU rate jumps to higher GPU
//!   utilization in production). Rates are calibrated from Table I by
//!   [`rates::CalibratedRates`].
//! * **Propagation** — PMU errors trigger trailing MMU error bursts
//!   (§IV(iv)); one uncorrectable memory fault fans out into
//!   DBE/RRE/RRF/contained/uncontained sub-events ([`memory`]); NVLink
//!   incidents fan out across the GPUs sharing the link, 42% touching two
//!   or more ([`nvlink`]).
//! * **The storm** — the 17-day uncontained-memory-error episode from one
//!   faulty pre-operational GPU (38,900 errors, >1M raw lines) is modelled
//!   explicitly ([`config::StormConfig`]).
//! * **Duplication** ([`duplication`]) — every ground-truth error emits
//!   1 + geometric duplicate log lines so the analysis pipeline's
//!   coalescing stage does real work.
//! * **Recovery interplay** — critical errors trigger the
//!   [`clustersim::HealthPolicy`] drain → reboot → recover loop; GPUs on a
//!   down node emit no errors; outages land in a
//!   [`clustersim::DowntimeLedger`].
//!
//! The entry point is [`Campaign`]: configure, [`Campaign::run`], and get a
//! [`CampaignOutput`] holding the ground truth, the rendered log archive
//! and the outage ledger.
//!
//! # Example
//!
//! ```
//! use faultsim::{Campaign, FaultConfig};
//!
//! // A scaled-down campaign for a quick run.
//! let config = FaultConfig::delta_scaled(0.05);
//! let output = Campaign::new(config).run();
//! assert!(output.ground_truth.len() > 100);
//! assert!(output.archive.line_count() >= output.ground_truth.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod config;
pub mod duplication;
pub mod hazard;
pub mod memory;
pub mod noise;
pub mod nvlink;
mod queue;
pub mod rates;
pub mod utilization;

pub use campaign::{Campaign, CampaignOutput};
pub use config::{FaultConfig, StormConfig};
pub use hazard::PowerLawProcess;
pub use queue::EventQueue;
pub use rates::CalibratedRates;
pub use simtime::{Period, Phase, StudyPeriods};
pub use utilization::UtilizationProfile;
