//! Campaign configuration: cluster shape, calendar, rates, propagation,
//! duplication, the storm episode, health policy and repair model.

use crate::rates::CalibratedRates;
use clustersim::{ClusterSpec, GpuId, HealthPolicy, NodeId, RepairModel};
use hpclog::chaos::ChaosConfig;
use simtime::StudyPeriods;
use simtime::{Duration, Timestamp};

/// How PMU errors drag MMU errors behind them (§IV(iv): PMU SPI errors
/// "exhibited high correlations with MMU errors").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationConfig {
    /// Probability a PMU error is followed by an MMU burst.
    pub pmu_mmu_burst_prob: f64,
    /// Mean burst size (Poisson) when a burst happens.
    pub pmu_mmu_burst_mean: f64,
    /// Mean gap between the PMU error and each follower (exponential).
    pub pmu_mmu_mean_delay: Duration,
    /// NVLink incident fan-out weights for touching 1, 2 or 3 GPUs.
    /// The paper: 42% of operational NVLink errors propagate to ≥ 2 GPUs.
    pub nvlink_fanout_weights: [f64; 3],
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            pmu_mmu_burst_prob: 0.8,
            pmu_mmu_burst_mean: 3.0,
            pmu_mmu_mean_delay: Duration::from_secs(90),
            nvlink_fanout_weights: [0.58, 0.30, 0.12],
        }
    }
}

/// Episode structure: how errors of one incident repeat over time.
///
/// The paper's Tables I and II only reconcile if errors are strongly
/// clustered: Table I counts 3,857 operational GSP errors, yet Table II
/// finds only 31 jobs that encountered XID 119 — because a GSP fault
/// *flaps*: the health check drains the node, a reboot clears nothing, the
/// error re-fires on the drained node (hitting no new job), and the cycle
/// repeats until SREs intervene. [`EpisodeConfig`] encodes the expected
/// number of error/reboot cycles per root incident; the calibrated
/// *incident* rates in [`crate::CalibratedRates`] are the Table I counts
/// divided by these cycle counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeConfig {
    /// Expected extra MMU errors per MMU incident (short burst, no reboot).
    pub mmu_extra_mean: f64,
    /// Mean gap between MMU burst errors.
    pub mmu_gap_mean: Duration,
    /// Expected error/reboot cycles per GSP incident.
    pub gsp_cycles_mean: f64,
    /// Expected error/reboot cycles per NVLink defective-link episode.
    pub nvlink_cycles_mean: f64,
    /// Expected error/reboot cycles per fallen-off-bus incident.
    pub fallen_cycles_mean: f64,
    /// Mean idle gap between a reboot completing and the error re-firing.
    pub cycle_gap_mean: Duration,
}

impl EpisodeConfig {
    /// Expected MMU errors per incident (first + extras).
    pub fn mmu_errors_per_incident(&self) -> f64 {
        1.0 + self.mmu_extra_mean
    }
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            mmu_extra_mean: crate::rates::MMU_EXTRA_MEAN,
            mmu_gap_mean: Duration::from_mins(3),
            gsp_cycles_mean: crate::rates::GSP_CYCLES_MEAN,
            nvlink_cycles_mean: crate::rates::NVLINK_CYCLES_MEAN,
            fallen_cycles_mean: crate::rates::FALLEN_CYCLES_MEAN,
            cycle_gap_mean: Duration::from_mins(30),
        }
    }
}

/// Duplicate-log-line emission: the same error repeats in the log before
/// the condition clears, which is exactly why the analysis pipeline needs
/// its coalescing stage (Fig. 1, stage ii).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicationConfig {
    /// Mean number of *extra* lines per ground-truth error (geometric).
    pub mean_extra: f64,
    /// Window within which duplicates land after the first line.
    pub window: Duration,
}

impl Default for DuplicationConfig {
    fn default() -> Self {
        // Duplicates repeat within seconds of the first line; the window
        // must sit well inside the analysis coalescing Δt (20 s) so that
        // duplicates merge while distinct errors survive.
        DuplicationConfig {
            mean_extra: 2.0,
            window: Duration::from_secs(10),
        }
    }
}

/// The pre-operational error storm of §IV(vi): one faulty GPU logged
/// uncontained memory errors continuously for 17 days (May 5–21, 2022),
/// 38,900 coalesced errors and over a million raw lines, without recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormConfig {
    /// The faulty GPU.
    pub gpu: GpuId,
    /// When the storm starts.
    pub start: Timestamp,
    /// How long it lasts.
    pub length: Duration,
    /// Coalesced errors per hour during the storm.
    pub errors_per_hour: f64,
    /// Mean extra duplicate lines per storm error (much burstier than
    /// normal errors).
    pub duplicate_mean_extra: f64,
}

impl StormConfig {
    /// The paper's episode: 38,900 errors over 17 days (~95/h) from one
    /// GPU, duplicated to >1M raw lines (~26 extra lines each).
    pub fn delta() -> Self {
        StormConfig {
            gpu: GpuId::new(NodeId::new(37), 2),
            start: Timestamp::from_ymd_hms(2022, 5, 5, 0, 0, 0).expect("valid date"),
            length: Duration::from_days(17),
            errors_per_hour: 38_900.0 / (17.0 * 24.0),
            duplicate_mean_extra: 26.0,
        }
    }

    /// Expected number of coalesced storm errors.
    pub fn expected_errors(&self) -> f64 {
        self.errors_per_hour * self.length.as_hours_f64()
    }

    /// The storm window end.
    pub fn end(&self) -> Timestamp {
        self.start + self.length
    }
}

/// Complete configuration for one fault-injection campaign.
///
/// Use [`FaultConfig::delta`] for the full-fidelity study reproduction,
/// [`FaultConfig::delta_scaled`] for a time-scaled one, or build a custom
/// configuration field by field.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// The cluster shape.
    pub spec: ClusterSpec,
    /// The measurement calendar.
    pub periods: StudyPeriods,
    /// Per-component hazard rates.
    pub rates: CalibratedRates,
    /// Error propagation parameters.
    pub propagation: PropagationConfig,
    /// Episode (error clustering / flapping) parameters.
    pub episodes: EpisodeConfig,
    /// Duplicate-line emission parameters.
    pub duplication: DuplicationConfig,
    /// The storm episode, if any.
    pub storm: Option<StormConfig>,
    /// The SRE health-check response model.
    pub health: HealthPolicy,
    /// The repair-duration model.
    pub repair: RepairModel,
    /// Whether to render raw log lines into the archive (disable for
    /// statistics-only runs where only ground truth matters).
    pub emit_logs: bool,
    /// Benign background log lines per node per day (slurmd, health
    /// checks, systemd...), written alongside error lines so extraction is
    /// exercised on realistic traffic. Zero disables noise.
    pub noise_lines_per_node_day: f64,
    /// SRE replacement rule (§II-B): after this many row-remapping
    /// failures a GPU is physically swapped (fresh spare rows, long
    /// replacement outage). Zero disables replacement.
    pub rrf_replacement_threshold: u32,
    /// Log-corruption injection applied when the archive is rendered to
    /// bytes ([`crate::CampaignOutput::render_log`]): `None` renders the
    /// clean archive, `Some` feeds it through [`hpclog::chaos`] so the
    /// analysis pipeline's lenient ingestion is exercised end to end.
    pub chaos: Option<ChaosConfig>,
    /// Root seed for the campaign's random streams.
    pub seed: u64,
}

impl FaultConfig {
    /// The full-fidelity Delta reproduction: 106 nodes / 448 GPUs, the
    /// 1,169-day calendar, Table-I-calibrated rates and the 17-day storm.
    pub fn delta() -> Self {
        FaultConfig {
            spec: ClusterSpec::delta(),
            periods: StudyPeriods::delta(),
            rates: CalibratedRates::delta(),
            propagation: PropagationConfig::default(),
            episodes: EpisodeConfig::default(),
            duplication: DuplicationConfig::default(),
            storm: Some(StormConfig::delta()),
            health: HealthPolicy::delta(),
            repair: RepairModel::delta(),
            emit_logs: true,
            noise_lines_per_node_day: 4.0,
            rrf_replacement_threshold: 3,
            chaos: None,
            seed: 0xDE17A,
        }
    }

    /// A time-scaled campaign: the full cluster and the same *rates*, but a
    /// window shortened to `fraction` of the real calendar (and the storm
    /// shortened to fit). Expected event counts scale with `fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn delta_scaled(fraction: f64) -> Self {
        let mut config = FaultConfig::delta();
        config.periods = StudyPeriods::delta_scaled(fraction);
        config.storm = config.storm.map(|mut storm| {
            let days = (17.0 * fraction).max(0.5);
            storm.length = Duration::from_secs((days * 86_400.0) as u64);
            // Keep the storm inside the scaled pre-op window.
            storm.start = config.periods.pre_op.start + Duration::from_days(1);
            if storm.end() > config.periods.pre_op.end {
                storm.length = config.periods.pre_op.end - storm.start;
            }
            storm
        });
        config
    }

    /// A tiny configuration for unit tests: [`ClusterSpec::tiny`], ~1% of
    /// the calendar, no storm, no log emission.
    pub fn tiny(seed: u64) -> Self {
        let spec = ClusterSpec::tiny();
        let periods = StudyPeriods::delta_scaled(0.01);
        FaultConfig {
            spec,
            periods,
            // Rates are per-unit, so they transfer to any cluster size.
            rates: CalibratedRates::delta(),
            propagation: PropagationConfig::default(),
            episodes: EpisodeConfig::default(),
            duplication: DuplicationConfig::default(),
            storm: None,
            health: HealthPolicy::delta(),
            repair: RepairModel::delta(),
            emit_logs: false,
            noise_lines_per_node_day: 0.0,
            rrf_replacement_threshold: 3,
            chaos: None,
            seed,
        }
    }

    /// Turns on log corruption at a summed per-line `rate`, spread evenly
    /// across the quarantinable mutation kinds, seeded from the campaign
    /// seed so the corruption is as reproducible as the faults.
    pub fn with_chaos(mut self, rate: f64) -> Self {
        self.chaos = Some(ChaosConfig::uniform(rate, self.seed ^ 0xC0A5_F00D));
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_storm_matches_paper_episode() {
        let storm = StormConfig::delta();
        assert!((storm.expected_errors() - 38_900.0).abs() < 1.0);
        assert_eq!(storm.length, Duration::from_days(17));
        assert_eq!(storm.start.ymd(), (2022, 5, 5));
        assert_eq!(storm.end().ymd(), (2022, 5, 22));
        // >1M raw lines: 38,900 * (1 + 26) = 1.05M.
        let lines = storm.expected_errors() * (1.0 + storm.duplicate_mean_extra);
        assert!(lines > 1_000_000.0);
    }

    #[test]
    fn delta_config_is_full_fidelity() {
        let c = FaultConfig::delta();
        assert_eq!(c.spec.gpu_count(), 448);
        assert!(c.storm.is_some());
        assert!(c.emit_logs);
    }

    #[test]
    fn scaled_storm_stays_in_pre_op() {
        for f in [0.01, 0.05, 0.2, 1.0] {
            let c = FaultConfig::delta_scaled(f);
            let storm = c.storm.unwrap();
            assert!(storm.start >= c.periods.pre_op.start, "f={f}");
            assert!(storm.end() <= c.periods.pre_op.end, "f={f}");
        }
    }

    #[test]
    fn tiny_config_is_fast() {
        let c = FaultConfig::tiny(1);
        assert!(c.spec.gpu_count() < 32);
        assert!(c.periods.whole().days() < 30.0);
        assert!(c.storm.is_none());
        assert!(!c.emit_logs);
    }

    #[test]
    fn fanout_weights_embody_42_percent_multi_gpu() {
        let p = PropagationConfig::default();
        let multi = p.nvlink_fanout_weights[1] + p.nvlink_fanout_weights[2];
        let total: f64 = p.nvlink_fanout_weights.iter().sum();
        assert!((multi / total - 0.42).abs() < 1e-9);
    }

    #[test]
    fn default_is_delta() {
        assert_eq!(FaultConfig::default(), FaultConfig::delta());
    }
}
