//! Property tests: log line and NVRM body round trips, pattern-engine
//! invariants, archive conservation — on the in-repo `propcheck` harness.

use hpclog::archive::Archive;
use hpclog::pattern::Pattern;
use hpclog::{LogLine, PciAddr, Timestamp, XidEvent};
use propcheck::{run, Gen};
use xid::XidCode;

const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
const TEXT: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.:=/()-";
const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_SPACE: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";
const PRINTABLE: &[u8] =
    b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

/// Timestamps within the study window (2022-2025).
fn study_time(g: &mut Gen) -> Timestamp {
    Timestamp::from_unix(g.u64_in(1_640_995_200, 1_741_996_800))
}

/// Hostnames in Delta's convention.
fn hostname(g: &mut Gen) -> String {
    format!("gpub{:03}", g.u16_in(1, 999))
}

/// Printable body text: no newlines; starts alphanumeric (syslog
/// separators would eat leading whitespace); no trailing whitespace.
fn body_text(g: &mut Gen, max: usize) -> String {
    let mut s = String::new();
    s.push(g.choose(ALNUM) as char);
    s.push_str(&g.string_of(TEXT, 0, max + 1));
    s.trim_end().to_owned()
}

/// Any structurally valid log line round-trips through rendering.
#[test]
fn log_line_roundtrip() {
    run("log_line_roundtrip", 256, |g| {
        let (time, host) = (study_time(g), hostname(g));
        let body = body_text(g, 80);
        let line = LogLine::new(time, host, "kernel", body);
        let year = time.ymd().0;
        let parsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        assert_eq!(parsed, line);
    });
}

/// Any XID event with well-formed detail text round-trips through the
/// NVRM body format.
#[test]
fn xid_event_roundtrip() {
    run("xid_event_roundtrip", 256, |g| {
        let (time, host) = (study_time(g), hostname(g));
        let gpu = g.u8_in(0, 8);
        let code = XidCode::new(g.u16_in(1, 200));
        let detail = body_text(g, 60);
        let event = XidEvent::new(time, host, PciAddr::for_gpu_index(gpu), code, detail);
        let line = event.to_log_line();
        let year = time.ymd().0;
        let reparsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        let back = XidEvent::parse_body(reparsed.time, &reparsed.host, &reparsed.body)
            .expect("recognised")
            .expect("parses");
        assert_eq!(back, event);
    });
}

/// A pattern built by escaping arbitrary text always matches exactly
/// that text.
#[test]
fn escaped_literal_matches_itself() {
    run("escaped_literal_matches_itself", 256, |g| {
        let text = g.string_of(PRINTABLE, 0, 41);
        let escaped: String = text
            .chars()
            .flat_map(|c| match c {
                '*' | '{' | '\\' => vec!['\\', c],
                other => vec![other],
            })
            .collect();
        let p = Pattern::compile(&escaped).unwrap();
        assert!(p.matches(&text));
    });
}

/// `*text*` matches any string containing `text`.
#[test]
fn substring_pattern() {
    run("substring_pattern", 256, |g| {
        let hay = g.string_of(LOWER_SPACE, 0, 31);
        let needle = g.string_of(LOWER, 1, 7);
        let tail = g.string_of(LOWER_SPACE, 0, 31);
        let text = format!("{hay}{needle}{tail}");
        let p = Pattern::compile(&format!("*{needle}*")).unwrap();
        assert!(p.matches(&text));
    });
}

/// Digit captures always return digit-only, non-empty captures.
#[test]
fn digit_capture_is_digits() {
    run("digit_capture_is_digits", 256, |g| {
        let prefix = g.string_of(LOWER_SPACE, 0, 11);
        let n = g.u64_below(1_000_000);
        let suffix = g.string_of(LOWER_SPACE, 0, 11);
        let text = format!("{prefix}{n}#{suffix}");
        let p = Pattern::compile("*{d}#*").unwrap();
        let caps = p.captures(&text).expect("must match");
        assert!(!caps[0].is_empty());
        assert!(caps[0].chars().all(|c| c.is_ascii_digit()));
    });
}

/// The archive conserves lines: every push is visible, in time order.
#[test]
fn archive_conserves_lines() {
    run("archive_conserves_lines", 128, |g| {
        let times = g.vec_with(0, 50, study_time);
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub001", "kernel", format!("m{i}")));
        }
        assert_eq!(archive.line_count(), times.len());
        let replayed: Vec<Timestamp> = archive.iter().map(|l| l.time).collect();
        let mut sorted = replayed.clone();
        sorted.sort();
        assert_eq!(replayed, sorted);
    });
}

/// Render → ingest preserves the archive byte-for-byte.
#[test]
fn archive_day_roundtrip() {
    run("archive_day_roundtrip", 128, |g| {
        let times = g.vec_with(1, 40, study_time);
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub002", "kernel", format!("event {i}")));
        }
        let mut back = Archive::new();
        for (day, _) in archive.days() {
            let text = archive.render_day(day).unwrap();
            let year = Timestamp::from_unix(day * 86_400).ymd().0;
            let (_, skipped) = back.ingest_day(&text, year);
            assert_eq!(skipped, 0);
        }
        let a: Vec<_> = archive.iter().cloned().collect();
        let b: Vec<_> = back.iter().cloned().collect();
        assert_eq!(a, b);
    });
}
