//! Property tests: log line and NVRM body round trips, pattern-engine
//! invariants, archive conservation, and the shard/merge determinism
//! contract — on the in-repo `propcheck` harness.

use hpclog::archive::Archive;
use hpclog::extract::XidExtractor;
use hpclog::pattern::Pattern;
use hpclog::quarantine::QuarantineLedger;
use hpclog::shard;
use hpclog::{Duration, LogLine, PciAddr, Timestamp, XidEvent};
use propcheck::{run, run_shrinking, shrink_vec, Gen};
use xid::XidCode;

const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
const TEXT: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.:=/()-";
const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_SPACE: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";
const PRINTABLE: &[u8] =
    b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

/// Timestamps within the study window (2022-2025).
fn study_time(g: &mut Gen) -> Timestamp {
    Timestamp::from_unix(g.u64_in(1_640_995_200, 1_741_996_800))
}

/// Hostnames in Delta's convention.
fn hostname(g: &mut Gen) -> String {
    format!("gpub{:03}", g.u16_in(1, 999))
}

/// Printable body text: no newlines; starts alphanumeric (syslog
/// separators would eat leading whitespace); no trailing whitespace.
fn body_text(g: &mut Gen, max: usize) -> String {
    let mut s = String::new();
    s.push(g.choose(ALNUM) as char);
    s.push_str(&g.string_of(TEXT, 0, max + 1));
    s.trim_end().to_owned()
}

/// Any structurally valid log line round-trips through rendering.
#[test]
fn log_line_roundtrip() {
    run("log_line_roundtrip", 256, |g| {
        let (time, host) = (study_time(g), hostname(g));
        let body = body_text(g, 80);
        let line = LogLine::new(time, host, "kernel", body);
        let year = time.ymd().0;
        let parsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        assert_eq!(parsed, line);
    });
}

/// Any XID event with well-formed detail text round-trips through the
/// NVRM body format.
#[test]
fn xid_event_roundtrip() {
    run("xid_event_roundtrip", 256, |g| {
        let (time, host) = (study_time(g), hostname(g));
        let gpu = g.u8_in(0, 8);
        let code = XidCode::new(g.u16_in(1, 200));
        let detail = body_text(g, 60);
        let event = XidEvent::new(time, host, PciAddr::for_gpu_index(gpu), code, detail);
        let line = event.to_log_line();
        let year = time.ymd().0;
        let reparsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        let back = XidEvent::parse_body(reparsed.time, &reparsed.host, &reparsed.body)
            .expect("recognised")
            .expect("parses");
        assert_eq!(back, event);
    });
}

/// A pattern built by escaping arbitrary text always matches exactly
/// that text.
#[test]
fn escaped_literal_matches_itself() {
    run("escaped_literal_matches_itself", 256, |g| {
        let text = g.string_of(PRINTABLE, 0, 41);
        let escaped: String = text
            .chars()
            .flat_map(|c| match c {
                '*' | '{' | '\\' => vec!['\\', c],
                other => vec![other],
            })
            .collect();
        let p = Pattern::compile(&escaped).unwrap();
        assert!(p.matches(&text));
    });
}

/// `*text*` matches any string containing `text`.
#[test]
fn substring_pattern() {
    run("substring_pattern", 256, |g| {
        let hay = g.string_of(LOWER_SPACE, 0, 31);
        let needle = g.string_of(LOWER, 1, 7);
        let tail = g.string_of(LOWER_SPACE, 0, 31);
        let text = format!("{hay}{needle}{tail}");
        let p = Pattern::compile(&format!("*{needle}*")).unwrap();
        assert!(p.matches(&text));
    });
}

/// Digit captures always return digit-only, non-empty captures.
#[test]
fn digit_capture_is_digits() {
    run("digit_capture_is_digits", 256, |g| {
        let prefix = g.string_of(LOWER_SPACE, 0, 11);
        let n = g.u64_below(1_000_000);
        let suffix = g.string_of(LOWER_SPACE, 0, 11);
        let text = format!("{prefix}{n}#{suffix}");
        let p = Pattern::compile("*{d}#*").unwrap();
        let caps = p.captures(&text).expect("must match");
        assert!(!caps[0].is_empty());
        assert!(caps[0].chars().all(|c| c.is_ascii_digit()));
    });
}

/// The archive conserves lines: every push is visible, in time order.
#[test]
fn archive_conserves_lines() {
    run("archive_conserves_lines", 128, |g| {
        let times = g.vec_with(0, 50, study_time);
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub001", "kernel", format!("m{i}")));
        }
        assert_eq!(archive.line_count(), times.len());
        let replayed: Vec<Timestamp> = archive.iter().map(|l| l.time).collect();
        let mut sorted = replayed.clone();
        sorted.sort();
        assert_eq!(replayed, sorted);
    });
}

/// Generates one adversarial archive's worth of lines: a handful of hosts
/// (few enough that cross-host timestamp ties are common), a mix of noise,
/// studied XIDs and study-excluded XIDs, error bursts, exact duplicate
/// lines, and a push order scrambled away from time order — the regimes
/// that stress the shard boundary and the canonical merge.
fn gen_lines(g: &mut Gen) -> Vec<LogLine> {
    let hosts: Vec<String> = (1..=g.usize_in(1, 5)).map(|_| hostname(g)).collect();
    let mut t = study_time(g);
    let mut lines = Vec::new();
    for _ in 0..g.usize_in(0, 50) {
        // Zero advances keep same-second collisions (including across
        // hosts) common; larger jumps cross coalescing windows.
        t = t + Duration::from_secs(g.u64_below(90));
        let host = hosts[g.usize_in(0, hosts.len())].clone();
        let gpu = g.u8_in(0, 8);
        let line = match g.u8_in(0, 4) {
            0 => LogLine::new(t, &host, "kernel", "usb 3-2: new high-speed USB device"),
            1 => {
                // Study-excluded application XIDs (13, 43).
                let code = g.choose(&[13u16, 43]);
                XidEvent::new(
                    t,
                    &host,
                    PciAddr::for_gpu_index(gpu),
                    XidCode::new(code),
                    "app fault",
                )
                .to_log_line()
            }
            _ => {
                let code = g.choose(&[31u16, 63, 64, 74, 79, 92, 95, 119, 120]);
                XidEvent::new(
                    t,
                    &host,
                    PciAddr::for_gpu_index(gpu),
                    XidCode::new(code),
                    "pid=9, detail",
                )
                .to_log_line()
            }
        };
        // Bursts: the same line repeated at second offsets (the duplicate
        // storm regime).
        if g.bool_with(0.2) {
            for k in 1..=g.u64_in(1, 4) {
                let mut burst = line.clone();
                burst.time = t + Duration::from_secs(k);
                lines.push(burst);
            }
        }
        // Exact duplicates (identical bytes, identical second).
        if g.bool_with(0.15) {
            lines.push(line.clone());
        }
        lines.push(line);
    }
    // Scramble the push order: the archive's replay order (time, then
    // insertion index) must absorb out-of-order arrival.
    for _ in 0..g.usize_in(0, 10) {
        if lines.len() >= 2 {
            let i = g.usize_in(0, lines.len());
            let j = g.usize_in(0, lines.len());
            lines.swap(i, j);
        }
    }
    lines
}

fn build_archive(lines: &[LogLine]) -> Archive {
    let mut archive = Archive::new();
    for line in lines {
        archive.push(line.clone());
    }
    archive
}

/// The shard-merge determinism property: for any generated archive,
/// `merge(extract(shards(archive))) == canonical_sort(extract(archive))`,
/// with identical extraction counters, at every thread count. On failure
/// the line set shrinks to a minimal counterexample.
#[test]
fn shard_merge_equals_sorted_serial_extract() {
    run_shrinking(
        "shard_merge_equals_sorted_serial_extract",
        200,
        gen_lines,
        |lines| shrink_vec(lines),
        |lines| {
            let archive = build_archive(lines);
            let mut serial = XidExtractor::studied_only(2024);
            let mut expect: Vec<XidEvent> =
                archive.iter().filter_map(|l| serial.extract(l)).collect();
            shard::canonical_sort(&mut expect);
            let template = XidExtractor::studied_only(2024);
            for threads in [1, 2, 4, 8] {
                let (events, stats) = shard::extract_sharded(&archive, &template, threads);
                if events != expect {
                    return Err(format!(
                        "threads={threads}: merged {} events != serial {}",
                        events.len(),
                        expect.len()
                    ));
                }
                if stats != serial.stats() {
                    return Err(format!(
                        "threads={threads}: stats {stats:?} != {:?}",
                        serial.stats()
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Sharding is an exact partition: every replay index appears in exactly
/// one shard, shard hostnames are unique and sorted, and per-shard indices
/// strictly increase (replay order is preserved inside a shard).
#[test]
fn shard_partition_is_exact() {
    run("shard_partition_is_exact", 200, |g| {
        let archive = build_archive(&gen_lines(g));
        let shards = shard::shard_by_host(&archive);
        let mut seqs: Vec<u64> = Vec::new();
        for pair in shards.windows(2) {
            assert!(pair[0].host < pair[1].host);
        }
        for s in &shards {
            assert!(s.lines.iter().all(|(_, l)| l.host == s.host));
            assert!(s.lines.windows(2).all(|w| w[0].0 < w[1].0));
            seqs.extend(s.lines.iter().map(|&(seq, _)| seq));
        }
        seqs.sort_unstable();
        let expect: Vec<u64> = (0..archive.line_count() as u64).collect();
        assert_eq!(seqs, expect);
    });
}

/// The k-way merge is independent of the order in which shard streams are
/// supplied: any permutation of the inputs yields the same output.
#[test]
fn merge_is_stream_order_invariant() {
    run("merge_is_stream_order_invariant", 200, |g| {
        let archive = build_archive(&gen_lines(g));
        let shards = shard::shard_by_host(&archive);
        let mut streams: Vec<Vec<shard::SeqEvent>> = shards
            .iter()
            .map(|s| {
                let mut ex = XidExtractor::studied_only(2024);
                shard::extract_shard(s, &mut ex)
            })
            .collect();
        let forward = shard::merge_events(streams.clone());
        // A seeded Fisher-Yates permutation of the stream list.
        for i in (1..streams.len()).rev() {
            let j = g.usize_in(0, i + 1);
            streams.swap(i, j);
        }
        assert_eq!(shard::merge_events(streams), forward);
    });
}

/// The chunk-parallel lenient scan is observationally identical to the
/// serial one under generated corruption: same events, same counters,
/// same ledger counts, same reservoir exemplars.
#[test]
fn sharded_lenient_scan_matches_serial() {
    run("sharded_lenient_scan_matches_serial", 64, |g| {
        use hpclog::chaos::{ChaosConfig, ChaosInjector};
        let archive = build_archive(&gen_lines(g));
        let rate = g.f64_in(0.0, 0.3);
        let mut chaos = ChaosInjector::new(ChaosConfig::uniform(rate, g.u64()));
        let corrupt = chaos.corrupt_archive(&archive);
        let mut serial = XidExtractor::studied_only(2024);
        let mut serial_ledger = QuarantineLedger::new();
        let expect = serial.scan_reader_lenient(corrupt.as_slice(), &mut serial_ledger);
        let threads = g.usize_in(2, 9);
        let mut sharded = XidExtractor::studied_only(2024);
        let mut ledger = QuarantineLedger::new();
        let events = sharded.scan_reader_lenient_sharded(corrupt.as_slice(), &mut ledger, threads);
        assert_eq!(events, expect, "threads={threads}");
        assert_eq!(sharded.stats(), serial.stats());
        assert_eq!(ledger.counts(), serial_ledger.counts());
        assert_eq!(ledger.exemplars(), serial_ledger.exemplars());
    });
}

/// Render → ingest preserves the archive byte-for-byte.
#[test]
fn archive_day_roundtrip() {
    run("archive_day_roundtrip", 128, |g| {
        let times = g.vec_with(1, 40, study_time);
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub002", "kernel", format!("event {i}")));
        }
        let mut back = Archive::new();
        for (day, _) in archive.days() {
            let text = archive.render_day(day).unwrap();
            let year = Timestamp::from_unix(day * 86_400).ymd().0;
            let (_, skipped) = back.ingest_day(&text, year);
            assert_eq!(skipped, 0);
        }
        let a: Vec<_> = archive.iter().cloned().collect();
        let b: Vec<_> = back.iter().cloned().collect();
        assert_eq!(a, b);
    });
}
