//! Property tests: log line and NVRM body round trips, pattern-engine
//! invariants, archive conservation.

use hpclog::archive::Archive;
use hpclog::pattern::Pattern;
use hpclog::{LogLine, PciAddr, Timestamp, XidEvent};
use proptest::prelude::*;
use xid::XidCode;

/// Timestamps within the study window (2022-2025).
fn study_time() -> impl Strategy<Value = Timestamp> {
    (1_640_995_200u64..1_741_996_800).prop_map(Timestamp::from_unix)
}

/// Hostnames in Delta's convention.
fn hostname() -> impl Strategy<Value = String> {
    (1u16..999).prop_map(|n| format!("gpub{n:03}"))
}

/// Printable body text: no newlines; not starting with whitespace (syslog
/// separators would eat it).
fn body_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9][a-zA-Z0-9 _.:=/()-]{0,80}".prop_map(|s| s.trim_end().to_owned())
}

/// XID detail text: printable, not beginning with space/comma (the wire
/// format separates with ", ").
fn detail_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9][a-zA-Z0-9 _.:=/()-]{0,60}".prop_map(|s| s.trim_end().to_owned())
}

proptest! {
    /// Any structurally valid log line round-trips through rendering.
    #[test]
    fn log_line_roundtrip(time in study_time(), host in hostname(), body in body_text()) {
        let line = LogLine::new(time, host, "kernel", body);
        let year = time.ymd().0;
        let parsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        prop_assert_eq!(parsed, line);
    }

    /// Any XID event with well-formed detail text round-trips through the
    /// NVRM body format.
    #[test]
    fn xid_event_roundtrip(
        time in study_time(),
        host in hostname(),
        gpu in 0u8..8,
        code in 1u16..200,
        detail in detail_text(),
    ) {
        let event = XidEvent::new(time, host, PciAddr::for_gpu_index(gpu), XidCode::new(code), detail);
        let line = event.to_log_line();
        let year = time.ymd().0;
        let reparsed = LogLine::parse_with_year(&line.to_string(), year).unwrap();
        let back = XidEvent::parse_body(reparsed.time, &reparsed.host, &reparsed.body)
            .expect("recognised")
            .expect("parses");
        prop_assert_eq!(back, event);
    }

    /// A pattern built by escaping arbitrary text always matches exactly
    /// that text.
    #[test]
    fn escaped_literal_matches_itself(text in "[ -~]{0,40}") {
        let escaped: String = text
            .chars()
            .flat_map(|c| match c {
                '*' | '{' | '\\' => vec!['\\', c],
                other => vec![other],
            })
            .collect();
        let p = Pattern::compile(&escaped).unwrap();
        prop_assert!(p.matches(&text));
    }

    /// `*text*` matches any string containing `text`.
    #[test]
    fn substring_pattern(hay in "[a-z ]{0,30}", needle in "[a-z]{1,6}", tail in "[a-z ]{0,30}") {
        let text = format!("{hay}{needle}{tail}");
        let p = Pattern::compile(&format!("*{needle}*")).unwrap();
        prop_assert!(p.matches(&text));
    }

    /// Digit captures always return digit-only, non-empty captures.
    #[test]
    fn digit_capture_is_digits(prefix in "[a-z ]{0,10}", n in 0u64..1_000_000, suffix in "[a-z ]{0,10}") {
        let text = format!("{prefix}{n}#{suffix}");
        let p = Pattern::compile("*{d}#*").unwrap();
        let caps = p.captures(&text).expect("must match");
        prop_assert!(!caps[0].is_empty());
        prop_assert!(caps[0].chars().all(|c| c.is_ascii_digit()));
    }

    /// The archive conserves lines: every push is visible, in time order.
    #[test]
    fn archive_conserves_lines(times in proptest::collection::vec(study_time(), 0..50)) {
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub001", "kernel", format!("m{i}")));
        }
        prop_assert_eq!(archive.line_count(), times.len());
        let replayed: Vec<Timestamp> = archive.iter().map(|l| l.time).collect();
        let mut sorted = replayed.clone();
        sorted.sort();
        prop_assert_eq!(replayed, sorted);
    }

    /// Render → ingest preserves the archive byte-for-byte.
    #[test]
    fn archive_day_roundtrip(times in proptest::collection::vec(study_time(), 1..40)) {
        let mut archive = Archive::new();
        for (i, &t) in times.iter().enumerate() {
            archive.push(LogLine::new(t, "gpub002", "kernel", format!("event {i}")));
        }
        let mut back = Archive::new();
        for (day, _) in archive.days() {
            let text = archive.render_day(day).unwrap();
            let year = Timestamp::from_unix(day * 86_400).ymd().0;
            let (_, skipped) = back.ingest_day(&text, year);
            prop_assert_eq!(skipped, 0);
        }
        let a: Vec<_> = archive.iter().cloned().collect();
        let b: Vec<_> = back.iter().cloned().collect();
        prop_assert_eq!(a, b);
    }
}
