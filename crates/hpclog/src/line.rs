//! RFC3164-style syslog line model.

use simtime::{ParseTimestampError, Timestamp};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One syslog record: timestamp, origin host, tag, and message body.
///
/// Rendered in the classic format Delta's consolidated logs use:
///
/// ```text
/// Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, ...
/// ```
///
/// Parsing accepts any tag, with or without a trailing colon. Because the
/// wire format has no year, [`LogLine::parse_with_year`] takes it from
/// context; the [`FromStr`] impl assumes the current study convention of
/// resolving against year 2024 is *not* silently applied — it requires an
/// explicit year via `parse_with_year` except in the common case where the
/// caller immediately re-stamps the timestamp (tests, examples), for which
/// `FromStr` uses 2024.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogLine {
    /// When the record was emitted.
    pub time: Timestamp,
    /// Originating hostname (e.g. `gpub042`).
    pub host: String,
    /// Syslog tag, colon stripped (e.g. `kernel`).
    pub tag: String,
    /// The free-text message body.
    pub body: String,
}

impl LogLine {
    /// Creates a log line.
    pub fn new(
        time: Timestamp,
        host: impl Into<String>,
        tag: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        LogLine {
            time,
            host: host.into(),
            tag: tag.into(),
            body: body.into(),
        }
    }

    /// Parses a rendered line, resolving the year-less syslog timestamp
    /// against `year`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLogLineError`] if the line has fewer than five
    /// whitespace-separated fields or the timestamp is malformed.
    pub fn parse_with_year(line: &str, year: i32) -> Result<Self, ParseLogLineError> {
        // Format: "Mon DD HH:MM:SS host tag: body...".
        let mut fields = line.splitn(6, ' ').filter(|f| !f.is_empty());
        let mon = fields
            .next()
            .ok_or_else(|| ParseLogLineError::missing("empty line"))?;
        let day = fields
            .next()
            .ok_or_else(|| ParseLogLineError::missing("missing day"))?;
        let hms = fields
            .next()
            .ok_or_else(|| ParseLogLineError::missing("missing time"))?;
        let host = fields
            .next()
            .ok_or_else(|| ParseLogLineError::missing("missing host"))?;
        let rest = fields
            .next()
            .ok_or_else(|| ParseLogLineError::missing("missing tag/body"))?;
        // `splitn(6)` above can leave a final chunk if the day was
        // double-spaced (single-digit days); re-join whatever is left.
        let rest = match fields.next() {
            Some(more) => format!("{rest} {more}"),
            None => rest.to_owned(),
        };
        let (tag, body) = rest
            .split_once(':')
            .map(|(t, b)| (t.trim(), b.trim_start()))
            .unwrap_or((rest.trim(), ""));
        let stamp = format!("{mon} {day} {hms}");
        let time = Timestamp::parse_syslog(&stamp, year).map_err(ParseLogLineError::from)?;
        Ok(LogLine {
            time,
            host: host.to_owned(),
            tag: tag.to_owned(),
            body: body.to_owned(),
        })
    }
}

impl fmt::Display for LogLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.time.syslog(),
            self.host,
            self.tag,
            self.body
        )
    }
}

impl FromStr for LogLine {
    type Err = ParseLogLineError;

    /// Parses with a fixed context year of 2024; prefer
    /// [`LogLine::parse_with_year`] in pipeline code where the archive day
    /// supplies the true year.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LogLine::parse_with_year(s, 2024)
    }
}

/// The structural reason a syslog line failed to parse.
///
/// Lenient readers use this to sort rejects into quarantine categories:
/// a line that is missing whole fields was almost certainly truncated in
/// transit, while a line with all five fields but an unparseable stamp
/// has a corrupted timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogLineErrorKind {
    /// Fewer than the five mandatory whitespace-separated fields.
    MissingField,
    /// All fields present but the `Mon DD HH:MM:SS` stamp is invalid.
    BadTimestamp,
}

/// Error returned when a syslog line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogLineError {
    kind: LogLineErrorKind,
    what: String,
}

impl ParseLogLineError {
    fn missing(what: impl Into<String>) -> Self {
        ParseLogLineError {
            kind: LogLineErrorKind::MissingField,
            what: what.into(),
        }
    }

    /// The structural reason the parse failed.
    pub fn kind(&self) -> LogLineErrorKind {
        self.kind
    }
}

impl fmt::Display for ParseLogLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid syslog line: {}", self.what)
    }
}

impl Error for ParseLogLineError {}

impl From<ParseTimestampError> for ParseLogLineError {
    fn from(err: ParseTimestampError) -> Self {
        ParseLogLineError {
            kind: LogLineErrorKind::BadTimestamp,
            what: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Duration;

    fn sample_time() -> Timestamp {
        Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7).unwrap()
    }

    #[test]
    fn render_parse_roundtrip() {
        let line = LogLine::new(sample_time(), "gpub042", "kernel", "NVRM: Xid: test body");
        let rendered = line.to_string();
        let parsed = LogLine::parse_with_year(&rendered, 2024).unwrap();
        assert_eq!(parsed, line);
    }

    #[test]
    fn roundtrip_single_digit_day() {
        // Single-digit days are space-padded: "May  5" has two spaces.
        let t = Timestamp::from_ymd_hms(2022, 5, 5, 0, 0, 1).unwrap();
        let line = LogLine::new(t, "gpub001", "kernel", "hello world");
        let parsed = LogLine::parse_with_year(&line.to_string(), 2022).unwrap();
        assert_eq!(parsed, line);
    }

    #[test]
    fn tag_without_colon_parses() {
        let raw = "Mar 14 03:22:07 gpub042 healthd all checks passed";
        let parsed = LogLine::parse_with_year(raw, 2024).unwrap();
        // Without a colon the first token after host becomes the whole tag
        // field content; body may absorb the rest.
        assert_eq!(parsed.host, "gpub042");
    }

    #[test]
    fn body_preserves_internal_colons() {
        let raw = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, detail";
        let parsed = LogLine::parse_with_year(raw, 2024).unwrap();
        assert_eq!(parsed.tag, "kernel");
        assert_eq!(parsed.body, "NVRM: Xid (PCI:0000:27:00): 79, detail");
    }

    #[test]
    fn rejects_truncated_lines() {
        for bad in [
            "",
            "Mar",
            "Mar 14",
            "Mar 14 03:22:07",
            "Mar 14 03:22:07 host",
        ] {
            assert!(LogLine::parse_with_year(bad, 2024).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_bad_timestamp() {
        let raw = "Xyz 14 03:22:07 gpub042 kernel: body";
        assert!(LogLine::parse_with_year(raw, 2024).is_err());
    }

    #[test]
    fn fromstr_uses_2024() {
        let line: LogLine = "Feb 29 12:00:00 gpub001 kernel: leap day".parse().unwrap();
        assert_eq!(line.time.ymd(), (2024, 2, 29));
    }

    #[test]
    fn error_display_mentions_cause() {
        let err = LogLine::parse_with_year("", 2024).unwrap_err();
        assert!(err.to_string().contains("empty line"));
    }

    #[test]
    fn error_kinds_discriminate_truncation_from_bad_stamp() {
        for cut in [
            "",
            "Mar",
            "Mar 14",
            "Mar 14 03:22:07",
            "Mar 14 03:22:07 host",
        ] {
            let err = LogLine::parse_with_year(cut, 2024).unwrap_err();
            assert_eq!(err.kind(), LogLineErrorKind::MissingField, "{cut:?}");
        }
        for bad in [
            "Xyz 14 03:22:07 gpub042 kernel: body",
            "Mar 99 03:22:07 gpub042 kernel: body",
            "Mar 14 03:99:07 gpub042 kernel: body",
        ] {
            let err = LogLine::parse_with_year(bad, 2024).unwrap_err();
            assert_eq!(err.kind(), LogLineErrorKind::BadTimestamp, "{bad:?}");
        }
    }

    #[test]
    fn ordering_by_time_possible_via_field() {
        let a = LogLine::new(sample_time(), "h", "t", "b");
        let b = LogLine::new(sample_time() + Duration::from_secs(1), "h", "t", "b");
        assert!(a.time < b.time);
    }
}
