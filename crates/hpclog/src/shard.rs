//! Host-sharded parallel ingestion with a deterministic merge.
//!
//! Stage I is embarrassingly parallel along the cluster's natural hardware
//! axis: every syslog line names exactly one host, and no Stage-II
//! computation (coalescing keys on `(host, pci, kind)`) ever combines
//! events from different hosts. This module partitions an [`Archive`] into
//! per-host shards, extracts each shard independently on a
//! [`std::thread::scope`] worker pool, and k-way merges the per-shard event
//! streams back into one totally ordered stream.
//!
//! # The ordering invariant
//!
//! Serial replay yields events in `(time, seq)` order, where `seq` is the
//! line's global replay index (its position in [`Archive::iter`]). That
//! order is *not* recoverable from per-host shards: when two hosts log at
//! the same second, their relative `seq` order is lost at the shard
//! boundary. The pipeline therefore defines one **canonical order** —
//! `(time, host, seq)` — and both paths produce it:
//!
//! * `seq` is unique, so the triple is a total order (no ties, no
//!   tie-break ambiguity, no dependence on sort stability).
//! * Within one host, `time` is non-decreasing in `seq` (each shard
//!   preserves replay order), so every shard stream is already sorted by
//!   the full key and a heap merge of shards *is* the canonical order.
//! * A serial event stream reaches the same order via a **stable** sort on
//!   the `(time, host)` prefix: stability preserves `seq` order inside
//!   each `(time, host)` tie class, which realises the full triple without
//!   materialising `seq` at all ([`canonical_sort`]).
//!
//! Canonical order differs from serial replay order only in the relative
//! placement of *different hosts* within one timestamp — which no
//! aggregate in the pipeline can observe, because no stage merges across
//! hosts. The analysis numbers are identical; the canonical order merely
//! pins the report's event listing to one byte sequence for every entry
//! path and thread count.

use crate::archive::Archive;
use crate::extract::{ExtractStats, XidExtractor};
use crate::line::{LogLine, LogLineErrorKind};
use crate::nvrm::XidEvent;
use crate::quarantine::{QuarantineCategory, QuarantineLedger};
use simtime::Timestamp;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// An extracted event tagged with the global replay index of its source
/// line (its position in [`Archive::iter`] order).
pub type SeqEvent = (u64, XidEvent);

/// All of one host's log lines, in global replay order, each tagged with
/// its replay index.
#[derive(Debug)]
pub struct HostShard<'a> {
    /// The hostname every line in this shard carries.
    pub host: &'a str,
    /// `(replay index, line)` pairs; the index is strictly increasing.
    pub lines: Vec<(u64, &'a LogLine)>,
}

/// Partitions an archive into per-host shards.
///
/// Shards come back sorted by hostname (a `BTreeMap` walk), so the
/// partition itself is deterministic; every line of the archive lands in
/// exactly one shard, tagged with its global replay index.
pub fn shard_by_host(archive: &Archive) -> Vec<HostShard<'_>> {
    let mut by_host: BTreeMap<&str, Vec<(u64, &LogLine)>> = BTreeMap::new();
    for (seq, line) in archive.iter().enumerate() {
        by_host
            .entry(line.host.as_str())
            .or_default()
            .push((seq as u64, line));
    }
    by_host
        .into_iter()
        .map(|(host, lines)| HostShard { host, lines })
        .collect()
}

/// Extracts one shard's events, preserving the replay-index tags.
///
/// The extractor accumulates this shard's counters; merge per-shard stats
/// with [`ExtractStats::merge`] to recover the serial totals.
pub fn extract_shard(shard: &HostShard<'_>, extractor: &mut XidExtractor) -> Vec<SeqEvent> {
    shard
        .lines
        .iter()
        .filter_map(|&(seq, line)| extractor.extract(line).map(|ev| (seq, ev)))
        .collect()
}

/// One stream's head, queued for the generic k-way merge. Ordered by the
/// caller's comparator, ties broken by stream index so the merge is a
/// deterministic function of the input streams.
struct Pending<'c, T, C: Fn(&T, &T) -> std::cmp::Ordering> {
    item: T,
    stream: usize,
    cmp: &'c C,
}

impl<T, C: Fn(&T, &T) -> std::cmp::Ordering> Pending<'_, T, C> {
    fn order(&self, other: &Self) -> std::cmp::Ordering {
        (self.cmp)(&self.item, &other.item).then(self.stream.cmp(&other.stream))
    }
}

impl<T, C: Fn(&T, &T) -> std::cmp::Ordering> PartialEq for Pending<'_, T, C> {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == std::cmp::Ordering::Equal
    }
}
impl<T, C: Fn(&T, &T) -> std::cmp::Ordering> Eq for Pending<'_, T, C> {}
impl<T, C: Fn(&T, &T) -> std::cmp::Ordering> PartialOrd for Pending<'_, T, C> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, C: Fn(&T, &T) -> std::cmp::Ordering> Ord for Pending<'_, T, C> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order(other)
    }
}

/// K-way merges streams that are each already sorted under `cmp` into one
/// stream sorted under `cmp`.
///
/// The heap holds at most one head per stream, so the merge is
/// O(n log k) with no element clones. Elements that compare equal come
/// out in stream-index order, so the result is a deterministic function
/// of the inputs (and, when the merge key is unique across streams — the
/// pipeline's `(time, host, seq)` triple, the serving store's global row
/// id — independent of how items are distributed over streams).
///
/// This is the one merge kernel in the workspace: the sharded ingest
/// pipeline merges per-host event streams through it, `servd`'s
/// scatter-gather store merges per-shard query slices with the same
/// machinery, and the rollup layer merges per-shard cube cells by bucket
/// start (summing equal starts afterwards) — which is why a rollup cube
/// is byte-identical whether the store was built with 1 shard or 8.
pub fn merge_sorted_by<T, C: Fn(&T, &T) -> std::cmp::Ordering>(
    streams: Vec<Vec<T>>,
    cmp: C,
) -> Vec<T> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<Pending<'_, T, C>>> = BinaryHeap::with_capacity(streams.len());
    let mut tails: Vec<std::vec::IntoIter<T>> = Vec::with_capacity(streams.len());
    for (stream, items) in streams.into_iter().enumerate() {
        let mut iter = items.into_iter();
        if let Some(item) = iter.next() {
            heap.push(Reverse(Pending {
                item,
                stream,
                cmp: &cmp,
            }));
        }
        tails.push(iter);
    }
    while let Some(Reverse(head)) = heap.pop() {
        if let Some(item) = tails[head.stream].next() {
            heap.push(Reverse(Pending {
                item,
                stream: head.stream,
                cmp: &cmp,
            }));
        }
        out.push(head.item);
    }
    out
}

/// K-way merges per-shard event streams into canonical
/// `(time, host, seq)` order.
///
/// Each input stream must itself be sorted by that key — which every
/// stream produced by [`extract_shard`] is (see the module docs). A thin
/// wrapper over [`merge_sorted_by`]; the result is independent of the
/// order in which the streams are supplied because the triple is unique.
pub fn merge_events(streams: Vec<Vec<SeqEvent>>) -> Vec<XidEvent> {
    merge_sorted_by(streams, |a: &SeqEvent, b: &SeqEvent| {
        let ka: (Timestamp, &str, u64) = (a.1.time, a.1.host.as_str(), a.0);
        let kb: (Timestamp, &str, u64) = (b.1.time, b.1.host.as_str(), b.0);
        ka.cmp(&kb)
    })
    .into_iter()
    .map(|(_, ev)| ev)
    .collect()
}

/// Stable-sorts events into canonical order.
///
/// A **stable** sort by the `(time, host)` prefix: on any stream whose
/// equal-`(time, host)` runs are already in replay order (serial
/// extraction output, or a [`merge_events`] result), this realises the
/// full `(time, host, seq)` total order without carrying `seq`.
pub fn canonical_sort(events: &mut [XidEvent]) {
    events.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.host.cmp(&b.host)));
}

/// Shards `archive` by host and extracts every shard on `threads` scoped
/// workers, returning the canonically ordered event stream and the merged
/// counters.
///
/// `template` supplies the extractor configuration (resolution year and
/// study filter); each shard gets a fresh extractor cloned from it, so the
/// template's own counters are not double-counted (pass a fresh one).
/// Shards are handed out through an atomic cursor, so whichever worker is
/// free takes the next shard — the >1M-line storm host does not serialise
/// the tail — while results are reassembled by shard index, making the
/// output identical at every thread count, including `threads == 1`.
pub fn extract_sharded(
    archive: &Archive,
    template: &XidExtractor,
    threads: usize,
) -> (Vec<XidEvent>, ExtractStats) {
    let mut span = obs::span("stage_shard_extract");
    let shards = shard_by_host(archive);
    let workers = threads.max(1).min(shards.len().max(1));
    let mut results: Vec<(Vec<SeqEvent>, ExtractStats)> = if workers <= 1 {
        shards
            .iter()
            .map(|shard| {
                let mut ex = template.fresh();
                let events = extract_shard(shard, &mut ex);
                (events, ex.stats())
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<Option<(Vec<SeqEvent>, ExtractStats)>> = Vec::new();
        collected.resize_with(shards.len(), || None);
        let mut per_worker = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let shards = &shards;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(shard) = shards.get(idx) else { break };
                            let mut ex = template.fresh();
                            let events = extract_shard(shard, &mut ex);
                            mine.push((idx, (events, ex.stats())));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        });
        for (idx, result) in per_worker.drain(..).flatten() {
            collected[idx] = Some(result);
        }
        collected
            .into_iter()
            .map(|slot| slot.expect("every shard index was claimed exactly once"))
            .collect()
    };
    let mut stats = ExtractStats::default();
    let mut streams = Vec::with_capacity(results.len());
    for (events, shard_stats) in results.drain(..) {
        stats.merge(&shard_stats);
        streams.push(events);
    }
    span.add_items(stats.lines_seen);
    if obs::is_enabled() {
        obs::counter("hpclog_shards_extracted_total", &[]).add(streams.len() as u64);
        obs::gauge("hpclog_shard_merge_depth", &[]).set_max(streams.len() as u64);
        crate::extract::record_scan_metrics(&ExtractStats::default(), &stats);
    }
    (merge_events(streams), stats)
}

impl XidExtractor {
    /// A fresh extractor with this one's configuration and zeroed counters.
    pub fn fresh(&self) -> Self {
        if self.studied_only {
            XidExtractor::studied_only(self.year)
        } else {
            XidExtractor::new(self.year)
        }
    }
}

/// What one line of a lenient scan turned out to be, as decided by the
/// parallel classification phase. Everything order-dependent (quarantine
/// recording, the monotonic-clock anchor, counter updates) is deferred to
/// the serial fold.
enum LineClass {
    /// Rejected; the category fully determines the counter updates.
    Reject(QuarantineCategory),
    /// Parsed cleanly: the line's timestamp, plus the XID event if the
    /// body was an `NVRM: Xid` message.
    Accepted(Timestamp, Option<XidEvent>),
}

/// Classifies one raw line exactly as the serial lenient scan would,
/// *excluding* the order-dependent out-of-order check.
fn classify(raw: &[u8], year: i32, max_line_bytes: usize) -> LineClass {
    if raw.len() > max_line_bytes {
        return LineClass::Reject(QuarantineCategory::OversizedLine);
    }
    let Ok(text) = std::str::from_utf8(raw) else {
        return LineClass::Reject(QuarantineCategory::Encoding);
    };
    let line = match LogLine::parse_with_year(text, year) {
        Ok(line) => line,
        Err(err) => {
            return LineClass::Reject(match err.kind() {
                LogLineErrorKind::MissingField => QuarantineCategory::Truncated,
                LogLineErrorKind::BadTimestamp => QuarantineCategory::MalformedTimestamp,
            });
        }
    };
    match XidEvent::parse_body(line.time, &line.host, &line.body) {
        Some(Ok(ev)) => LineClass::Accepted(line.time, Some(ev)),
        Some(Err(_)) => LineClass::Reject(QuarantineCategory::BadXid),
        None => LineClass::Accepted(line.time, None),
    }
}

/// Splits a buffered stream into `(line number, byte range)` spans with
/// the exact semantics of the serial `read_until`-based loop: physical
/// lines are delimited by `\n`, every physical line consumes a line
/// number, trailing `\n`/`\r` bytes are trimmed, and lines that are empty
/// after trimming are dropped (they carry no data to lose).
fn split_lines(buf: &[u8]) -> Vec<(u64, std::ops::Range<usize>)> {
    let mut spans = Vec::new();
    let mut line_no: u64 = 0;
    let mut start = 0usize;
    while start < buf.len() {
        let end = match buf[start..].iter().position(|&b| b == b'\n') {
            Some(p) => start + p + 1,
            None => buf.len(),
        };
        line_no += 1;
        let mut trimmed = end;
        while trimmed > start && (buf[trimmed - 1] == b'\n' || buf[trimmed - 1] == b'\r') {
            trimmed -= 1;
        }
        if trimmed > start {
            spans.push((line_no, start..trimmed));
        }
        start = end;
    }
    spans
}

/// Reads the whole stream leniently: an I/O failure records one ledger
/// entry and ends the read, keeping only complete lines — the partial
/// line the failure interrupted is dropped, exactly as the serial scan's
/// `read_until` drops it.
fn read_all_lenient<R: std::io::Read>(mut reader: R, ledger: &mut QuarantineLedger) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                ledger.record_io_error();
                match buf.iter().rposition(|&b| b == b'\n') {
                    Some(p) => buf.truncate(p + 1),
                    None => buf.clear(),
                }
                break;
            }
        }
    }
    buf
}

impl XidExtractor {
    /// A chunk-parallel [`scan_reader_lenient`](Self::scan_reader_lenient):
    /// identical events, identical counters, identical ledger — including
    /// the reservoir-sampled exemplars — at every thread count.
    ///
    /// The scan runs in three phases:
    ///
    /// 1. **Read + split** (serial): buffer the stream and split it into
    ///    line spans, replicating the serial loop's line numbering and
    ///    trimming. Lenient scans already presume re-runnable sources;
    ///    buffering trades O(stream) memory for parallelism.
    /// 2. **Classify** (parallel): UTF-8 validation, syslog parsing and
    ///    XID body parsing — the dominant cost — on chunk shards handed
    ///    out through an atomic cursor.
    /// 3. **Fold** (serial): walk the classifications in line order,
    ///    applying the out-of-order anchor, the study filter, every
    ///    counter, and all ledger recording. The anchor is inherently
    ///    sequential and the exemplar reservoir is sampled from a seeded
    ///    stream where record *order* determines which exemplars survive,
    ///    so this phase cannot be parallelised without changing results.
    pub fn scan_reader_lenient_sharded<R: std::io::Read>(
        &mut self,
        reader: R,
        ledger: &mut QuarantineLedger,
        threads: usize,
    ) -> Vec<XidEvent> {
        let before = self.stats;
        let mut stage = obs::span("stage_scan");
        let buf = read_all_lenient(reader, ledger);
        let spans = split_lines(&buf);
        let year = self.year;
        let max_line_bytes = ledger.max_line_bytes();
        let workers = threads.max(1).min(spans.len().max(1));
        let classes: Vec<LineClass> = if workers <= 1 {
            spans
                .iter()
                .map(|(_, span)| classify(&buf[span.clone()], year, max_line_bytes))
                .collect()
        } else {
            // Over-decompose so a chunk dense in cheap noise lines cannot
            // straggle the pool.
            let chunk_count = (workers * 8).min(spans.len());
            let chunk_size = spans.len().div_ceil(chunk_count);
            let chunks: Vec<&[(u64, std::ops::Range<usize>)]> = spans.chunks(chunk_size).collect();
            let cursor = AtomicUsize::new(0);
            let mut collected: Vec<Option<Vec<LineClass>>> = Vec::new();
            collected.resize_with(chunks.len(), || None);
            let per_worker = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let chunks = &chunks;
                        let buf = &buf;
                        scope.spawn(move || {
                            let mut mine = Vec::new();
                            loop {
                                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(chunk) = chunks.get(idx) else { break };
                                let classed: Vec<LineClass> = chunk
                                    .iter()
                                    .map(|(_, span)| {
                                        classify(&buf[span.clone()], year, max_line_bytes)
                                    })
                                    .collect();
                                mine.push((idx, classed));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("classify worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (idx, classed) in per_worker.into_iter().flatten() {
                collected[idx] = Some(classed);
            }
            collected
                .into_iter()
                .flat_map(|slot| slot.expect("every chunk index was claimed exactly once"))
                .collect()
        };
        debug_assert_eq!(classes.len(), spans.len());
        // Phase 3: the serial fold. Byte-for-byte the same observable
        // effects as the serial scan's per-line tail.
        let mut events = Vec::new();
        let mut prev_accepted: Option<Timestamp> = None;
        for ((line_no, span), class) in spans.into_iter().zip(classes) {
            let raw = &buf[span];
            self.stats.lines_seen += 1;
            match class {
                LineClass::Reject(category) => {
                    if category == QuarantineCategory::BadXid {
                        self.stats.xid_lines += 1;
                        self.stats.malformed += 1;
                    }
                    self.quarantine(ledger, category, line_no, raw);
                }
                LineClass::Accepted(time, xid) => {
                    if xid.is_some() {
                        self.stats.xid_lines += 1;
                    }
                    if prev_accepted.is_some_and(|prev| time < prev) {
                        self.quarantine(ledger, QuarantineCategory::OutOfOrder, line_no, raw);
                        continue;
                    }
                    prev_accepted = Some(time);
                    if let Some(ev) = xid {
                        if self.studied_only && !ev.kind().is_studied() {
                            self.stats.excluded += 1;
                        } else {
                            self.stats.extracted += 1;
                            events.push(ev);
                        }
                    }
                }
            }
        }
        stage.add_items(self.stats.lines_seen - before.lines_seen);
        crate::extract::record_scan_metrics(&before, &self.stats);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Archive;

    const HOSTS: [&str; 3] = ["gpub001", "gpub002", "gpub077"];

    fn xid_line(t: Timestamp, host: &str) -> LogLine {
        LogLine::new(
            t,
            host,
            "kernel",
            "NVRM: Xid (PCI:0000:27:00): 79, pid=9, GPU has fallen off the bus.",
        )
    }

    fn noise_line(t: Timestamp, host: &str) -> LogLine {
        LogLine::new(t, host, "kernel", "usb 3-2: new high-speed USB device")
    }

    fn mixed_archive() -> Archive {
        let mut archive = Archive::new();
        let base = Timestamp::from_ymd_hms(2024, 3, 14, 3, 0, 0).unwrap();
        for i in 0..60u64 {
            let t = base + simtime::Duration::from_secs(i * 7);
            let host = HOSTS[(i % 3) as usize];
            if i % 2 == 0 {
                archive.push(xid_line(t, host));
            } else {
                archive.push(noise_line(t, host));
            }
            // Same-second lines on a *different* host: exercises the
            // cross-host tie the canonical order must pin down.
            if i % 5 == 0 {
                archive.push(xid_line(t, HOSTS[((i + 1) % 3) as usize]));
            }
        }
        archive
    }

    fn serial_reference(archive: &Archive) -> (Vec<XidEvent>, ExtractStats) {
        let mut ex = XidExtractor::studied_only(2024);
        let mut events: Vec<XidEvent> = archive.iter().filter_map(|l| ex.extract(l)).collect();
        canonical_sort(&mut events);
        (events, ex.stats())
    }

    #[test]
    fn every_line_lands_in_exactly_one_shard() {
        let archive = mixed_archive();
        let shards = shard_by_host(&archive);
        let mut seqs: Vec<u64> = shards
            .iter()
            .flat_map(|s| s.lines.iter().map(|&(seq, _)| seq))
            .collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (0..archive.line_count() as u64).collect();
        assert_eq!(seqs, expect);
        // Hostnames are unique and sorted; per-shard seqs strictly increase.
        for pair in shards.windows(2) {
            assert!(pair[0].host < pair[1].host);
        }
        for shard in &shards {
            assert!(shard.lines.iter().all(|(_, l)| l.host == shard.host));
            assert!(shard.lines.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn sharded_extraction_matches_serial_at_every_thread_count() {
        let archive = mixed_archive();
        let (expect_events, expect_stats) = serial_reference(&archive);
        let template = XidExtractor::studied_only(2024);
        for threads in [1, 2, 3, 4, 8] {
            let (events, stats) = extract_sharded(&archive, &template, threads);
            assert_eq!(events, expect_events, "threads={threads}");
            assert_eq!(stats, expect_stats, "threads={threads}");
        }
    }

    #[test]
    fn merge_is_stream_order_independent() {
        let archive = mixed_archive();
        let shards = shard_by_host(&archive);
        let extract_all = |reversed: bool| {
            let mut streams: Vec<Vec<SeqEvent>> = shards
                .iter()
                .map(|s| {
                    let mut ex = XidExtractor::studied_only(2024);
                    extract_shard(s, &mut ex)
                })
                .collect();
            if reversed {
                streams.reverse();
            }
            merge_events(streams)
        };
        assert_eq!(extract_all(false), extract_all(true));
    }

    #[test]
    fn empty_archive_yields_empty_stream() {
        let archive = Archive::new();
        let template = XidExtractor::studied_only(2024);
        let (events, stats) = extract_sharded(&archive, &template, 4);
        assert!(events.is_empty());
        assert_eq!(stats, ExtractStats::default());
    }

    #[test]
    fn split_lines_matches_read_until_semantics() {
        let buf = b"abc\r\r\n\n\r\nxyz";
        let spans = split_lines(buf);
        // Line 1 = "abc" (CRs trimmed), lines 2 and 3 empty (skipped but
        // numbered), line 4 = trailing bytes with no newline.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, 1);
        assert_eq!(&buf[spans[0].1.clone()], b"abc");
        assert_eq!(spans[1].0, 4);
        assert_eq!(&buf[spans[1].1.clone()], b"xyz");
    }

    #[test]
    fn sharded_lenient_matches_serial_with_corruption() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let archive = mixed_archive();
        for rate in [0.0, 0.05, 0.35] {
            let mut chaos = ChaosInjector::new(ChaosConfig::uniform(rate, 0x5AD));
            let corrupt = chaos.corrupt_archive(&archive);
            let mut serial_ex = XidExtractor::studied_only(2024);
            let mut serial_ledger = QuarantineLedger::new();
            let expect = serial_ex.scan_reader_lenient(corrupt.as_slice(), &mut serial_ledger);
            for threads in [1, 2, 4, 8] {
                let mut ex = XidExtractor::studied_only(2024);
                let mut ledger = QuarantineLedger::new();
                let events =
                    ex.scan_reader_lenient_sharded(corrupt.as_slice(), &mut ledger, threads);
                assert_eq!(events, expect, "rate={rate} threads={threads}");
                assert_eq!(
                    ex.stats(),
                    serial_ex.stats(),
                    "rate={rate} threads={threads}"
                );
                assert_eq!(
                    ledger.counts(),
                    serial_ledger.counts(),
                    "rate={rate} threads={threads}"
                );
                assert_eq!(
                    ledger.exemplars(),
                    serial_ledger.exemplars(),
                    "rate={rate} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_lenient_drops_partial_line_on_io_error() {
        struct Flaky {
            fed: bool,
        }
        impl std::io::Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.fed {
                    return Err(std::io::Error::other("disk on fire"));
                }
                self.fed = true;
                // One complete line plus the head of a second.
                let text = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, \
                            pid=1234, GPU has fallen off the bus.\nMar 14 03:2";
                buf[..text.len()].copy_from_slice(text.as_bytes());
                Ok(text.len())
            }
        }
        let mut ex = XidExtractor::new(2024);
        let mut ledger = QuarantineLedger::new();
        let events = ex.scan_reader_lenient_sharded(Flaky { fed: false }, &mut ledger, 4);
        assert_eq!(events.len(), 1);
        assert_eq!(ledger.io_errors(), 1);
        // The partial second line is dropped, not quarantined as truncated.
        assert_eq!(ledger.total(), 0);
        assert_eq!(ex.stats().lines_seen, 1);
    }
}
