//! A small log-filtering pattern engine (the "RegEX pattern-matching" stage
//! of the paper's Fig. 1, Stage I).
//!
//! Full regular expressions are overkill for log extraction — the pipeline
//! only ever needs literals, wildcards and typed captures — so this module
//! implements exactly that, compiled once and matched millions of times:
//!
//! | Syntax | Meaning |
//! |--------|---------|
//! | `abc`  | literal text |
//! | `*`    | any (possibly empty) sequence, not captured |
//! | `{*}`  | any (possibly empty) sequence, captured |
//! | `{d}`  | one or more ASCII digits, captured |
//! | `{w}`  | one or more non-space characters, captured |
//! | `\x`   | escapes `x` (to match a literal `*`, `{`, or `\`) |
//!
//! # Example
//!
//! ```
//! use hpclog::pattern::Pattern;
//!
//! let p = Pattern::compile(r"NVRM: Xid (PCI:{w}): {d},*")?;
//! let caps = p.captures("NVRM: Xid (PCI:0000:27:00): 79, GPU has fallen off the bus.")
//!     .expect("line matches");
//! assert_eq!(caps, vec!["0000:27:00", "79"]);
//! # Ok::<(), hpclog::pattern::PatternError>(())
//! ```

use std::error::Error;
use std::fmt;

/// One element of a compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// Exact text.
    Literal(String),
    /// `*` — any run, not captured.
    Any,
    /// `{*}` — any run, captured.
    AnyCapture,
    /// `{d}` — one or more digits, captured.
    Digits,
    /// `{w}` — one or more non-space characters, captured.
    Word,
}

/// A compiled log-filter pattern. See the [module docs](self) for syntax.
///
/// Matching is anchored at both ends: the pattern must cover the whole
/// input. Use leading/trailing `*` for substring semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    tokens: Vec<Token>,
    source: String,
}

impl Pattern {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] on an unknown `{...}` capture class, an
    /// unterminated `{`, or a trailing `\`.
    pub fn compile(source: &str) -> Result<Self, PatternError> {
        let mut tokens = Vec::new();
        let mut literal = String::new();
        let mut chars = source.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some(esc) => literal.push(esc),
                    None => return Err(PatternError::new("trailing backslash")),
                },
                '*' => {
                    if !literal.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut literal)));
                    }
                    // Collapse consecutive wildcards.
                    if tokens.last() != Some(&Token::Any) {
                        tokens.push(Token::Any);
                    }
                }
                '{' => {
                    let mut class = String::new();
                    let mut closed = false;
                    for cc in chars.by_ref() {
                        if cc == '}' {
                            closed = true;
                            break;
                        }
                        class.push(cc);
                    }
                    if !closed {
                        return Err(PatternError::new("unterminated '{'"));
                    }
                    if !literal.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut literal)));
                    }
                    tokens.push(match class.as_str() {
                        "*" => Token::AnyCapture,
                        "d" => Token::Digits,
                        "w" => Token::Word,
                        other => {
                            return Err(PatternError::new(format!(
                                "unknown capture class {{{other}}} (expected {{*}}, {{d}} or {{w}})"
                            )))
                        }
                    });
                }
                other => literal.push(other),
            }
        }
        if !literal.is_empty() {
            tokens.push(Token::Literal(literal));
        }
        Ok(Pattern {
            tokens,
            source: source.to_owned(),
        })
    }

    /// The source string the pattern was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The number of captures a successful match will produce.
    pub fn capture_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t, Token::AnyCapture | Token::Digits | Token::Word))
            .count()
    }

    /// The longest literal fragment, usable as a cheap pre-filter
    /// (`line.contains(lit)`) before full matching.
    pub fn longest_literal(&self) -> Option<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match t {
                Token::Literal(s) => Some(s.as_str()),
                _ => None,
            })
            .max_by_key(|s| s.len())
    }

    /// Whether `text` matches the whole pattern.
    pub fn matches(&self, text: &str) -> bool {
        self.try_match(text, &mut Vec::new())
    }

    /// Matches and returns the captured substrings, or `None` on mismatch.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Vec<&'t str>> {
        let mut spans = Vec::new();
        if self.try_match(text, &mut spans) {
            Some(spans.iter().map(|&(s, e)| &text[s..e]).collect())
        } else {
            None
        }
    }

    fn try_match(&self, text: &str, spans: &mut Vec<(usize, usize)>) -> bool {
        spans.clear();
        let mut failed = std::collections::HashSet::new();
        match_tokens(&self.tokens, 0, text, 0, spans, &mut failed)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

/// Recursive matcher with backtracking over variable-length tokens.
///
/// `pos` is a byte offset into `text`; all candidate split points are
/// produced on `char` boundaries so slicing is always valid UTF-8. `failed`
/// memoises `(token index, position)` states that are known not to match,
/// bounding worst-case work to O(tokens × positions²) even for pathological
/// wildcard pile-ups.
fn match_tokens(
    tokens: &[Token],
    idx: usize,
    text: &str,
    pos: usize,
    spans: &mut Vec<(usize, usize)>,
    failed: &mut std::collections::HashSet<(usize, usize)>,
) -> bool {
    let Some(tok) = tokens.get(idx) else {
        return pos == text.len();
    };
    if failed.contains(&(idx, pos)) {
        return false;
    }
    let rest = &text[pos..];
    let ok = match tok {
        Token::Literal(lit) => {
            rest.starts_with(lit.as_str())
                && match_tokens(tokens, idx + 1, text, pos + lit.len(), spans, failed)
        }
        Token::Any | Token::AnyCapture => {
            let capturing = matches!(tok, Token::AnyCapture);
            // Try shortest first; wildcard runs are typically short.
            let mut hit = false;
            for end in char_boundaries(rest, pos) {
                if capturing {
                    spans.push((pos, end));
                }
                if match_tokens(tokens, idx + 1, text, end, spans, failed) {
                    hit = true;
                    break;
                }
                if capturing {
                    spans.pop();
                }
            }
            hit
        }
        Token::Digits => {
            let max = rest
                .char_indices()
                .take_while(|&(_, c)| c.is_ascii_digit())
                .map(|(i, c)| i + c.len_utf8())
                .last();
            match max {
                None => false,
                Some(max) => {
                    // Greedy, backing off one digit at a time.
                    let mut len = max;
                    let mut hit = false;
                    loop {
                        spans.push((pos, pos + len));
                        if match_tokens(tokens, idx + 1, text, pos + len, spans, failed) {
                            hit = true;
                            break;
                        }
                        spans.pop();
                        if len <= 1 {
                            break;
                        }
                        len -= 1;
                    }
                    hit
                }
            }
        }
        Token::Word => {
            let max = rest
                .char_indices()
                .take_while(|&(_, c)| !c.is_whitespace())
                .map(|(i, c)| i + c.len_utf8())
                .last();
            match max {
                None => false,
                Some(max) => {
                    let boundaries: Vec<usize> = rest[..max]
                        .char_indices()
                        .map(|(i, c)| pos + i + c.len_utf8())
                        .collect();
                    // Greedy, backing off on char boundaries.
                    let mut hit = false;
                    for &end in boundaries.iter().rev() {
                        spans.push((pos, end));
                        if match_tokens(tokens, idx + 1, text, end, spans, failed) {
                            hit = true;
                            break;
                        }
                        spans.pop();
                    }
                    hit
                }
            }
        }
    };
    if !ok {
        failed.insert((idx, pos));
    }
    ok
}

/// All byte offsets that are valid end positions for a wildcard starting at
/// `pos` (i.e. `pos` itself plus every subsequent char boundary).
fn char_boundaries(rest: &str, pos: usize) -> impl Iterator<Item = usize> + '_ {
    std::iter::once(pos).chain(
        rest.char_indices()
            .map(move |(i, c)| pos + i + c.len_utf8()),
    )
}

/// Error returned when a pattern fails to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    what: String,
}

impl PatternError {
    fn new(what: impl Into<String>) -> Self {
        PatternError { what: what.into() }
    }
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.what)
    }
}

impl Error for PatternError {}

/// A disjunction of patterns with a shared literal pre-filter, for
/// high-volume log scanning.
///
/// # Example
///
/// ```
/// use hpclog::pattern::FilterSet;
///
/// let filter = FilterSet::compile(&[r"*Xid*", r"*remapping*"])?;
/// assert!(filter.matches("NVRM: Xid (PCI:0000:27:00): 79"));
/// assert!(!filter.matches("usb 3-2: device descriptor read"));
/// # Ok::<(), hpclog::pattern::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FilterSet {
    patterns: Vec<Pattern>,
}

impl FilterSet {
    /// Compiles every source pattern.
    ///
    /// # Errors
    ///
    /// Returns the first [`PatternError`] encountered.
    pub fn compile(sources: &[&str]) -> Result<Self, PatternError> {
        let patterns = sources
            .iter()
            .map(|s| Pattern::compile(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FilterSet { patterns })
    }

    /// Whether any pattern matches.
    pub fn matches(&self, text: &str) -> bool {
        self.patterns.iter().any(|p| {
            match p.longest_literal() {
                // Cheap reject: the longest literal must appear somewhere.
                Some(lit) if !text.contains(lit) => false,
                _ => p.matches(text),
            }
        })
    }

    /// The index of the first matching pattern, if any.
    pub fn first_match(&self, text: &str) -> Option<usize> {
        self.patterns.iter().position(|p| p.matches(text))
    }

    /// The compiled patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_exact_match() {
        let p = Pattern::compile("hello world").unwrap();
        assert!(p.matches("hello world"));
        assert!(!p.matches("hello worlds"));
        assert!(!p.matches("say hello world"));
    }

    #[test]
    fn wildcard_substring_semantics() {
        let p = Pattern::compile("*Xid*").unwrap();
        assert!(p.matches("NVRM: Xid (PCI): 79"));
        assert!(p.matches("Xid"));
        assert!(!p.matches("xid lowercase"));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let p = Pattern::compile("").unwrap();
        assert!(p.matches(""));
        assert!(!p.matches("x"));
    }

    #[test]
    fn digit_capture() {
        let p = Pattern::compile("code {d} done").unwrap();
        assert_eq!(p.captures("code 79 done").unwrap(), vec!["79"]);
        assert!(p.captures("code done").is_none());
        assert!(p.captures("code xx done").is_none());
    }

    #[test]
    fn digit_capture_requires_at_least_one() {
        let p = Pattern::compile("{d}").unwrap();
        assert!(p.captures("").is_none());
        assert_eq!(p.captures("7").unwrap(), vec!["7"]);
    }

    #[test]
    fn digits_backtrack_before_digit_literal() {
        // Greedy digits must back off so the literal "1" can match.
        let p = Pattern::compile("{d}1").unwrap();
        assert_eq!(p.captures("421").unwrap(), vec!["42"]);
    }

    #[test]
    fn word_capture_stops_at_space() {
        let p = Pattern::compile("host {w} up").unwrap();
        assert_eq!(p.captures("host gpub042 up").unwrap(), vec!["gpub042"]);
        assert!(p.captures("host  up").is_none());
    }

    #[test]
    fn word_backtracks_for_following_literal() {
        let p = Pattern::compile("{w}:tail").unwrap();
        assert_eq!(p.captures("abc:tail").unwrap(), vec!["abc"]);
        // Word cannot include the colon if the literal needs it.
        let p2 = Pattern::compile("{w}:{w}").unwrap();
        assert_eq!(p2.captures("a:b").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn any_capture_can_be_empty() {
        let p = Pattern::compile("[{*}]").unwrap();
        assert_eq!(p.captures("[]").unwrap(), vec![""]);
        assert_eq!(p.captures("[abc]").unwrap(), vec!["abc"]);
    }

    #[test]
    fn multiple_captures_in_order() {
        let p = Pattern::compile(r"NVRM: Xid (PCI:{w}): {d},*").unwrap();
        let caps = p
            .captures("NVRM: Xid (PCI:0000:27:00): 79, GPU has fallen off the bus.")
            .unwrap();
        assert_eq!(caps, vec!["0000:27:00", "79"]);
        assert_eq!(p.capture_count(), 2);
    }

    #[test]
    fn escapes() {
        let p = Pattern::compile(r"literal \* star").unwrap();
        assert!(p.matches("literal * star"));
        assert!(!p.matches("literal x star"));
        let p = Pattern::compile(r"\{d\}").unwrap();
        assert!(p.matches("{d}"));
    }

    #[test]
    fn compile_errors() {
        assert!(Pattern::compile("{x}").is_err());
        assert!(Pattern::compile("{d").is_err());
        assert!(Pattern::compile("trailing\\").is_err());
        let msg = Pattern::compile("{zz}").unwrap_err().to_string();
        assert!(msg.contains("{zz}"), "{msg}");
    }

    #[test]
    fn consecutive_wildcards_collapse() {
        let p = Pattern::compile("a**b").unwrap();
        assert!(p.matches("ab"));
        assert!(p.matches("a--b"));
    }

    #[test]
    fn longest_literal_prefilter() {
        let p = Pattern::compile(r"*NVRM: Xid*{d}*").unwrap();
        assert_eq!(p.longest_literal(), Some("NVRM: Xid"));
        let p = Pattern::compile("{d}").unwrap();
        assert_eq!(p.longest_literal(), None);
    }

    #[test]
    fn unicode_safe_wildcards() {
        let p = Pattern::compile("*é*").unwrap();
        assert!(p.matches("caféteria"));
        let p = Pattern::compile("{w}").unwrap();
        assert_eq!(p.captures("héllo").unwrap(), vec!["héllo"]);
    }

    #[test]
    fn source_and_display_roundtrip() {
        let src = r"NVRM: Xid (PCI:{w}): {d},*";
        let p = Pattern::compile(src).unwrap();
        assert_eq!(p.source(), src);
        assert_eq!(p.to_string(), src);
    }

    #[test]
    fn filter_set_matches_any() {
        let f = FilterSet::compile(&["*Xid*", "*remapping*"]).unwrap();
        assert!(f.matches("a row remapping event"));
        assert!(f.matches("NVRM: Xid"));
        assert!(!f.matches("unrelated"));
        assert_eq!(f.first_match("a row remapping event"), Some(1));
        assert_eq!(f.first_match("zzz"), None);
        assert_eq!(f.patterns().len(), 2);
    }

    #[test]
    fn filter_set_compile_error_propagates() {
        assert!(FilterSet::compile(&["ok", "{bad}"]).is_err());
    }

    #[test]
    fn pathological_backtracking_is_bounded() {
        // Dozens of wildcards against a non-matching line must still finish
        // quickly because of shortest-first expansion and literal anchors.
        let p = Pattern::compile("*a*a*a*a*a*a*a*END").unwrap();
        let text = "a".repeat(200);
        assert!(!p.matches(&text));
    }
}
