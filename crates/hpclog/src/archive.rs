//! Per-day log consolidation, mirroring Delta's collection pipeline.
//!
//! Delta consolidates system logs from all nodes into one file per day.
//! [`Archive`] is the in-memory equivalent: lines are appended in any
//! order, grouped by civil day, and replayed in global time order. The
//! fault injector writes into an archive; the analysis pipeline replays it
//! through an [`XidExtractor`](crate::extract::XidExtractor) — so the whole
//! study round-trips through the same consolidated representation the real
//! system used.

use crate::line::LogLine;
use simtime::{Duration, Timestamp};
use std::collections::BTreeMap;

/// An in-memory, per-day consolidated log archive.
///
/// # Example
///
/// ```
/// use hpclog::{archive::Archive, LogLine, Timestamp};
///
/// let mut archive = Archive::new();
/// let t = Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7)?;
/// archive.push(LogLine::new(t, "gpub042", "kernel", "hello"));
/// assert_eq!(archive.day_count(), 1);
/// assert_eq!(archive.line_count(), 1);
/// # Ok::<(), hpclog::ParseTimestampError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Archive {
    days: BTreeMap<u64, Vec<LogLine>>,
    line_count: usize,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// Appends a line to its day bucket.
    pub fn push(&mut self, line: LogLine) {
        self.days
            .entry(line.time.day_number())
            .or_default()
            .push(line);
        self.line_count += 1;
    }

    /// Number of distinct days with at least one line.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// Total number of lines.
    pub fn line_count(&self) -> usize {
        self.line_count
    }

    /// The first and last instants present, or `None` if empty.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.days.values().next()?.iter().map(|l| l.time).min()?;
        let last = self
            .days
            .values()
            .next_back()?
            .iter()
            .map(|l| l.time)
            .max()?;
        Some((first, last))
    }

    /// Iterates over all lines in global time order.
    ///
    /// Within a day, lines are sorted by timestamp with insertion order
    /// breaking ties (syslog files preserve arrival order for same-second
    /// records).
    pub fn iter(&self) -> impl Iterator<Item = &LogLine> {
        self.days.values().flat_map(|lines| {
            let mut idx: Vec<usize> = (0..lines.len()).collect();
            idx.sort_by_key(|&i| (lines[i].time, i));
            idx.into_iter().map(move |i| &lines[i])
        })
    }

    /// Iterates over `(day number, lines)` buckets in chronological order.
    pub fn days(&self) -> impl Iterator<Item = (u64, &[LogLine])> {
        self.days.iter().map(|(&d, v)| (d, v.as_slice()))
    }

    /// Renders one day bucket to consolidated text, or `None` if the day is
    /// absent.
    pub fn render_day(&self, day_number: u64) -> Option<String> {
        let lines = self.days.get(&day_number)?;
        let mut idx: Vec<usize> = (0..lines.len()).collect();
        idx.sort_by_key(|&i| (lines[i].time, i));
        let mut out = String::new();
        for i in idx {
            out.push_str(&lines[i].to_string());
            out.push('\n');
        }
        Some(out)
    }

    /// Parses one consolidated day file produced by [`Archive::render_day`]
    /// (or a real per-day log) into the archive, resolving timestamps
    /// against `year`. Unparseable lines are skipped and counted.
    ///
    /// Returns `(lines added, lines skipped)`.
    pub fn ingest_day(&mut self, text: &str, year: i32) -> (usize, usize) {
        let mut added = 0;
        let mut skipped = 0;
        for raw in text.lines() {
            if raw.trim().is_empty() {
                continue;
            }
            match LogLine::parse_with_year(raw, year) {
                Ok(line) => {
                    self.push(line);
                    added += 1;
                }
                Err(_) => skipped += 1,
            }
        }
        (added, skipped)
    }

    /// Merges another archive into this one.
    pub fn merge(&mut self, other: Archive) {
        for (_, lines) in other.days {
            for line in lines {
                self.push(line);
            }
        }
    }

    /// Retains only lines within `[start, end)`, dropping empty days.
    pub fn retain_window(&mut self, start: Timestamp, end: Timestamp) {
        for lines in self.days.values_mut() {
            lines.retain(|l| l.time >= start && l.time < end);
        }
        self.days.retain(|_, v| !v.is_empty());
        self.line_count = self.days.values().map(Vec::len).sum();
    }

    /// The total wall-clock coverage (first to last line), zero if empty.
    pub fn coverage(&self) -> Duration {
        match self.time_span() {
            Some((a, b)) => b - a,
            None => Duration::ZERO,
        }
    }
}

impl Extend<LogLine> for Archive {
    fn extend<T: IntoIterator<Item = LogLine>>(&mut self, iter: T) {
        for line in iter {
            self.push(line);
        }
    }
}

impl FromIterator<LogLine> for Archive {
    fn from_iter<T: IntoIterator<Item = LogLine>>(iter: T) -> Self {
        let mut archive = Archive::new();
        archive.extend(iter);
        archive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_at(day: u32, hour: u32, host: &str) -> LogLine {
        let t = Timestamp::from_ymd_hms(2024, 3, day, hour, 0, 0).unwrap();
        LogLine::new(t, host, "kernel", format!("msg d{day} h{hour}"))
    }

    #[test]
    fn push_groups_by_day() {
        let mut a = Archive::new();
        a.push(line_at(14, 3, "n1"));
        a.push(line_at(14, 5, "n2"));
        a.push(line_at(15, 1, "n1"));
        assert_eq!(a.day_count(), 2);
        assert_eq!(a.line_count(), 3);
    }

    #[test]
    fn iter_is_globally_time_ordered() {
        let mut a = Archive::new();
        a.push(line_at(15, 1, "n1"));
        a.push(line_at(14, 5, "n2"));
        a.push(line_at(14, 3, "n3"));
        let times: Vec<_> = a.iter().map(|l| l.time).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn same_second_preserves_insertion_order() {
        let mut a = Archive::new();
        let t = Timestamp::from_ymd_hms(2024, 3, 14, 3, 0, 0).unwrap();
        a.push(LogLine::new(t, "n", "kernel", "first"));
        a.push(LogLine::new(t, "n", "kernel", "second"));
        let bodies: Vec<_> = a.iter().map(|l| l.body.as_str()).collect();
        assert_eq!(bodies, vec!["first", "second"]);
    }

    #[test]
    fn render_ingest_roundtrip() {
        let mut a = Archive::new();
        a.push(line_at(14, 3, "gpub001"));
        a.push(line_at(14, 7, "gpub002"));
        let day = a.days().next().unwrap().0;
        let text = a.render_day(day).unwrap();
        let mut b = Archive::new();
        let (added, skipped) = b.ingest_day(&text, 2024);
        assert_eq!((added, skipped), (2, 0));
        let orig: Vec<_> = a.iter().cloned().collect();
        let back: Vec<_> = b.iter().cloned().collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn ingest_skips_garbage() {
        let mut a = Archive::new();
        let (added, skipped) =
            a.ingest_day("not a log line\n\nMar 14 03:00:00 n kernel: ok\n", 2024);
        assert_eq!((added, skipped), (1, 1));
    }

    #[test]
    fn render_missing_day_is_none() {
        assert_eq!(Archive::new().render_day(0), None);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Archive::new();
        a.push(line_at(14, 1, "n1"));
        let mut b = Archive::new();
        b.push(line_at(14, 2, "n2"));
        b.push(line_at(16, 2, "n2"));
        a.merge(b);
        assert_eq!(a.line_count(), 3);
        assert_eq!(a.day_count(), 2);
    }

    #[test]
    fn retain_window_trims() {
        let mut a = Archive::new();
        a.push(line_at(14, 1, "n"));
        a.push(line_at(15, 1, "n"));
        a.push(line_at(16, 1, "n"));
        let start = Timestamp::from_ymd_hms(2024, 3, 15, 0, 0, 0).unwrap();
        let end = Timestamp::from_ymd_hms(2024, 3, 16, 0, 0, 0).unwrap();
        a.retain_window(start, end);
        assert_eq!(a.line_count(), 1);
        assert_eq!(a.day_count(), 1);
        assert_eq!(a.iter().next().unwrap().time.ymd(), (2024, 3, 15));
    }

    #[test]
    fn time_span_and_coverage() {
        let mut a = Archive::new();
        assert_eq!(a.time_span(), None);
        assert_eq!(a.coverage(), Duration::ZERO);
        a.push(line_at(14, 0, "n"));
        a.push(line_at(16, 0, "n"));
        let (first, last) = a.time_span().unwrap();
        assert_eq!(last - first, Duration::from_days(2));
        assert_eq!(a.coverage(), Duration::from_days(2));
    }

    #[test]
    fn collect_from_iterator() {
        let a: Archive = (1..=3).map(|h| line_at(14, h, "n")).collect();
        assert_eq!(a.line_count(), 3);
    }
}
