//! Seeded log-corruption injection ("chaos") for resilience testing.
//!
//! The analysis pipeline claims to survive real archives — truncated
//! lines, invalid UTF-8, interleaved writers, clock regressions, year
//! rollovers, garbled XID fields and storm-scale duplicate floods. This
//! module *manufactures* those defects on demand so the claim can be
//! tested: a [`ChaosInjector`] walks rendered log lines in order and
//! applies at most one mutation per line, drawn from seeded streams, so a
//! given `(config, input)` pair always produces byte-identical corruption.
//!
//! Each mutation is constructed to be **deterministically detectable** by
//! the lenient reader ([`crate::extract::XidExtractor::scan_reader_lenient`]):
//!
//! | mutation          | detected as            |
//! |-------------------|------------------------|
//! | truncation        | `Truncated`            |
//! | invalid UTF-8     | `Encoding`             |
//! | XID-field garble  | `BadXid`               |
//! | clock regression  | `OutOfOrder`           |
//! | year rollover     | `OutOfOrder`           |
//! | interleaved split | two quarantined lines  |
//! | oversize padding  | `OversizedLine`        |
//! | duplication       | *not quarantined* — coalescing absorbs it |
//!
//! so [`ChaosStats::quarantinable`] equals the ledger total exactly: the
//! integration tests assert the pipeline loses **nothing silently**.

use crate::archive::Archive;
use simrng::Rng;
use simtime::{Duration, Timestamp};

/// Per-line mutation probabilities (independent; at most one fires).
///
/// The sum of the seven quarantinable rates plus `duplicate` must not
/// exceed 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Cut the line inside the timestamp/host prefix.
    pub truncate: f64,
    /// Replace one byte with `0xFF` (invalid UTF-8).
    pub encoding: f64,
    /// Mangle the XID code field (applies only to XID lines; otherwise the
    /// line passes through clean).
    pub garble: f64,
    /// Rewrite the stamp behind the previously accepted line (clock skew).
    pub regression: f64,
    /// Rewrite the stamp to Jan 1 of the same year (rollover boundary).
    pub rollover: f64,
    /// Split the line in two mid-prefix (interleaved writers).
    pub interleave: f64,
    /// Pad the line past the reader's byte cap.
    pub oversize: f64,
    /// Emit extra duplicate copies (storm-scale amplification).
    pub duplicate: f64,
    /// Maximum extra copies per duplicated line (at least 1).
    pub duplicate_copies_max: u32,
    /// Maximum backwards clock skew, seconds.
    pub max_skew_secs: u64,
    /// Total byte length oversized lines are padded to; must exceed the
    /// reader's `max_line_bytes` cap to be detectable.
    pub oversize_len: usize,
    /// Seed for the mutation streams.
    pub seed: u64,
}

impl ChaosConfig {
    /// No corruption at all (identity transform).
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            truncate: 0.0,
            encoding: 0.0,
            garble: 0.0,
            regression: 0.0,
            rollover: 0.0,
            interleave: 0.0,
            oversize: 0.0,
            duplicate: 0.0,
            duplicate_copies_max: 4,
            max_skew_secs: 3600,
            oversize_len: 9000,
            seed,
        }
    }

    /// Spreads a total per-line corruption probability evenly across the
    /// seven quarantinable mutation kinds (no duplication).
    pub fn uniform(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "corruption rate must be in [0, 1]"
        );
        let each = rate / 7.0;
        ChaosConfig {
            truncate: each,
            encoding: each,
            garble: each,
            regression: each,
            rollover: each,
            interleave: each,
            oversize: each,
            ..ChaosConfig::clean(seed)
        }
    }

    /// `uniform(rate)` plus storm-scale duplicate amplification.
    pub fn uniform_with_duplicates(rate: f64, duplicate: f64, seed: u64) -> Self {
        ChaosConfig {
            duplicate,
            ..ChaosConfig::uniform(rate, seed)
        }
    }

    /// The summed probability of quarantinable mutations per line.
    pub fn corruption_rate(&self) -> f64 {
        self.truncate
            + self.encoding
            + self.garble
            + self.regression
            + self.rollover
            + self.interleave
            + self.oversize
    }
}

/// What an injector actually did (applied mutations, not configured rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Lines offered to the injector.
    pub lines_in: u64,
    /// Lines emitted (splits and duplicates add; nothing removes).
    pub lines_out: u64,
    /// Lines cut short.
    pub truncated: u64,
    /// Lines given an invalid UTF-8 byte.
    pub encoding: u64,
    /// XID lines with a mangled code field.
    pub garbled: u64,
    /// Lines rewritten behind the accepted clock.
    pub regressions: u64,
    /// Lines rewritten to a year-rollover boundary.
    pub rollovers: u64,
    /// Lines split in two.
    pub interleaved: u64,
    /// Lines padded past the byte cap.
    pub oversized: u64,
    /// Extra duplicate copies emitted (beyond the originals).
    pub duplicates_added: u64,
    /// Mutations drawn but inapplicable (e.g. garble on a non-XID line,
    /// regression with no accepted line yet); the line passed through
    /// clean.
    pub skipped: u64,
}

impl ChaosStats {
    /// Exactly how many emitted lines a correct lenient reader must
    /// quarantine: one per single-line mutation, two per interleave split.
    /// Duplicates are *not* counted — they are legitimate (if noisy) input
    /// that coalescing absorbs.
    pub fn quarantinable(&self) -> u64 {
        self.truncated
            + self.encoding
            + self.garbled
            + self.regressions
            + self.rollovers
            + 2 * self.interleaved
            + self.oversized
    }

    /// Total lines that received any mutation (duplication included).
    pub fn mutated(&self) -> u64 {
        self.truncated
            + self.encoding
            + self.garbled
            + self.regressions
            + self.rollovers
            + self.interleaved
            + self.oversized
    }
}

/// The syslog stamp (`Mon DD HH:MM:SS`) is a fixed 15-byte prefix.
const STAMP_LEN: usize = 15;
/// The stamp plus its trailing separator space.
const PREFIX_LEN: usize = STAMP_LEN + 1;

/// Applies seeded corruption to rendered log lines.
///
/// # Example
///
/// ```
/// use hpclog::chaos::{ChaosConfig, ChaosInjector};
///
/// let lines = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, gone\n";
/// let mut chaos = ChaosInjector::new(ChaosConfig::uniform(1.0, 7));
/// let t = hpclog::Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7).unwrap();
/// let mut out = Vec::new();
/// chaos.corrupt_line(t, lines.trim_end(), &mut out);
/// assert_eq!(chaos.stats().lines_in, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    config: ChaosConfig,
    rng: Rng,
    stats: ChaosStats,
    /// Mirror of the lenient reader's last-accepted timestamp: updated only
    /// for lines emitted clean (or duplicated), never for mutated lines —
    /// the reader rejects those, so its own anchor does not move either.
    prev_accepted: Option<Timestamp>,
}

/// The mutation chosen for one line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mutation {
    None,
    Truncate,
    Encoding,
    Garble,
    Regression,
    Rollover,
    Interleave,
    Oversize,
    Duplicate,
}

impl ChaosInjector {
    /// Creates an injector; all randomness derives from `config.seed`.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosInjector {
            rng: Rng::seed_from(config.seed).fork(0xC0A5),
            config,
            stats: ChaosStats::default(),
            prev_accepted: None,
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Renders an archive (in its global time order) through the injector,
    /// returning the corrupted byte stream.
    pub fn corrupt_archive(&mut self, archive: &Archive) -> Vec<u8> {
        let before = self.stats;
        let mut span = obs::span("stage_chaos");
        let mut out = Vec::new();
        for line in archive.iter() {
            let rendered = line.to_string();
            self.corrupt_line(line.time, &rendered, &mut out);
        }
        span.add_items(self.stats.lines_in - before.lines_in);
        if obs::is_enabled() {
            obs::counter("hpclog_chaos_lines_corrupted_total", &[])
                .add(self.stats.mutated() - before.mutated());
            obs::counter("hpclog_chaos_duplicates_total", &[])
                .add(self.stats.duplicates_added - before.duplicates_added);
        }
        out
    }

    /// Feeds one rendered line (no trailing newline) through the injector,
    /// appending one or more newline-terminated output lines to `out`.
    ///
    /// `time` must be the line's own timestamp (the injector tracks the
    /// accepted-clock anchor to keep regressions detectable).
    pub fn corrupt_line(&mut self, time: Timestamp, rendered: &str, out: &mut Vec<u8>) {
        self.stats.lines_in += 1;
        // Defensive: lines shorter than the stamp prefix cannot carry any
        // of the structured mutations; pass them through.
        if rendered.len() <= PREFIX_LEN {
            self.emit_clean(time, rendered.as_bytes(), out);
            return;
        }
        match self.draw_mutation() {
            Mutation::None => self.emit_clean(time, rendered.as_bytes(), out),
            Mutation::Truncate => {
                // Cut inside the 5-field prefix: the parser reports a
                // missing field, which quarantines as `Truncated`.
                let cut = self.rng.range(3, PREFIX_LEN as u64 + 1) as usize;
                out.extend_from_slice(&rendered.as_bytes()[..cut]);
                out.push(b'\n');
                self.stats.truncated += 1;
                self.stats.lines_out += 1;
            }
            Mutation::Encoding => {
                let mut bytes = rendered.as_bytes().to_vec();
                let pos = self.rng.range_u64(bytes.len() as u64) as usize;
                bytes[pos] = 0xFF;
                out.extend_from_slice(&bytes);
                out.push(b'\n');
                self.stats.encoding += 1;
                self.stats.lines_out += 1;
            }
            Mutation::Garble => match garble_xid_code(rendered) {
                Some(garbled) => {
                    out.extend_from_slice(garbled.as_bytes());
                    out.push(b'\n');
                    self.stats.garbled += 1;
                    self.stats.lines_out += 1;
                }
                None => {
                    // Not an XID line; nothing to garble detectably.
                    self.stats.skipped += 1;
                    self.emit_clean(time, rendered.as_bytes(), out);
                }
            },
            Mutation::Regression => {
                let skew = Duration::from_secs(self.rng.range(1, self.config.max_skew_secs + 1));
                match self.prev_accepted {
                    // The warp must stay inside prev's calendar year: syslog
                    // stamps are year-less, so a skew that crosses New Year
                    // backwards would *render* as Dec 31 and re-parse as a
                    // huge forward jump — an undetectable corruption that
                    // poisons the reader's clock instead of tripping it.
                    Some(prev)
                        if prev.unix() > skew.as_secs()
                            && prev.saturating_sub(skew).ymd().0 == prev.ymd().0 =>
                    {
                        let warped = prev.saturating_sub(skew);
                        out.extend_from_slice(restamp(rendered, warped).as_bytes());
                        out.push(b'\n');
                        self.stats.regressions += 1;
                        self.stats.lines_out += 1;
                    }
                    _ => {
                        // No accepted line to regress behind yet.
                        self.stats.skipped += 1;
                        self.emit_clean(time, rendered.as_bytes(), out);
                    }
                }
            }
            Mutation::Rollover => {
                let second = self.rng.range_u64(60) as u32;
                let jan1 = Timestamp::from_ymd_hms(time.ymd().0, 1, 1, 0, 0, second)
                    .unwrap_or(Timestamp::EPOCH); // Jan 1 00:00:SS is always valid
                match self.prev_accepted {
                    Some(prev) if prev > jan1 => {
                        out.extend_from_slice(restamp(rendered, jan1).as_bytes());
                        out.push(b'\n');
                        self.stats.rollovers += 1;
                        self.stats.lines_out += 1;
                    }
                    _ => {
                        // The stream is still at the very start of the
                        // year; a rollover would not regress.
                        self.stats.skipped += 1;
                        self.emit_clean(time, rendered.as_bytes(), out);
                    }
                }
            }
            Mutation::Interleave => {
                // Split at the host boundary: the first fragment is a bare
                // stamp (missing fields ⇒ `Truncated`), the second starts
                // mid-record and cannot carry a valid month name.
                let bytes = rendered.as_bytes();
                out.extend_from_slice(&bytes[..PREFIX_LEN]);
                out.push(b'\n');
                out.extend_from_slice(&bytes[PREFIX_LEN..]);
                out.push(b'\n');
                self.stats.interleaved += 1;
                self.stats.lines_out += 2;
            }
            Mutation::Oversize => {
                out.extend_from_slice(rendered.as_bytes());
                out.resize(
                    out.len() + self.config.oversize_len.saturating_sub(rendered.len()),
                    b'x',
                );
                out.push(b'\n');
                self.stats.oversized += 1;
                self.stats.lines_out += 1;
            }
            Mutation::Duplicate => {
                let copies = self
                    .rng
                    .range(1, self.config.duplicate_copies_max.max(1) as u64 + 1);
                for _ in 0..=copies {
                    out.extend_from_slice(rendered.as_bytes());
                    out.push(b'\n');
                }
                self.stats.duplicates_added += copies;
                self.stats.lines_out += 1 + copies;
                self.prev_accepted = Some(time);
            }
        }
    }

    fn emit_clean(&mut self, time: Timestamp, bytes: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(bytes);
        out.push(b'\n');
        self.stats.lines_out += 1;
        self.prev_accepted = Some(time);
    }

    fn draw_mutation(&mut self) -> Mutation {
        let r = self.rng.f64();
        let c = &self.config;
        let ladder = [
            (c.truncate, Mutation::Truncate),
            (c.encoding, Mutation::Encoding),
            (c.garble, Mutation::Garble),
            (c.regression, Mutation::Regression),
            (c.rollover, Mutation::Rollover),
            (c.interleave, Mutation::Interleave),
            (c.oversize, Mutation::Oversize),
            (c.duplicate, Mutation::Duplicate),
        ];
        let mut cum = 0.0;
        for (rate, mutation) in ladder {
            cum += rate;
            if r < cum {
                return mutation;
            }
        }
        Mutation::None
    }
}

/// Replaces the fixed-width syslog stamp prefix with `time`'s rendering.
fn restamp(rendered: &str, time: Timestamp) -> String {
    format!("{}{}", time.syslog(), &rendered[STAMP_LEN..])
}

/// Mangles the XID code field of an NVRM line so the body parser reports a
/// malformed XID (`BadXid`), or `None` when the line is not an XID record.
fn garble_xid_code(rendered: &str) -> Option<String> {
    let xid_at = rendered.find("NVRM: Xid (PCI:")?;
    // The code sits after the first "): " following the PCI address.
    let close = rendered[xid_at..].find("): ")? + xid_at + 3;
    let code_end = rendered[close..]
        .find([',', ' '])
        .map(|i| close + i)
        .unwrap_or(rendered.len());
    Some(format!("{}??{}", &rendered[..close], &rendered[code_end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LogLine;

    fn t(h: u32, m: u32, s: u32) -> Timestamp {
        Timestamp::from_ymd_hms(2024, 3, 14, h, m, s).unwrap()
    }

    fn xid_line(time: Timestamp) -> String {
        LogLine::new(
            time,
            "gpub042",
            "kernel",
            "NVRM: Xid (PCI:0000:27:00): 79, gone",
        )
        .to_string()
    }

    fn noise_line(time: Timestamp) -> String {
        LogLine::new(time, "gpub042", "kernel", "usb 3-2: new device").to_string()
    }

    #[test]
    fn clean_config_is_identity() {
        let mut chaos = ChaosInjector::new(ChaosConfig::clean(1));
        let mut out = Vec::new();
        let lines = [xid_line(t(1, 0, 0)), noise_line(t(1, 0, 1))];
        for (i, l) in lines.iter().enumerate() {
            chaos.corrupt_line(t(1, 0, i as u32), l, &mut out);
        }
        let expect = format!("{}\n{}\n", lines[0], lines[1]);
        assert_eq!(out, expect.as_bytes());
        assert_eq!(chaos.stats().quarantinable(), 0);
        assert_eq!(chaos.stats().lines_out, 2);
    }

    #[test]
    fn same_seed_same_bytes() {
        let run = |seed| {
            let mut chaos =
                ChaosInjector::new(ChaosConfig::uniform_with_duplicates(0.6, 0.2, seed));
            let mut out = Vec::new();
            for i in 0..200u32 {
                let time = t(2, i / 60, i % 60);
                chaos.corrupt_line(time, &xid_line(time), &mut out);
            }
            (out, chaos.stats())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn truncation_cuts_inside_prefix() {
        let mut config = ChaosConfig::clean(3);
        config.truncate = 1.0;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 2, 3), &xid_line(t(1, 2, 3)), &mut out);
        assert!(out.len() <= PREFIX_LEN + 1);
        assert_eq!(chaos.stats().truncated, 1);
        let text = std::str::from_utf8(&out).unwrap().trim_end();
        assert!(LogLine::parse_with_year(text, 2024).is_err());
    }

    #[test]
    fn garble_mangles_only_xid_lines() {
        let mut config = ChaosConfig::clean(4);
        config.garble = 1.0;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 0, 0), &xid_line(t(1, 0, 0)), &mut out);
        let text = std::str::from_utf8(&out).unwrap().trim_end();
        assert!(text.contains("??"));
        let parsed = LogLine::parse_with_year(text, 2024).unwrap();
        let body = crate::nvrm::XidEvent::parse_body(parsed.time, &parsed.host, &parsed.body);
        assert!(matches!(body, Some(Err(_))));
        // A noise line passes through untouched and counts as skipped.
        out.clear();
        chaos.corrupt_line(t(1, 0, 1), &noise_line(t(1, 0, 1)), &mut out);
        assert_eq!(chaos.stats().garbled, 1);
        assert_eq!(chaos.stats().skipped, 1);
    }

    #[test]
    fn regression_rewinds_behind_accepted_clock() {
        let mut config = ChaosConfig::clean(5);
        config.regression = 0.5; // first draw decides per line
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        // Feed lines until one regresses.
        for i in 0..200u32 {
            let time = t(3, i / 60, i % 60);
            chaos.corrupt_line(time, &noise_line(time), &mut out);
        }
        assert!(chaos.stats().regressions > 0);
        // Every regressed line parses, but its stamp is behind a
        // previously emitted clean line.
        let text = String::from_utf8(out).unwrap();
        let mut max_seen: Option<Timestamp> = None;
        let mut regressions = 0;
        for line in text.lines() {
            let parsed = LogLine::parse_with_year(line, 2024).unwrap();
            if max_seen.is_some_and(|m| parsed.time < m) {
                regressions += 1;
            }
            max_seen = Some(max_seen.map_or(parsed.time, |m| m.max(parsed.time)));
        }
        assert_eq!(regressions, chaos.stats().regressions);
    }

    #[test]
    fn regression_never_crosses_new_year_backwards() {
        // A warp from early Jan 1 into Dec 31 would render year-less as
        // "Dec 31", which a fixed-year reader parses as a *forward* jump —
        // poisoning its accepted clock instead of tripping the
        // out-of-order check. Such draws must be skipped, not emitted.
        let mut config = ChaosConfig::clean(7);
        config.regression = 0.9;
        config.max_skew_secs = 3600;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        for i in 0..120u32 {
            // The first two hours of the year: most skews would cross.
            let time = Timestamp::from_ymd_hms(2024, 1, 1, i / 60, i % 60, 0).unwrap();
            chaos.corrupt_line(time, &noise_line(time), &mut out);
        }
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            let parsed = LogLine::parse_with_year(line, 2024).unwrap();
            assert_eq!(parsed.time.ymd().0, 2024, "cross-year stamp in {line:?}");
            assert_eq!(parsed.time.ymd().1, 1, "regressed out of January: {line:?}");
        }
    }

    #[test]
    fn interleave_splits_into_two_lines() {
        let mut config = ChaosConfig::clean(6);
        config.interleave = 1.0;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 0, 0), &xid_line(t(1, 0, 0)), &mut out);
        let text = std::str::from_utf8(&out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert!(LogLine::parse_with_year(l, 2024).is_err(), "{l:?}");
        }
        assert_eq!(chaos.stats().quarantinable(), 2);
    }

    #[test]
    fn oversize_pads_past_cap() {
        let mut config = ChaosConfig::clean(7);
        config.oversize = 1.0;
        config.oversize_len = 500;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 0, 0), &noise_line(t(1, 0, 0)), &mut out);
        assert_eq!(out.len(), 501); // padded line + newline
        assert_eq!(chaos.stats().oversized, 1);
    }

    #[test]
    fn duplicates_amplify_without_quarantine() {
        let mut config = ChaosConfig::clean(8);
        config.duplicate = 1.0;
        config.duplicate_copies_max = 3;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 0, 0), &noise_line(t(1, 0, 0)), &mut out);
        let text = std::str::from_utf8(&out).unwrap();
        assert!(text.lines().count() >= 2);
        assert_eq!(chaos.stats().quarantinable(), 0);
        assert!(chaos.stats().duplicates_added >= 1);
    }

    #[test]
    fn encoding_mutation_breaks_utf8() {
        let mut config = ChaosConfig::clean(9);
        config.encoding = 1.0;
        let mut chaos = ChaosInjector::new(config);
        let mut out = Vec::new();
        chaos.corrupt_line(t(1, 0, 0), &noise_line(t(1, 0, 0)), &mut out);
        let line = &out[..out.len() - 1];
        assert!(std::str::from_utf8(line).is_err());
    }

    #[test]
    fn uniform_rates_sum_to_requested() {
        let config = ChaosConfig::uniform(0.07, 1);
        assert!((config.corruption_rate() - 0.07).abs() < 1e-12);
        assert_eq!(config.duplicate, 0.0);
    }

    #[test]
    fn stats_quarantinable_counts_interleave_twice() {
        let stats = ChaosStats {
            interleaved: 3,
            truncated: 2,
            ..Default::default()
        };
        assert_eq!(stats.quarantinable(), 8);
        assert_eq!(stats.mutated(), 5);
    }
}
