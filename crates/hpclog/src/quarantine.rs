//! Structured quarantine for rejected log input.
//!
//! Production log archives are never clean: lines arrive truncated by
//! collector restarts, garbled by interleaved writers, time-warped by NTP
//! steps, or padded to absurd lengths by runaway printers. A pipeline that
//! panics (or silently drops) on such input cannot be trusted to reproduce
//! the paper's tables from real archives. This module gives every rejected
//! line a home: a [`QuarantineLedger`] counts rejects per
//! [`QuarantineCategory`] and keeps a small, *bounded* reservoir of
//! exemplar snippets so an operator can inspect what was thrown away —
//! without the ledger's memory ever growing with the corruption rate.
//!
//! The ledger is deliberately deterministic: the exemplar reservoir is
//! sampled with a seeded [`simrng::Rng`], so the same corrupt archive
//! always yields the same ledger, byte for byte — the property every other
//! stream in this workspace guarantees.

use simrng::Rng;
use std::fmt;

/// Why a line was quarantined instead of parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuarantineCategory {
    /// All syslog fields present, but the `Mon DD HH:MM:SS` stamp does not
    /// parse (garbled month, impossible day, corrupted clock field).
    MalformedTimestamp,
    /// Recognisably an `NVRM: Xid` message whose PCI address or code field
    /// is mangled.
    BadXid,
    /// Fewer than the five mandatory syslog fields — the line was cut
    /// short in transit.
    Truncated,
    /// The raw bytes are not valid UTF-8.
    Encoding,
    /// The line's timestamp regresses behind an already-accepted line
    /// (clock skew, year rollover, or reordered collection).
    OutOfOrder,
    /// The raw line exceeds the configured byte cap.
    OversizedLine,
    /// A structured record (CSV row, etc.) that failed schema validation.
    BadRecord,
}

impl QuarantineCategory {
    /// Every category, in display order.
    pub const ALL: [QuarantineCategory; 7] = [
        QuarantineCategory::MalformedTimestamp,
        QuarantineCategory::BadXid,
        QuarantineCategory::Truncated,
        QuarantineCategory::Encoding,
        QuarantineCategory::OutOfOrder,
        QuarantineCategory::OversizedLine,
        QuarantineCategory::BadRecord,
    ];

    /// A stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            QuarantineCategory::MalformedTimestamp => "malformed-timestamp",
            QuarantineCategory::BadXid => "bad-xid",
            QuarantineCategory::Truncated => "truncated",
            QuarantineCategory::Encoding => "encoding",
            QuarantineCategory::OutOfOrder => "out-of-order",
            QuarantineCategory::OversizedLine => "oversized-line",
            QuarantineCategory::BadRecord => "bad-record",
        }
    }

    fn index(self) -> usize {
        QuarantineCategory::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL enumerates every category") // by construction above
    }

    /// The category at position `index` of [`ALL`](Self::ALL), or `None`
    /// when out of range. Inverse of the `ALL` ordering; used when decoding
    /// checkpointed exemplars.
    pub fn from_index(index: usize) -> Option<Self> {
        QuarantineCategory::ALL.get(index).copied()
    }
}

impl fmt::Display for QuarantineCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-category reject counters (cheap to copy, embeddable in stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineCounts {
    counts: [u64; QuarantineCategory::ALL.len()],
}

impl QuarantineCounts {
    /// The count for one category.
    pub fn get(&self, category: QuarantineCategory) -> u64 {
        self.counts[category.index()]
    }

    /// Increments one category.
    pub fn add(&mut self, category: QuarantineCategory) {
        self.counts[category.index()] += 1;
    }

    /// Total rejects across all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another counter set into this one (order-insensitive sums, so
    /// per-shard counts merge to exactly the serial totals).
    pub fn merge(&mut self, other: &QuarantineCounts) {
        for (slot, add) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += add;
        }
    }

    /// The raw per-category counters, indexed in [`QuarantineCategory::ALL`]
    /// order (for checkpointing).
    pub fn to_array(&self) -> [u64; QuarantineCategory::ALL.len()] {
        self.counts
    }

    /// Rebuilds counters from values captured with
    /// [`QuarantineCounts::to_array`].
    pub fn from_array(counts: [u64; QuarantineCategory::ALL.len()]) -> Self {
        QuarantineCounts { counts }
    }

    /// Iterates `(category, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (QuarantineCategory, u64)> + '_ {
        QuarantineCategory::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
    }
}

/// One retained sample of a rejected line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Why it was rejected.
    pub category: QuarantineCategory,
    /// 1-based line number within the scanned stream.
    pub line_no: u64,
    /// A truncated, lossily-decoded snippet of the raw bytes.
    pub snippet: String,
}

/// Bounded, deterministic record of everything a lenient reader rejected.
///
/// Memory is O(`max_exemplars` × `max_snippet_bytes`) regardless of how
/// many lines are quarantined: counts are plain integers and exemplars are
/// reservoir-sampled (algorithm R) with a seeded RNG, so every rejected
/// line has an equal chance of being retained and the result is
/// reproducible.
///
/// # Example
///
/// ```
/// use hpclog::quarantine::{QuarantineCategory, QuarantineLedger};
///
/// let mut ledger = QuarantineLedger::new();
/// ledger.record(QuarantineCategory::Truncated, 7, b"Mar 14 03:2");
/// assert_eq!(ledger.total(), 1);
/// assert_eq!(ledger.counts().get(QuarantineCategory::Truncated), 1);
/// assert_eq!(ledger.exemplars().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuarantineLedger {
    counts: QuarantineCounts,
    exemplars: Vec<Exemplar>,
    max_exemplars: usize,
    max_snippet_bytes: usize,
    max_line_bytes: usize,
    io_errors: u64,
    rng: Rng,
}

/// Default cap on retained exemplars.
pub const DEFAULT_MAX_EXEMPLARS: usize = 16;
/// Default cap on each exemplar snippet, in bytes.
pub const DEFAULT_MAX_SNIPPET_BYTES: usize = 160;
/// Default byte cap above which a line is quarantined as oversized.
pub const DEFAULT_MAX_LINE_BYTES: usize = 8192;
/// Default reservoir seed (fixed so ledgers are reproducible by default).
pub const DEFAULT_RESERVOIR_SEED: u64 = 0x0005_EED0_FBAD_11E5;

impl QuarantineLedger {
    /// A ledger with the default limits and seed.
    pub fn new() -> Self {
        Self::with_limits(
            DEFAULT_MAX_EXEMPLARS,
            DEFAULT_MAX_SNIPPET_BYTES,
            DEFAULT_MAX_LINE_BYTES,
            DEFAULT_RESERVOIR_SEED,
        )
    }

    /// A ledger with explicit bounds.
    ///
    /// `max_line_bytes` is advisory to readers (see
    /// [`QuarantineLedger::max_line_bytes`]); the ledger itself only uses
    /// it as the published oversize threshold.
    pub fn with_limits(
        max_exemplars: usize,
        max_snippet_bytes: usize,
        max_line_bytes: usize,
        seed: u64,
    ) -> Self {
        QuarantineLedger {
            counts: QuarantineCounts::default(),
            exemplars: Vec::new(),
            max_exemplars,
            max_snippet_bytes,
            max_line_bytes,
            io_errors: 0,
            rng: Rng::seed_from(seed),
        }
    }

    /// Records one rejected line.
    pub fn record(&mut self, category: QuarantineCategory, line_no: u64, raw: &[u8]) {
        self.counts.add(category);
        if self.max_exemplars == 0 {
            return;
        }
        let n = self.counts.total();
        if self.exemplars.len() < self.max_exemplars {
            let snippet = self.snip(raw);
            self.exemplars.push(Exemplar {
                category,
                line_no,
                snippet,
            });
        } else {
            // Reservoir algorithm R: the n-th reject replaces a random slot
            // with probability max_exemplars / n.
            let j = self.rng.range_u64(n) as usize;
            if j < self.max_exemplars {
                let snippet = self.snip(raw);
                self.exemplars[j] = Exemplar {
                    category,
                    line_no,
                    snippet,
                };
            }
        }
    }

    /// Records an I/O failure on the underlying stream (not a line reject).
    pub fn record_io_error(&mut self) {
        self.io_errors += 1;
    }

    /// Per-category counts.
    pub fn counts(&self) -> QuarantineCounts {
        self.counts
    }

    /// Total quarantined lines (excludes I/O errors).
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// Stream-level I/O failures observed.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// True when nothing was rejected and no I/O errors occurred.
    pub fn is_empty(&self) -> bool {
        self.counts.total() == 0 && self.io_errors == 0
    }

    /// The retained exemplar rejects (at most `max_exemplars`).
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// The byte cap readers should enforce per line.
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// Captures the ledger's complete state — counters, exemplars, limits
    /// and the reservoir RNG — as plain data for checkpointing.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            counts: self.counts.to_array(),
            exemplars: self.exemplars.clone(),
            max_exemplars: self.max_exemplars,
            max_snippet_bytes: self.max_snippet_bytes,
            max_line_bytes: self.max_line_bytes,
            io_errors: self.io_errors,
            rng_state: self.rng.state(),
        }
    }

    /// Rebuilds a ledger from a [`snapshot`](Self::snapshot).
    ///
    /// The restored ledger continues reservoir sampling exactly where the
    /// captured one left off, so a checkpointed run retains the same
    /// exemplars as an uncut one. Returns `None` when the snapshot is
    /// internally inconsistent: an unreachable all-zero RNG state, or more
    /// exemplars than the stated cap.
    pub fn from_snapshot(snapshot: LedgerSnapshot) -> Option<Self> {
        let rng = Rng::from_state(snapshot.rng_state)?;
        if snapshot.exemplars.len() > snapshot.max_exemplars {
            return None;
        }
        Some(QuarantineLedger {
            counts: QuarantineCounts::from_array(snapshot.counts),
            exemplars: snapshot.exemplars,
            max_exemplars: snapshot.max_exemplars,
            max_snippet_bytes: snapshot.max_snippet_bytes,
            max_line_bytes: snapshot.max_line_bytes,
            io_errors: snapshot.io_errors,
            rng,
        })
    }

    fn snip(&self, raw: &[u8]) -> String {
        let text = String::from_utf8_lossy(raw);
        let mut out = String::with_capacity(text.len().min(self.max_snippet_bytes));
        for ch in text.chars() {
            if out.len() + ch.len_utf8() > self.max_snippet_bytes {
                break;
            }
            out.push(ch);
        }
        out
    }
}

impl Default for QuarantineLedger {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data image of a [`QuarantineLedger`], produced by
/// [`QuarantineLedger::snapshot`] and consumed by
/// [`QuarantineLedger::from_snapshot`].
///
/// Every field is public so checkpoint codecs in downstream crates can
/// serialise it without this crate committing to a wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Per-category reject counters in [`QuarantineCategory::ALL`] order.
    pub counts: [u64; QuarantineCategory::ALL.len()],
    /// The retained exemplars, in reservoir order.
    pub exemplars: Vec<Exemplar>,
    /// Cap on retained exemplars.
    pub max_exemplars: usize,
    /// Cap on each exemplar snippet, in bytes.
    pub max_snippet_bytes: usize,
    /// Published per-line byte cap.
    pub max_line_bytes: usize,
    /// Stream-level I/O failures observed.
    pub io_errors: u64,
    /// The reservoir RNG's internal state mid-stream.
    pub rng_state: [u64; 4],
}

impl fmt::Display for QuarantineLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "quarantine: clean (0 rejects)");
        }
        write!(f, "quarantine: {} rejects", self.total())?;
        if self.io_errors > 0 {
            write!(f, ", {} I/O errors", self.io_errors)?;
        }
        for (cat, n) in self.counts.iter() {
            write!(f, "\n  {cat:<20} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_category() {
        let mut ledger = QuarantineLedger::new();
        ledger.record(QuarantineCategory::Truncated, 1, b"a");
        ledger.record(QuarantineCategory::Truncated, 2, b"b");
        ledger.record(QuarantineCategory::Encoding, 3, b"\xff");
        assert_eq!(ledger.counts().get(QuarantineCategory::Truncated), 2);
        assert_eq!(ledger.counts().get(QuarantineCategory::Encoding), 1);
        assert_eq!(ledger.counts().get(QuarantineCategory::BadXid), 0);
        assert_eq!(ledger.total(), 3);
        assert!(!ledger.is_empty());
    }

    #[test]
    fn exemplars_are_bounded() {
        let mut ledger = QuarantineLedger::with_limits(4, 32, 8192, 1);
        for i in 0..1000u64 {
            ledger.record(
                QuarantineCategory::Truncated,
                i,
                format!("line {i}").as_bytes(),
            );
        }
        assert_eq!(ledger.total(), 1000);
        assert_eq!(ledger.exemplars().len(), 4);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut ledger = QuarantineLedger::with_limits(3, 32, 8192, 42);
            for i in 0..200u64 {
                ledger.record(QuarantineCategory::BadXid, i, format!("x{i}").as_bytes());
            }
            ledger.exemplars().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snippets_are_truncated_and_lossy() {
        let mut ledger = QuarantineLedger::with_limits(4, 8, 8192, 1);
        let long = vec![b'z'; 100];
        ledger.record(QuarantineCategory::OversizedLine, 1, &long);
        assert_eq!(ledger.exemplars()[0].snippet.len(), 8);
        ledger.record(QuarantineCategory::Encoding, 2, b"ok\xffok");
        assert!(ledger.exemplars()[1].snippet.contains('\u{FFFD}'));
    }

    #[test]
    fn zero_exemplar_cap_keeps_counts_only() {
        let mut ledger = QuarantineLedger::with_limits(0, 8, 8192, 1);
        ledger.record(QuarantineCategory::Truncated, 1, b"a");
        assert_eq!(ledger.total(), 1);
        assert!(ledger.exemplars().is_empty());
    }

    #[test]
    fn io_errors_tracked_separately() {
        let mut ledger = QuarantineLedger::new();
        assert!(ledger.is_empty());
        ledger.record_io_error();
        assert_eq!(ledger.io_errors(), 1);
        assert_eq!(ledger.total(), 0);
        assert!(!ledger.is_empty());
    }

    #[test]
    fn display_summarises() {
        let mut ledger = QuarantineLedger::new();
        assert!(ledger.to_string().contains("clean"));
        ledger.record(QuarantineCategory::OutOfOrder, 5, b"late line");
        let s = ledger.to_string();
        assert!(s.contains("1 rejects"));
        assert!(s.contains("out-of-order"));
    }

    #[test]
    fn snapshot_round_trip_preserves_reservoir_stream() {
        // Feed half the rejects, snapshot, then race the restored ledger
        // against the original over the second half: counts, exemplars and
        // future reservoir decisions must all coincide.
        let mut ledger = QuarantineLedger::with_limits(3, 32, 8192, 42);
        for i in 0..100u64 {
            ledger.record(QuarantineCategory::BadXid, i, format!("x{i}").as_bytes());
        }
        let mut restored = QuarantineLedger::from_snapshot(ledger.snapshot()).unwrap();
        for i in 100..300u64 {
            ledger.record(QuarantineCategory::Truncated, i, format!("y{i}").as_bytes());
            restored.record(QuarantineCategory::Truncated, i, format!("y{i}").as_bytes());
        }
        assert_eq!(restored.counts(), ledger.counts());
        assert_eq!(restored.exemplars(), ledger.exemplars());
        assert_eq!(restored.io_errors(), ledger.io_errors());
        assert_eq!(restored.max_line_bytes(), ledger.max_line_bytes());
    }

    #[test]
    fn from_snapshot_rejects_inconsistent_state() {
        let ledger = QuarantineLedger::new();
        let mut zeroed = ledger.snapshot();
        zeroed.rng_state = [0; 4];
        assert!(QuarantineLedger::from_snapshot(zeroed).is_none());

        let mut overfull = ledger.snapshot();
        overfull.max_exemplars = 0;
        overfull.exemplars.push(Exemplar {
            category: QuarantineCategory::Truncated,
            line_no: 1,
            snippet: "x".into(),
        });
        assert!(QuarantineLedger::from_snapshot(overfull).is_none());
    }

    #[test]
    fn category_index_round_trips() {
        for (i, cat) in QuarantineCategory::ALL.into_iter().enumerate() {
            assert_eq!(QuarantineCategory::from_index(i), Some(cat));
        }
        assert_eq!(
            QuarantineCategory::from_index(QuarantineCategory::ALL.len()),
            None
        );
    }

    #[test]
    fn category_labels_are_stable() {
        for cat in QuarantineCategory::ALL {
            assert!(!cat.label().is_empty());
            assert_eq!(cat.to_string(), cat.label());
        }
    }
}
