//! Stage-I extraction: raw log lines in, structured [`XidEvent`]s out.
//!
//! Mirrors the paper's Fig. 1 Stage I: per-day consolidated system logs are
//! filtered by pattern matching and the selected XID error-recovery events
//! are extracted. The extractor is deliberately forgiving — production logs
//! interleave XID lines with arbitrary noise and the occasional truncated
//! record — and it keeps counters so data-quality problems are visible
//! instead of silent.

use crate::line::{LogLine, LogLineErrorKind};
use crate::nvrm::XidEvent;
use crate::quarantine::{QuarantineCategory, QuarantineCounts, QuarantineLedger};
use simtime::Timestamp;

/// Counters describing what an extractor has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractStats {
    /// Total lines offered.
    pub lines_seen: u64,
    /// Lines recognised as NVRM XID messages.
    pub xid_lines: u64,
    /// XID lines that failed to parse (truncated/corrupt).
    pub malformed: u64,
    /// Events produced (equals `xid_lines - malformed - excluded`).
    pub extracted: u64,
    /// XID events dropped by the study-inclusion filter (XID 13/43/etc.).
    pub excluded: u64,
    /// Per-category reject counts from lenient scans (zero on the strict
    /// paths, which fold every reject into `malformed`).
    pub quarantined: QuarantineCounts,
}

impl ExtractStats {
    /// Folds another extractor's counters into this one.
    ///
    /// Every field is a plain sum, so merging per-shard stats in any order
    /// reproduces the counters a single serial scan would have produced —
    /// the property `hpclog::shard` relies on.
    pub fn merge(&mut self, other: &ExtractStats) {
        self.lines_seen += other.lines_seen;
        self.xid_lines += other.xid_lines;
        self.malformed += other.malformed;
        self.extracted += other.extracted;
        self.excluded += other.excluded;
        self.quarantined.merge(&other.quarantined);
    }
}

/// Extracts structured XID events from log lines.
///
/// # Example
///
/// ```
/// use hpclog::extract::XidExtractor;
///
/// let mut ex = XidExtractor::new(2023);
/// let ev = ex
///     .extract_raw("Jun  1 10:00:00 gpub005 kernel: NVRM: Xid (PCI:0000:2a:00): 31, MMU fault")
///     .expect("xid line");
/// assert_eq!(ev.code.value(), 31);
/// assert_eq!(ex.stats().extracted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct XidExtractor {
    pub(crate) year: i32,
    pub(crate) studied_only: bool,
    pub(crate) stats: ExtractStats,
}

impl XidExtractor {
    /// Creates an extractor resolving year-less syslog stamps against
    /// `year`, keeping every XID code (no study filter).
    pub fn new(year: i32) -> Self {
        XidExtractor {
            year,
            studied_only: false,
            stats: ExtractStats::default(),
        }
    }

    /// Creates an extractor that additionally applies the study-inclusion
    /// rule, dropping application-triggered codes (XID 13, 43) and unknown
    /// codes, as §II-B of the paper does.
    pub fn studied_only(year: i32) -> Self {
        XidExtractor {
            year,
            studied_only: true,
            stats: ExtractStats::default(),
        }
    }

    /// The year used to resolve syslog timestamps.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Re-anchors timestamp resolution (call at day-file boundaries when a
    /// multi-year archive is replayed).
    pub fn set_year(&mut self, year: i32) {
        self.year = year;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Extracts from an already-parsed line.
    pub fn extract(&mut self, line: &LogLine) -> Option<XidEvent> {
        self.extract_parts(line.time, &line.host, &line.body)
    }

    /// Parses `raw` as a syslog line and extracts; returns `None` for
    /// unparseable or non-XID lines.
    pub fn extract_raw(&mut self, raw: &str) -> Option<XidEvent> {
        // Cheap pre-filter before paying for full line parsing: every XID
        // line contains this literal.
        if !raw.contains("NVRM: Xid") {
            self.stats.lines_seen += 1;
            return None;
        }
        match LogLine::parse_with_year(raw, self.year) {
            Ok(line) => self.extract(&line),
            Err(_) => {
                self.stats.lines_seen += 1;
                self.stats.xid_lines += 1;
                self.stats.malformed += 1;
                None
            }
        }
    }

    /// Extracts from pre-split line parts (used by the archive replayer to
    /// avoid re-rendering).
    pub fn extract_parts(&mut self, time: Timestamp, host: &str, body: &str) -> Option<XidEvent> {
        self.stats.lines_seen += 1;
        let parsed = XidEvent::parse_body(time, host, body)?;
        self.stats.xid_lines += 1;
        match parsed {
            Ok(ev) => {
                if self.studied_only && !ev.kind().is_studied() {
                    self.stats.excluded += 1;
                    None
                } else {
                    self.stats.extracted += 1;
                    Some(ev)
                }
            }
            Err(_) => {
                self.stats.malformed += 1;
                None
            }
        }
    }

    /// Scans an iterator of raw lines and collects every extracted event.
    pub fn scan<'a, I>(&mut self, lines: I) -> Vec<XidEvent>
    where
        I: IntoIterator<Item = &'a str>,
    {
        lines
            .into_iter()
            .filter_map(|l| self.extract_raw(l))
            .collect()
    }

    /// Streams a reader line by line, extracting events without loading
    /// the file into memory — the shape real multi-gigabyte day files
    /// require. Accepts any [`std::io::Read`]; pass `&mut reader` to keep
    /// ownership.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, with events extracted so far
    /// lost (re-run from a clean extractor after fixing the source).
    pub fn scan_reader<R: std::io::Read>(&mut self, reader: R) -> std::io::Result<Vec<XidEvent>> {
        use std::io::BufRead;
        let before = self.stats;
        let mut span = obs::span("stage_scan");
        let mut events = Vec::new();
        let buffered = std::io::BufReader::new(reader);
        for line in buffered.lines() {
            if let Some(ev) = self.extract_raw(&line?) {
                events.push(ev);
            }
        }
        span.add_items(self.stats.lines_seen - before.lines_seen);
        record_scan_metrics(&before, &self.stats);
        Ok(events)
    }

    /// Streams a reader like [`scan_reader`](Self::scan_reader), but never
    /// fails: every line the strict path would choke on is classified and
    /// recorded in `ledger` instead, and I/O errors end the scan early
    /// (recorded via [`QuarantineLedger::record_io_error`]) rather than
    /// discarding the events already extracted.
    ///
    /// Rejection categories, checked in order per line:
    ///
    /// 1. longer than the ledger's byte cap → `OversizedLine`
    /// 2. not valid UTF-8 → `Encoding`
    /// 3. syslog parse failed, missing fields → `Truncated`
    /// 4. syslog parse failed, five fields but a bad stamp → `MalformedTimestamp`
    /// 5. an `NVRM: Xid` body that does not parse → `BadXid`
    /// 6. timestamp behind the last accepted line → `OutOfOrder`
    ///
    /// The monotonicity check (6) applies to *every* line, noise included:
    /// consolidated day archives are globally time-ordered, so a regression
    /// is corruption regardless of the line's content. The accepted-clock
    /// anchor advances only on accepted lines (study-filter-excluded XID
    /// events still count as accepted — the line itself was sound).
    ///
    /// Empty lines are skipped silently; they carry no data to lose.
    pub fn scan_reader_lenient<R: std::io::Read>(
        &mut self,
        reader: R,
        ledger: &mut QuarantineLedger,
    ) -> Vec<XidEvent> {
        use std::io::BufRead;
        let before = self.stats;
        let mut span = obs::span("stage_scan");
        let mut events = Vec::new();
        let mut buffered = std::io::BufReader::new(reader);
        let mut raw = Vec::new();
        let mut line_no: u64 = 0;
        let mut prev_accepted: Option<Timestamp> = None;
        loop {
            raw.clear();
            match buffered.read_until(b'\n', &mut raw) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    // The stream is gone; keep what we have.
                    ledger.record_io_error();
                    break;
                }
            }
            line_no += 1;
            while raw.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                raw.pop();
            }
            if raw.is_empty() {
                continue;
            }
            self.stats.lines_seen += 1;
            if raw.len() > ledger.max_line_bytes() {
                self.quarantine(ledger, QuarantineCategory::OversizedLine, line_no, &raw);
                continue;
            }
            let text = match std::str::from_utf8(&raw) {
                Ok(t) => t,
                Err(_) => {
                    self.quarantine(ledger, QuarantineCategory::Encoding, line_no, &raw);
                    continue;
                }
            };
            let line = match LogLine::parse_with_year(text, self.year) {
                Ok(line) => line,
                Err(err) => {
                    let category = match err.kind() {
                        LogLineErrorKind::MissingField => QuarantineCategory::Truncated,
                        LogLineErrorKind::BadTimestamp => QuarantineCategory::MalformedTimestamp,
                    };
                    self.quarantine(ledger, category, line_no, &raw);
                    continue;
                }
            };
            let xid = match XidEvent::parse_body(line.time, &line.host, &line.body) {
                Some(Ok(ev)) => {
                    self.stats.xid_lines += 1;
                    Some(ev)
                }
                Some(Err(_)) => {
                    self.stats.xid_lines += 1;
                    self.stats.malformed += 1;
                    self.quarantine(ledger, QuarantineCategory::BadXid, line_no, &raw);
                    continue;
                }
                None => None,
            };
            if prev_accepted.is_some_and(|prev| line.time < prev) {
                self.quarantine(ledger, QuarantineCategory::OutOfOrder, line_no, &raw);
                continue;
            }
            prev_accepted = Some(line.time);
            if let Some(ev) = xid {
                if self.studied_only && !ev.kind().is_studied() {
                    self.stats.excluded += 1;
                } else {
                    self.stats.extracted += 1;
                    events.push(ev);
                }
            }
        }
        span.add_items(self.stats.lines_seen - before.lines_seen);
        record_scan_metrics(&before, &self.stats);
        events
    }

    pub(crate) fn quarantine(
        &mut self,
        ledger: &mut QuarantineLedger,
        category: QuarantineCategory,
        line_no: u64,
        raw: &[u8],
    ) {
        self.stats.quarantined.add(category);
        ledger.record(category, line_no, raw);
    }
}

/// Publishes the delta between two extractor-stats snapshots to the
/// global metrics registry.
///
/// Strictly write-only (nothing here feeds back into extraction), and
/// purely additive: every scan path — serial, sharded, streaming —
/// emits its deltas through this one function, so the totals agree
/// across execution modes whenever the scanned bytes do.
pub fn record_scan_metrics(before: &ExtractStats, after: &ExtractStats) {
    if !obs::is_enabled() {
        return;
    }
    let d = |a: u64, b: u64| a.saturating_sub(b);
    obs::counter("hpclog_lines_scanned_total", &[]).add(d(after.lines_seen, before.lines_seen));
    obs::counter("hpclog_xid_lines_total", &[]).add(d(after.xid_lines, before.xid_lines));
    obs::counter("hpclog_lines_malformed_total", &[]).add(d(after.malformed, before.malformed));
    obs::counter("hpclog_events_extracted_total", &[]).add(d(after.extracted, before.extracted));
    obs::counter("hpclog_events_excluded_total", &[]).add(d(after.excluded, before.excluded));
    for category in QuarantineCategory::ALL {
        let delta = d(
            after.quarantined.get(category),
            before.quarantined.get(category),
        );
        if delta > 0 {
            obs::counter(
                "hpclog_lines_quarantined_total",
                &[("category", category.label())],
            )
            .add(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvrm::PciAddr;
    use xid::XidCode;

    const XID_LINE: &str =
        "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, pid=1234, GPU has fallen off the bus.";
    const NOISE: &str = "Mar 14 03:22:08 gpub042 kernel: usb 3-2: new high-speed USB device";
    const SOFTWARE_XID: &str =
        "Mar 14 03:22:09 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 13, Graphics Exception";
    const TRUNCATED: &str = "Mar 14 03:22:10 gpub042 kernel: NVRM: Xid (PCI:0000:27";

    #[test]
    fn extracts_xid_line() {
        let mut ex = XidExtractor::new(2024);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.code, XidCode::FALLEN_OFF_BUS);
        assert_eq!(ev.host, "gpub042");
        assert_eq!(ev.pci, PciAddr::for_gpu_index(0));
        assert_eq!(ev.time.ymd(), (2024, 3, 14));
    }

    #[test]
    fn noise_is_ignored_cheaply() {
        let mut ex = XidExtractor::new(2024);
        assert!(ex.extract_raw(NOISE).is_none());
        let s = ex.stats();
        assert_eq!(s.lines_seen, 1);
        assert_eq!(s.xid_lines, 0);
    }

    #[test]
    fn study_filter_drops_software_codes() {
        let mut keep_all = XidExtractor::new(2024);
        assert!(keep_all.extract_raw(SOFTWARE_XID).is_some());
        let mut studied = XidExtractor::studied_only(2024);
        assert!(studied.extract_raw(SOFTWARE_XID).is_none());
        assert_eq!(studied.stats().excluded, 1);
        assert_eq!(studied.stats().extracted, 0);
    }

    #[test]
    fn truncated_lines_count_as_malformed() {
        let mut ex = XidExtractor::new(2024);
        assert!(ex.extract_raw(TRUNCATED).is_none());
        assert_eq!(ex.stats().malformed, 1);
    }

    #[test]
    fn scan_mixed_stream() {
        let mut ex = XidExtractor::new(2024);
        let events = ex.scan([XID_LINE, NOISE, SOFTWARE_XID, TRUNCATED, XID_LINE]);
        assert_eq!(events.len(), 3); // two hardware + one software XID
        let s = ex.stats();
        assert_eq!(s.lines_seen, 5);
        assert_eq!(s.xid_lines, 4);
        assert_eq!(s.extracted, 3);
        assert_eq!(s.malformed, 1);
    }

    #[test]
    fn set_year_changes_resolution() {
        let mut ex = XidExtractor::new(2022);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.time.ymd(), (2022, 3, 14));
        ex.set_year(2025);
        assert_eq!(ex.year(), 2025);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.time.ymd(), (2025, 3, 14));
    }

    #[test]
    fn scan_reader_streams_from_io() {
        let text = format!("{XID_LINE}\n{NOISE}\n{XID_LINE}\n");
        let mut ex = XidExtractor::new(2024);
        let events = ex.scan_reader(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(ex.stats().lines_seen, 3);
        // A mut reference works too (C-RW-VALUE).
        let mut cursor = std::io::Cursor::new(XID_LINE.as_bytes());
        let events = ex.scan_reader(&mut cursor).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn scan_reader_propagates_io_errors() {
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut ex = XidExtractor::new(2024);
        assert!(ex.scan_reader(Broken).is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let ex = XidExtractor::new(2024);
        assert_eq!(ex.stats(), ExtractStats::default());
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let later_xid =
            "Mar 14 03:25:00 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, pid=77, GPU has fallen off the bus.";
        let text = format!("{XID_LINE}\n{NOISE}\n{SOFTWARE_XID}\n{later_xid}\n");
        let mut strict = XidExtractor::new(2024);
        let expect = strict.scan_reader(text.as_bytes()).unwrap();
        let mut lenient = XidExtractor::new(2024);
        let mut ledger = QuarantineLedger::new();
        let events = lenient.scan_reader_lenient(text.as_bytes(), &mut ledger);
        assert_eq!(events, expect);
        assert!(ledger.is_empty());
        assert_eq!(lenient.stats().quarantined.total(), 0);
        assert_eq!(lenient.stats().extracted, strict.stats().extracted);
    }

    #[test]
    fn lenient_classifies_each_category() {
        let oversized = format!("Mar 14 03:22:05 gpub042 kernel: {}", "x".repeat(9000));
        let mut bad_utf8 = NOISE.as_bytes().to_vec();
        bad_utf8[20] = 0xFF;
        let regressed = "Mar 13 01:00:00 gpub042 kernel: late arrival";
        let bad_stamp = "Mar 99 03:22:07 gpub042 kernel: body";
        let garbled = "Mar 14 03:22:11 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): ??, huh";
        // A mid-prefix cut: too few fields to even name a host. (The
        // `TRUNCATED` const above keeps all five syslog fields and loses
        // only XID body structure, so it classifies as `BadXid` instead.)
        let cut_short = "Mar 14 03:2";
        let mut input = Vec::new();
        for chunk in [
            XID_LINE.as_bytes(),
            oversized.as_bytes(),
            &bad_utf8,
            cut_short.as_bytes(),
            bad_stamp.as_bytes(),
            garbled.as_bytes(),
            regressed.as_bytes(),
            NOISE.as_bytes(),
        ] {
            input.extend_from_slice(chunk);
            input.push(b'\n');
        }
        let mut ex = XidExtractor::new(2024);
        let mut ledger = QuarantineLedger::new();
        let events = ex.scan_reader_lenient(input.as_slice(), &mut ledger);
        assert_eq!(events.len(), 1); // only XID_LINE survives
        use QuarantineCategory as Q;
        let counts = ledger.counts();
        assert_eq!(counts.get(Q::OversizedLine), 1);
        assert_eq!(counts.get(Q::Encoding), 1);
        assert_eq!(counts.get(Q::Truncated), 1);
        assert_eq!(counts.get(Q::MalformedTimestamp), 1);
        assert_eq!(counts.get(Q::BadXid), 1);
        assert_eq!(counts.get(Q::OutOfOrder), 1);
        assert_eq!(counts.get(Q::BadRecord), 0);
        assert_eq!(ex.stats().quarantined, counts);
        // NOISE at the end is accepted: the anchor did not move on rejects.
        assert_eq!(ex.stats().lines_seen, 8);
    }

    #[test]
    fn lenient_survives_io_failure_mid_stream() {
        struct Flaky {
            fed: bool,
        }
        impl std::io::Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.fed {
                    return Err(std::io::Error::other("disk on fire"));
                }
                self.fed = true;
                let line = format!("{XID_LINE}\n");
                buf[..line.len()].copy_from_slice(line.as_bytes());
                Ok(line.len())
            }
        }
        let mut ex = XidExtractor::new(2024);
        let mut ledger = QuarantineLedger::new();
        let events = ex.scan_reader_lenient(Flaky { fed: false }, &mut ledger);
        assert_eq!(events.len(), 1); // the line before the failure survives
        assert_eq!(ledger.io_errors(), 1);
    }

    #[test]
    fn lenient_quarantine_total_matches_chaos_stats() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        use crate::LogLine;

        // A clean, time-ordered stream of mixed XID and noise lines.
        let mut input = Vec::new();
        let mut chaos =
            ChaosInjector::new(ChaosConfig::uniform_with_duplicates(0.35, 0.1, 0xDECAF));
        for i in 0..400u32 {
            let t =
                Timestamp::from_ymd_hms(2024, 3, 14, 6 + i / 3600, (i / 60) % 60, i % 60).unwrap();
            let body = if i % 3 == 0 {
                "NVRM: Xid (PCI:0000:27:00): 79, pid=9, GPU has fallen off the bus."
            } else {
                "usb 3-2: new high-speed USB device"
            };
            let line = LogLine::new(t, "gpub042", "kernel", body).to_string();
            chaos.corrupt_line(t, &line, &mut input);
        }
        let stats = chaos.stats();
        assert!(stats.quarantinable() > 0, "chaos produced no corruption");
        let mut ex = XidExtractor::new(2024);
        let mut ledger = QuarantineLedger::new();
        let events = ex.scan_reader_lenient(input.as_slice(), &mut ledger);
        assert_eq!(
            ledger.total(),
            stats.quarantinable(),
            "ledger {:?} vs chaos {stats:?}",
            ledger.counts()
        );
        assert_eq!(ledger.io_errors(), 0);
        assert!(!events.is_empty());
        // Duplicates pass through un-quarantined (coalescing's problem).
        assert_eq!(ex.stats().lines_seen, stats.lines_out);
    }
}
