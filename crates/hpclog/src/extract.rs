//! Stage-I extraction: raw log lines in, structured [`XidEvent`]s out.
//!
//! Mirrors the paper's Fig. 1 Stage I: per-day consolidated system logs are
//! filtered by pattern matching and the selected XID error-recovery events
//! are extracted. The extractor is deliberately forgiving — production logs
//! interleave XID lines with arbitrary noise and the occasional truncated
//! record — and it keeps counters so data-quality problems are visible
//! instead of silent.

use crate::line::LogLine;
use crate::nvrm::XidEvent;
use simtime::Timestamp;

/// Counters describing what an extractor has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractStats {
    /// Total lines offered.
    pub lines_seen: u64,
    /// Lines recognised as NVRM XID messages.
    pub xid_lines: u64,
    /// XID lines that failed to parse (truncated/corrupt).
    pub malformed: u64,
    /// Events produced (equals `xid_lines - malformed - excluded`).
    pub extracted: u64,
    /// XID events dropped by the study-inclusion filter (XID 13/43/etc.).
    pub excluded: u64,
}

/// Extracts structured XID events from log lines.
///
/// # Example
///
/// ```
/// use hpclog::extract::XidExtractor;
///
/// let mut ex = XidExtractor::new(2023);
/// let ev = ex
///     .extract_raw("Jun  1 10:00:00 gpub005 kernel: NVRM: Xid (PCI:0000:2a:00): 31, MMU fault")
///     .expect("xid line");
/// assert_eq!(ev.code.value(), 31);
/// assert_eq!(ex.stats().extracted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct XidExtractor {
    year: i32,
    studied_only: bool,
    stats: ExtractStats,
}

impl XidExtractor {
    /// Creates an extractor resolving year-less syslog stamps against
    /// `year`, keeping every XID code (no study filter).
    pub fn new(year: i32) -> Self {
        XidExtractor { year, studied_only: false, stats: ExtractStats::default() }
    }

    /// Creates an extractor that additionally applies the study-inclusion
    /// rule, dropping application-triggered codes (XID 13, 43) and unknown
    /// codes, as §II-B of the paper does.
    pub fn studied_only(year: i32) -> Self {
        XidExtractor { year, studied_only: true, stats: ExtractStats::default() }
    }

    /// The year used to resolve syslog timestamps.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Re-anchors timestamp resolution (call at day-file boundaries when a
    /// multi-year archive is replayed).
    pub fn set_year(&mut self, year: i32) {
        self.year = year;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Extracts from an already-parsed line.
    pub fn extract(&mut self, line: &LogLine) -> Option<XidEvent> {
        self.extract_parts(line.time, &line.host, &line.body)
    }

    /// Parses `raw` as a syslog line and extracts; returns `None` for
    /// unparseable or non-XID lines.
    pub fn extract_raw(&mut self, raw: &str) -> Option<XidEvent> {
        // Cheap pre-filter before paying for full line parsing: every XID
        // line contains this literal.
        if !raw.contains("NVRM: Xid") {
            self.stats.lines_seen += 1;
            return None;
        }
        match LogLine::parse_with_year(raw, self.year) {
            Ok(line) => self.extract(&line),
            Err(_) => {
                self.stats.lines_seen += 1;
                self.stats.xid_lines += 1;
                self.stats.malformed += 1;
                None
            }
        }
    }

    /// Extracts from pre-split line parts (used by the archive replayer to
    /// avoid re-rendering).
    pub fn extract_parts(
        &mut self,
        time: Timestamp,
        host: &str,
        body: &str,
    ) -> Option<XidEvent> {
        self.stats.lines_seen += 1;
        let parsed = XidEvent::parse_body(time, host, body)?;
        self.stats.xid_lines += 1;
        match parsed {
            Ok(ev) => {
                if self.studied_only && !ev.kind().is_studied() {
                    self.stats.excluded += 1;
                    None
                } else {
                    self.stats.extracted += 1;
                    Some(ev)
                }
            }
            Err(_) => {
                self.stats.malformed += 1;
                None
            }
        }
    }

    /// Scans an iterator of raw lines and collects every extracted event.
    pub fn scan<'a, I>(&mut self, lines: I) -> Vec<XidEvent>
    where
        I: IntoIterator<Item = &'a str>,
    {
        lines.into_iter().filter_map(|l| self.extract_raw(l)).collect()
    }

    /// Streams a reader line by line, extracting events without loading
    /// the file into memory — the shape real multi-gigabyte day files
    /// require. Accepts any [`std::io::Read`]; pass `&mut reader` to keep
    /// ownership.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, with events extracted so far
    /// lost (re-run from a clean extractor after fixing the source).
    pub fn scan_reader<R: std::io::Read>(
        &mut self,
        reader: R,
    ) -> std::io::Result<Vec<XidEvent>> {
        use std::io::BufRead;
        let mut events = Vec::new();
        let buffered = std::io::BufReader::new(reader);
        for line in buffered.lines() {
            if let Some(ev) = self.extract_raw(&line?) {
                events.push(ev);
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvrm::PciAddr;
    use xid::XidCode;

    const XID_LINE: &str =
        "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, pid=1234, GPU has fallen off the bus.";
    const NOISE: &str = "Mar 14 03:22:08 gpub042 kernel: usb 3-2: new high-speed USB device";
    const SOFTWARE_XID: &str =
        "Mar 14 03:22:09 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 13, Graphics Exception";
    const TRUNCATED: &str = "Mar 14 03:22:10 gpub042 kernel: NVRM: Xid (PCI:0000:27";

    #[test]
    fn extracts_xid_line() {
        let mut ex = XidExtractor::new(2024);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.code, XidCode::FALLEN_OFF_BUS);
        assert_eq!(ev.host, "gpub042");
        assert_eq!(ev.pci, PciAddr::for_gpu_index(0));
        assert_eq!(ev.time.ymd(), (2024, 3, 14));
    }

    #[test]
    fn noise_is_ignored_cheaply() {
        let mut ex = XidExtractor::new(2024);
        assert!(ex.extract_raw(NOISE).is_none());
        let s = ex.stats();
        assert_eq!(s.lines_seen, 1);
        assert_eq!(s.xid_lines, 0);
    }

    #[test]
    fn study_filter_drops_software_codes() {
        let mut keep_all = XidExtractor::new(2024);
        assert!(keep_all.extract_raw(SOFTWARE_XID).is_some());
        let mut studied = XidExtractor::studied_only(2024);
        assert!(studied.extract_raw(SOFTWARE_XID).is_none());
        assert_eq!(studied.stats().excluded, 1);
        assert_eq!(studied.stats().extracted, 0);
    }

    #[test]
    fn truncated_lines_count_as_malformed() {
        let mut ex = XidExtractor::new(2024);
        assert!(ex.extract_raw(TRUNCATED).is_none());
        assert_eq!(ex.stats().malformed, 1);
    }

    #[test]
    fn scan_mixed_stream() {
        let mut ex = XidExtractor::new(2024);
        let events = ex.scan([XID_LINE, NOISE, SOFTWARE_XID, TRUNCATED, XID_LINE]);
        assert_eq!(events.len(), 3); // two hardware + one software XID
        let s = ex.stats();
        assert_eq!(s.lines_seen, 5);
        assert_eq!(s.xid_lines, 4);
        assert_eq!(s.extracted, 3);
        assert_eq!(s.malformed, 1);
    }

    #[test]
    fn set_year_changes_resolution() {
        let mut ex = XidExtractor::new(2022);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.time.ymd(), (2022, 3, 14));
        ex.set_year(2025);
        assert_eq!(ex.year(), 2025);
        let ev = ex.extract_raw(XID_LINE).unwrap();
        assert_eq!(ev.time.ymd(), (2025, 3, 14));
    }

    #[test]
    fn scan_reader_streams_from_io() {
        let text = format!("{XID_LINE}\n{NOISE}\n{XID_LINE}\n");
        let mut ex = XidExtractor::new(2024);
        let events = ex.scan_reader(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(ex.stats().lines_seen, 3);
        // A mut reference works too (C-RW-VALUE).
        let mut cursor = std::io::Cursor::new(XID_LINE.as_bytes());
        let events = ex.scan_reader(&mut cursor).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn scan_reader_propagates_io_errors() {
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut ex = XidExtractor::new(2024);
        assert!(ex.scan_reader(Broken).is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let ex = XidExtractor::new(2024);
        assert_eq!(ex.stats(), ExtractStats::default());
    }
}
