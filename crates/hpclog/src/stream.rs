//! Resumable Stage-I scanning for live log tails.
//!
//! [`XidExtractor::scan_reader_lenient`] consumes a whole reader in one
//! call; a production ingester instead receives the same bytes in
//! arbitrary-sized chunks — a `tail -f` pipe, a socket, a page of a
//! memory-mapped day file — and must survive process restarts between
//! chunks. [`LenientScan`] is that shape: feed it byte slices in any
//! batching and it produces exactly the events, counters, and quarantine
//! records the one-shot scan would have produced on the concatenated
//! stream. All cross-line state — the partial-line carry, the physical
//! line counter, and the out-of-order anchor — lives in the scanner and
//! can be captured as a plain-data [`ScanSnapshot`] for checkpointing.
//!
//! Equivalence with the batch scan is the contract, not an aspiration:
//! `core`'s differential suite replays full campaigns through this type at
//! batch sizes from one byte upward and byte-compares every surface.

use crate::extract::{ExtractStats, XidExtractor};
use crate::line::{LogLine, LogLineErrorKind};
use crate::nvrm::XidEvent;
use crate::quarantine::{QuarantineCategory, QuarantineLedger};
use simtime::Timestamp;

/// Incremental, restartable equivalent of
/// [`XidExtractor::scan_reader_lenient`].
///
/// # Example
///
/// ```
/// use hpclog::quarantine::QuarantineLedger;
/// use hpclog::stream::LenientScan;
///
/// let line = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, GPU has fallen off the bus.\n";
/// let mut scan = LenientScan::studied_only(2024);
/// let mut ledger = QuarantineLedger::new();
/// let mut events = Vec::new();
/// // Feed the line one byte at a time: same result as one call.
/// for b in line.as_bytes() {
///     scan.feed(std::slice::from_ref(b), &mut ledger, &mut events);
/// }
/// scan.finish(&mut ledger, &mut events);
/// assert_eq!(events.len(), 1);
/// assert_eq!(scan.stats().extracted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct LenientScan {
    extractor: XidExtractor,
    /// Bytes of the current, not-yet-terminated line.
    carry: Vec<u8>,
    /// Physical lines completed so far (1-based numbering of the next line
    /// is `line_no + 1`).
    line_no: u64,
    /// The monotonicity anchor: timestamp of the last accepted line.
    prev_accepted: Option<Timestamp>,
    /// Total bytes fed, including the carry (lets a resuming caller seek).
    bytes_fed: u64,
}

/// Plain-data image of a [`LenientScan`] mid-stream, for checkpointing.
///
/// Fields are public so downstream checkpoint codecs can serialise them
/// without this crate committing to a wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Year used to resolve year-less syslog stamps.
    pub year: i32,
    /// Whether the study-inclusion filter is applied.
    pub studied_only: bool,
    /// Extraction counters accumulated so far.
    pub stats: ExtractStats,
    /// Bytes of the current partial line.
    pub carry: Vec<u8>,
    /// Physical lines completed so far.
    pub line_no: u64,
    /// The out-of-order anchor (last accepted timestamp).
    pub prev_accepted: Option<Timestamp>,
    /// Total bytes fed so far.
    pub bytes_fed: u64,
}

impl LenientScan {
    /// A scanner keeping every XID code (no study filter).
    pub fn new(year: i32) -> Self {
        Self::with_extractor(XidExtractor::new(year))
    }

    /// A scanner applying the study-inclusion rule, like the pipeline's
    /// batch path.
    pub fn studied_only(year: i32) -> Self {
        Self::with_extractor(XidExtractor::studied_only(year))
    }

    fn with_extractor(extractor: XidExtractor) -> Self {
        LenientScan {
            extractor,
            carry: Vec::new(),
            line_no: 0,
            prev_accepted: None,
            bytes_fed: 0,
        }
    }

    /// Counters accumulated so far (the carry is not yet counted).
    pub fn stats(&self) -> ExtractStats {
        self.extractor.stats()
    }

    /// Total bytes fed so far. A resuming caller can seek its source here
    /// and continue feeding.
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// Feeds the next chunk of the byte stream, in any size down to a
    /// single byte. Completed lines are classified exactly as
    /// [`XidExtractor::scan_reader_lenient`] classifies them; accepted
    /// events are appended to `events` and rejects recorded in `ledger`.
    /// Bytes after the last newline are carried until the next call (or
    /// [`finish`](Self::finish)).
    pub fn feed(
        &mut self,
        bytes: &[u8],
        ledger: &mut QuarantineLedger,
        events: &mut Vec<XidEvent>,
    ) {
        let before = self.extractor.stats();
        self.bytes_fed += bytes.len() as u64;
        let mut rest = bytes;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            if self.carry.is_empty() {
                // Fast path: the whole line sits in this chunk.
                let mut line = rest[..pos].to_vec();
                self.process_line(&mut line, ledger, events);
            } else {
                self.carry.extend_from_slice(&rest[..pos]);
                let mut line = std::mem::take(&mut self.carry);
                self.process_line(&mut line, ledger, events);
            }
            rest = &rest[pos + 1..];
        }
        self.carry.extend_from_slice(rest);
        if obs::is_enabled() {
            obs::counter("hpclog_stream_chunks_total", &[]).inc();
            obs::counter("hpclog_stream_bytes_total", &[]).add(bytes.len() as u64);
            crate::extract::record_scan_metrics(&before, &self.extractor.stats());
        }
    }

    /// Flushes the trailing partial line, mirroring how the batch scan
    /// processes a final line with no terminator at end of file. Safe to
    /// call when the carry is empty (no-op), and feeding may continue
    /// afterwards — the stream then behaves like two concatenated files.
    pub fn finish(&mut self, ledger: &mut QuarantineLedger, events: &mut Vec<XidEvent>) {
        if self.carry.is_empty() {
            return;
        }
        let before = self.extractor.stats();
        let mut line = std::mem::take(&mut self.carry);
        self.process_line(&mut line, ledger, events);
        crate::extract::record_scan_metrics(&before, &self.extractor.stats());
    }

    /// One physical line, classified with the exact rules (and rule order)
    /// of [`XidExtractor::scan_reader_lenient`]. `line` excludes the
    /// terminating `\n` but may end in `\r`s, which are trimmed here like
    /// the batch scan trims them.
    fn process_line(
        &mut self,
        raw: &mut Vec<u8>,
        ledger: &mut QuarantineLedger,
        events: &mut Vec<XidEvent>,
    ) {
        self.line_no += 1;
        let line_no = self.line_no;
        while raw.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            raw.pop();
        }
        if raw.is_empty() {
            return;
        }
        self.extractor.stats.lines_seen += 1;
        if raw.len() > ledger.max_line_bytes() {
            self.extractor
                .quarantine(ledger, QuarantineCategory::OversizedLine, line_no, raw);
            return;
        }
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                self.extractor
                    .quarantine(ledger, QuarantineCategory::Encoding, line_no, raw);
                return;
            }
        };
        let line = match LogLine::parse_with_year(text, self.extractor.year) {
            Ok(line) => line,
            Err(err) => {
                let category = match err.kind() {
                    LogLineErrorKind::MissingField => QuarantineCategory::Truncated,
                    LogLineErrorKind::BadTimestamp => QuarantineCategory::MalformedTimestamp,
                };
                self.extractor.quarantine(ledger, category, line_no, raw);
                return;
            }
        };
        let xid = match XidEvent::parse_body(line.time, &line.host, &line.body) {
            Some(Ok(ev)) => {
                self.extractor.stats.xid_lines += 1;
                Some(ev)
            }
            Some(Err(_)) => {
                self.extractor.stats.xid_lines += 1;
                self.extractor.stats.malformed += 1;
                self.extractor
                    .quarantine(ledger, QuarantineCategory::BadXid, line_no, raw);
                return;
            }
            None => None,
        };
        if self.prev_accepted.is_some_and(|prev| line.time < prev) {
            self.extractor
                .quarantine(ledger, QuarantineCategory::OutOfOrder, line_no, raw);
            return;
        }
        self.prev_accepted = Some(line.time);
        if let Some(ev) = xid {
            if self.extractor.studied_only && !ev.kind().is_studied() {
                self.extractor.stats.excluded += 1;
            } else {
                self.extractor.stats.extracted += 1;
                events.push(ev);
            }
        }
    }

    /// Captures the scanner's complete cross-line state as plain data.
    pub fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            year: self.extractor.year,
            studied_only: self.extractor.studied_only,
            stats: self.extractor.stats,
            carry: self.carry.clone(),
            line_no: self.line_no,
            prev_accepted: self.prev_accepted,
            bytes_fed: self.bytes_fed,
        }
    }

    /// Rebuilds a scanner from a [`snapshot`](Self::snapshot); it continues
    /// the stream exactly where the captured one left off.
    pub fn from_snapshot(snapshot: ScanSnapshot) -> Self {
        LenientScan {
            extractor: XidExtractor {
                year: snapshot.year,
                studied_only: snapshot.studied_only,
                stats: snapshot.stats,
            },
            carry: snapshot.carry,
            line_no: snapshot.line_no,
            prev_accepted: snapshot.prev_accepted,
            bytes_fed: snapshot.bytes_fed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XID_LINE: &str =
        "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, pid=1234, GPU has fallen off the bus.";
    const NOISE: &str = "Mar 14 03:22:08 gpub042 kernel: usb 3-2: new high-speed USB device";
    const SOFTWARE_XID: &str =
        "Mar 14 03:22:09 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 13, Graphics Exception";
    const REGRESSED: &str = "Mar 13 01:00:00 gpub042 kernel: late arrival";

    /// A stream exercising every classification outcome, with Windows line
    /// endings, blank lines, and a terminator-less final line.
    fn messy_stream() -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(XID_LINE.as_bytes());
        out.extend_from_slice(b"\r\n\n");
        out.extend_from_slice(NOISE.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(SOFTWARE_XID.as_bytes());
        out.push(b'\n');
        out.extend_from_slice("Mar 14 03:2".as_bytes());
        out.push(b'\n');
        out.extend_from_slice(b"Mar 14 03:22:10 gpub042 kernel: bad \xFF utf8\n");
        out.extend_from_slice(REGRESSED.as_bytes());
        out.push(b'\n');
        // Final line without a newline: the batch scan still processes it.
        out.extend_from_slice(XID_LINE.as_bytes());
        out
    }

    fn batch_scan(input: &[u8]) -> (Vec<XidEvent>, ExtractStats, QuarantineLedger) {
        let mut ex = XidExtractor::studied_only(2024);
        let mut ledger = QuarantineLedger::new();
        let events = ex.scan_reader_lenient(input, &mut ledger);
        (events, ex.stats(), ledger)
    }

    fn streamed_scan(
        input: &[u8],
        chunk: usize,
    ) -> (Vec<XidEvent>, ExtractStats, QuarantineLedger) {
        let mut scan = LenientScan::studied_only(2024);
        let mut ledger = QuarantineLedger::new();
        let mut events = Vec::new();
        for piece in input.chunks(chunk.max(1)) {
            scan.feed(piece, &mut ledger, &mut events);
        }
        scan.finish(&mut ledger, &mut events);
        assert_eq!(scan.bytes_fed(), input.len() as u64);
        (events, scan.stats(), ledger)
    }

    #[test]
    fn any_chunking_matches_the_batch_scan() {
        let input = messy_stream();
        let expect = batch_scan(&input);
        for chunk in [1, 2, 3, 7, 16, 64, input.len()] {
            let got = streamed_scan(&input, chunk);
            assert_eq!(got.0, expect.0, "chunk={chunk}: events");
            assert_eq!(got.1, expect.1, "chunk={chunk}: stats");
            assert_eq!(got.2.counts(), expect.2.counts(), "chunk={chunk}: counts");
            assert_eq!(
                got.2.exemplars(),
                expect.2.exemplars(),
                "chunk={chunk}: exemplars"
            );
        }
    }

    #[test]
    fn finish_is_idempotent_and_optional_on_terminated_streams() {
        let mut scan = LenientScan::studied_only(2024);
        let mut ledger = QuarantineLedger::new();
        let mut events = Vec::new();
        scan.feed(format!("{XID_LINE}\n").as_bytes(), &mut ledger, &mut events);
        scan.finish(&mut ledger, &mut events);
        scan.finish(&mut ledger, &mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(scan.stats().lines_seen, 1);
    }

    #[test]
    fn snapshot_round_trip_mid_line_continues_exactly() {
        let input = messy_stream();
        let expect = batch_scan(&input);
        // Cut at every byte offset, including mid-line and mid-UTF-8.
        for cut in 0..=input.len() {
            let mut scan = LenientScan::studied_only(2024);
            let mut ledger = QuarantineLedger::new();
            let mut events = Vec::new();
            scan.feed(&input[..cut], &mut ledger, &mut events);
            let mut resumed = LenientScan::from_snapshot(scan.snapshot());
            assert_eq!(resumed.bytes_fed(), cut as u64);
            resumed.feed(&input[cut..], &mut ledger, &mut events);
            resumed.finish(&mut ledger, &mut events);
            assert_eq!(events, expect.0, "cut={cut}: events");
            assert_eq!(resumed.stats(), expect.1, "cut={cut}: stats");
            assert_eq!(ledger.counts(), expect.2.counts(), "cut={cut}: counts");
        }
    }

    #[test]
    fn out_of_order_anchor_survives_the_snapshot() {
        let mut scan = LenientScan::studied_only(2024);
        let mut ledger = QuarantineLedger::new();
        let mut events = Vec::new();
        scan.feed(format!("{NOISE}\n").as_bytes(), &mut ledger, &mut events);
        let mut resumed = LenientScan::from_snapshot(scan.snapshot());
        // A regressed line right after restore must still be caught.
        resumed.feed(
            format!("{REGRESSED}\n").as_bytes(),
            &mut ledger,
            &mut events,
        );
        assert_eq!(ledger.counts().get(QuarantineCategory::OutOfOrder), 1);
    }
}
