//! NVIDIA kernel-module (`NVRM`) message formats.
//!
//! The driver logs XID events through the kernel with bodies like
//!
//! ```text
//! NVRM: Xid (PCI:0000:27:00): 79, pid=1234, GPU has fallen off the bus.
//! ```
//!
//! This module renders and parses those bodies. Rendering is used by the
//! fault injector (so injected errors are byte-identical to real driver
//! output); parsing is Stage I of the analysis pipeline.

use crate::line::LogLine;
use simtime::Timestamp;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use xid::{ErrorKind, XidCode};

/// A PCI device address as printed by the NVIDIA driver: `0000:27:00`.
///
/// The driver prints domain, bus and device (function omitted for GPUs).
/// Bus numbers identify the physical GPU within a node; the mapping from
/// bus to GPU index is fixed per node type and handled by `clustersim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PciAddr {
    /// PCI domain (always `0000` on Delta nodes).
    pub domain: u16,
    /// PCI bus number; identifies the GPU within the node.
    pub bus: u8,
    /// PCI device number.
    pub device: u8,
}

impl PciAddr {
    /// Creates a PCI address.
    pub const fn new(domain: u16, bus: u8, device: u8) -> Self {
        PciAddr {
            domain,
            bus,
            device,
        }
    }

    /// The conventional address of the GPU with the given index on a Delta
    /// A100 node (GPUs sit on buses 0x27, 0x2A, 0x51, 0x57, 0x9E, 0xA4,
    /// 0xC7, 0xCA in index order, matching 8-way HGX baseboards).
    pub fn for_gpu_index(index: u8) -> PciAddr {
        const BUSES: [u8; 8] = [0x27, 0x2A, 0x51, 0x57, 0x9E, 0xA4, 0xC7, 0xCA];
        PciAddr::new(0, BUSES[(index as usize) % BUSES.len()], 0)
    }

    /// The GPU index conventionally associated with this address, if the
    /// bus is one of the known GPU buses.
    pub fn gpu_index(self) -> Option<u8> {
        const BUSES: [u8; 8] = [0x27, 0x2A, 0x51, 0x57, 0x9E, 0xA4, 0xC7, 0xCA];
        BUSES.iter().position(|&b| b == self.bus).map(|i| i as u8)
    }
}

impl fmt::Display for PciAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04x}:{:02x}:{:02x}",
            self.domain, self.bus, self.device
        )
    }
}

impl FromStr for PciAddr {
    type Err = ParseNvrmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().split(':');
        let domain = parts
            .next()
            .and_then(|v| u16::from_str_radix(v, 16).ok())
            .ok_or_else(|| ParseNvrmError::new(format!("bad PCI domain in {s:?}")))?;
        let bus = parts
            .next()
            .and_then(|v| u8::from_str_radix(v, 16).ok())
            .ok_or_else(|| ParseNvrmError::new(format!("bad PCI bus in {s:?}")))?;
        let device = parts
            .next()
            .and_then(|v| u8::from_str_radix(v, 16).ok())
            .ok_or_else(|| ParseNvrmError::new(format!("bad PCI device in {s:?}")))?;
        Ok(PciAddr {
            domain,
            bus,
            device,
        })
    }
}

/// A structured XID error-recovery event extracted from (or destined for)
/// a log line.
///
/// This is the record type that flows through the whole pipeline: the fault
/// injector produces them, renders them to text, and the extractor
/// recovers them for analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XidEvent {
    /// When the driver logged the event.
    pub time: Timestamp,
    /// Hostname of the node that logged it.
    pub host: String,
    /// PCI address of the affected GPU.
    pub pci: PciAddr,
    /// The raw XID code.
    pub code: XidCode,
    /// Free-text remainder of the message (pid, channel, etc.).
    pub detail: String,
}

impl XidEvent {
    /// Creates an event.
    pub fn new(
        time: Timestamp,
        host: impl Into<String>,
        pci: PciAddr,
        code: XidCode,
        detail: impl Into<String>,
    ) -> Self {
        XidEvent {
            time,
            host: host.into(),
            pci,
            code,
            detail: detail.into(),
        }
    }

    /// The semantic kind of this event.
    pub fn kind(&self) -> ErrorKind {
        ErrorKind::from_code(self.code)
    }

    /// Renders the NVRM message body (everything after `kernel: `).
    pub fn body(&self) -> String {
        if self.detail.is_empty() {
            format!("NVRM: Xid (PCI:{}): {}", self.pci, self.code)
        } else {
            format!(
                "NVRM: Xid (PCI:{}): {}, {}",
                self.pci, self.code, self.detail
            )
        }
    }

    /// Renders the complete syslog line for this event.
    pub fn to_log_line(&self) -> LogLine {
        LogLine::new(self.time, self.host.clone(), "kernel", self.body())
    }

    /// Attempts to parse an NVRM XID body (as produced by [`XidEvent::body`]
    /// or a real driver); returns `None` if `body` is not an XID message.
    ///
    /// Timestamp and host are taken from the surrounding [`LogLine`], so
    /// this function only sees the body text.
    ///
    /// # Errors
    ///
    /// Returns `Some(Err(_))` when the body *is* an XID message but its
    /// address or code fields are malformed — a signal worth surfacing
    /// (truncated logs) rather than silently dropping.
    pub fn parse_body(
        time: Timestamp,
        host: &str,
        body: &str,
    ) -> Option<Result<XidEvent, ParseNvrmError>> {
        let rest = body.strip_prefix("NVRM: Xid (PCI:")?;
        Some(Self::parse_after_prefix(time, host, rest))
    }

    fn parse_after_prefix(
        time: Timestamp,
        host: &str,
        rest: &str,
    ) -> Result<XidEvent, ParseNvrmError> {
        let (addr_str, rest) = rest
            .split_once("):")
            .ok_or_else(|| ParseNvrmError::new("missing '):' after PCI address"))?;
        let pci: PciAddr = addr_str.parse()?;
        let rest = rest.trim_start();
        let (code_str, detail) = match rest.split_once(',') {
            Some((c, d)) => (c.trim(), d.trim_start()),
            None => (rest.trim(), ""),
        };
        let code: XidCode = code_str
            .parse()
            .map_err(|_| ParseNvrmError::new(format!("bad XID code {code_str:?}")))?;
        Ok(XidEvent {
            time,
            host: host.to_owned(),
            pci,
            code,
            detail: detail.to_owned(),
        })
    }

    /// The canonical detail text the NVIDIA driver prints for `kind`,
    /// parameterised by a process id where the real driver prints one.
    pub fn canonical_detail(kind: ErrorKind, pid: u32) -> String {
        match kind {
            ErrorKind::MmuError => format!(
                "pid={pid}, name=python, Ch 00000008, intr 10000000. MMU Fault: ENGINE GRAPHICS GPCCLIENT_T1_0 faulted @ 0x7f50_c0000000"
            ),
            ErrorKind::DoubleBitError => {
                "DBE (Double Bit Error) ECC Error detected in HBM memory".to_owned()
            }
            ErrorKind::RowRemapEvent => "Row remapping event: row remapper pending".to_owned(),
            ErrorKind::RowRemapFailure => {
                "Row remapping failure: no spare rows available in bank".to_owned()
            }
            ErrorKind::NvlinkError => {
                "NVLink: fatal error detected on link, LinkState 0x5".to_owned()
            }
            ErrorKind::FallenOffBus => format!("pid={pid}, GPU has fallen off the bus."),
            ErrorKind::ContainedMemoryError => format!(
                "pid={pid}, Contained: SM (0x3). RST: No, D-RST: No"
            ),
            ErrorKind::UncontainedMemoryError => {
                "Uncontained: Uncorrectable ECC error. RST: Yes, D-RST: No".to_owned()
            }
            ErrorKind::GspError => format!(
                "pid={pid}, Timeout after 6s of waiting for RPC response from GPU0 GSP!"
            ),
            ErrorKind::PmuSpiError => "PMU SPI RPC read failure, cmd 0x7".to_owned(),
            ErrorKind::GpuSoftware => format!(
                "pid={pid}, Graphics Exception: ESR 0x505648=0x1000e"
            ),
            ErrorKind::ResetChannel => format!("pid={pid}, Reset Channel Verification Error"),
            ErrorKind::Other(_) => String::new(),
        }
    }
}

impl fmt::Display for XidEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} xid={} ({})",
            self.time,
            self.host,
            self.code,
            self.kind()
        )
    }
}

/// Error returned when an NVRM message body is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNvrmError {
    what: String,
}

impl ParseNvrmError {
    fn new(what: impl Into<String>) -> Self {
        ParseNvrmError { what: what.into() }
    }
}

impl fmt::Display for ParseNvrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid NVRM message: {}", self.what)
    }
}

impl Error for ParseNvrmError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7).unwrap()
    }

    #[test]
    fn pci_display_matches_driver_format() {
        let addr = PciAddr::new(0, 0x27, 0);
        assert_eq!(addr.to_string(), "0000:27:00");
    }

    #[test]
    fn pci_roundtrip() {
        for index in 0..8 {
            let addr = PciAddr::for_gpu_index(index);
            let parsed: PciAddr = addr.to_string().parse().unwrap();
            assert_eq!(parsed, addr);
            assert_eq!(addr.gpu_index(), Some(index));
        }
    }

    #[test]
    fn pci_unknown_bus_has_no_gpu_index() {
        assert_eq!(PciAddr::new(0, 0x01, 0).gpu_index(), None);
    }

    #[test]
    fn pci_parse_rejects_garbage() {
        for bad in ["", "zz:27:00", "0000", "0000:zz:00"] {
            assert!(bad.parse::<PciAddr>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn event_body_matches_driver_shape() {
        let ev = XidEvent::new(
            t0(),
            "gpub042",
            PciAddr::for_gpu_index(0),
            XidCode::FALLEN_OFF_BUS,
            "pid=1234, GPU has fallen off the bus.",
        );
        assert_eq!(
            ev.body(),
            "NVRM: Xid (PCI:0000:27:00): 79, pid=1234, GPU has fallen off the bus."
        );
    }

    #[test]
    fn body_parse_roundtrip() {
        for kind in ErrorKind::STUDIED {
            let ev = XidEvent::new(
                t0(),
                "gpub007",
                PciAddr::for_gpu_index(3),
                kind.primary_code(),
                XidEvent::canonical_detail(kind, 4242),
            );
            let parsed = XidEvent::parse_body(t0(), "gpub007", &ev.body())
                .expect("is an XID body")
                .expect("parses");
            assert_eq!(parsed, ev, "{kind}");
            assert_eq!(parsed.kind(), kind);
        }
    }

    #[test]
    fn body_without_detail_roundtrips() {
        let ev = XidEvent::new(t0(), "h", PciAddr::for_gpu_index(1), XidCode::new(63), "");
        let parsed = XidEvent::parse_body(t0(), "h", &ev.body())
            .unwrap()
            .unwrap();
        assert_eq!(parsed, ev);
    }

    #[test]
    fn non_xid_bodies_are_skipped_not_errors() {
        for body in [
            "",
            "usb 3-2: new high-speed USB device",
            "NVRM: GPU at PCI:0000:27:00 has pending interrupts",
            "nvidia-smi started",
        ] {
            assert!(XidEvent::parse_body(t0(), "h", body).is_none(), "{body:?}");
        }
    }

    #[test]
    fn malformed_xid_bodies_are_errors() {
        for body in [
            "NVRM: Xid (PCI:0000:27:00): notanumber, detail",
            "NVRM: Xid (PCI:zz:27:00): 79, detail",
            "NVRM: Xid (PCI:0000:27:00 79 detail",
        ] {
            let res = XidEvent::parse_body(t0(), "h", body).expect("recognised as XID-ish");
            assert!(res.is_err(), "{body:?}");
        }
    }

    #[test]
    fn full_log_line_roundtrip() {
        let ev = XidEvent::new(
            t0(),
            "gpub099",
            PciAddr::for_gpu_index(2),
            XidCode::GSP_RPC_TIMEOUT,
            XidEvent::canonical_detail(ErrorKind::GspError, 777),
        );
        let line = ev.to_log_line();
        let rendered = line.to_string();
        let reparsed = LogLine::parse_with_year(&rendered, 2024).unwrap();
        let back = XidEvent::parse_body(reparsed.time, &reparsed.host, &reparsed.body)
            .unwrap()
            .unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn display_is_informative() {
        let ev = XidEvent::new(
            t0(),
            "gpub001",
            PciAddr::for_gpu_index(0),
            XidCode::new(119),
            "",
        );
        let s = ev.to_string();
        assert!(s.contains("gpub001"));
        assert!(s.contains("119"));
        assert!(s.contains("GSP"));
    }

    #[test]
    fn canonical_details_parse_for_every_kind() {
        // Detail text must not contain the sequence that would confuse the
        // body parser (a "):"" before the code).
        for kind in ErrorKind::STUDIED {
            let detail = XidEvent::canonical_detail(kind, 1);
            assert!(!detail.contains("):"), "{kind}: {detail}");
        }
    }
}
