//! HPC syslog substrate: timestamps, syslog-style lines, NVRM/XID message
//! formats, a small pattern-matching engine and structured event extraction.
//!
//! This crate reproduces *Stage I* of the Delta study's pipeline (Fig. 1):
//! raw per-day system logs are filtered with pattern matching and the
//! selected XID error-recovery events are extracted into structured records
//! for analysis. It is equally the substrate the fault injector writes
//! *into*: `faultsim` renders injected errors through [`nvrm`] into
//! perfectly ordinary log text, so the extractor is exercised end-to-end on
//! the same byte format a real Delta node produces.
//!
//! # Layout
//!
//! * [`Timestamp`] — minimal civil time (no external time crates): seconds
//!   since the Unix epoch with Gregorian conversion, syslog and ISO-8601
//!   rendering/parsing.
//! * [`LogLine`] — an RFC3164-style record: timestamp, hostname, tag, body.
//! * [`nvrm`] — NVIDIA kernel-module message formats: render and parse
//!   `NVRM: Xid (PCI:0000:xx:00): NN, ...` bodies; [`nvrm::XidEvent`] is the
//!   structured form.
//! * [`pattern`] — the filtering engine: glob/capture patterns compiled once
//!   and matched against millions of lines without regex dependencies.
//! * [`extract`] — the Stage-I extractor: lines in, [`nvrm::XidEvent`]s out,
//!   tolerant of interleaved noise.
//! * [`archive`] — per-day log consolidation, mirroring Delta's collection.
//! * [`quarantine`] — the reject ledger lenient readers feed: per-category
//!   counts plus a bounded reservoir of exemplar bad lines.
//! * [`shard`] — host-sharded parallel extraction with a deterministic
//!   k-way merge back into the canonical `(time, host, seq)` order.
//! * [`stream`] — the resumable lenient scanner: the same classification as
//!   [`extract`], fed in arbitrary-sized byte chunks, with snapshotable
//!   cross-line state (partial-line carry, line counter, order anchor).
//! * [`chaos`] — seeded corruption injection for resilience testing:
//!   truncation, invalid UTF-8, clock skew, interleaving, duplication.
//!
//! # Example
//!
//! ```
//! use hpclog::{LogLine, extract::XidExtractor};
//!
//! let line = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, \
//!             pid=1234, GPU has fallen off the bus.";
//! let parsed: LogLine = line.parse()?;
//! let mut extractor = XidExtractor::new(2024);
//! let event = extractor.extract(&parsed).expect("an XID line");
//! assert_eq!(event.code.value(), 79);
//! assert_eq!(event.host, "gpub042");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod chaos;
pub mod extract;
mod line;
pub mod nvrm;
pub mod pattern;
pub mod quarantine;
pub mod shard;
pub mod stream;

pub use line::{LogLine, LogLineErrorKind, ParseLogLineError};
pub use nvrm::{PciAddr, XidEvent};
pub use quarantine::{QuarantineCategory, QuarantineCounts, QuarantineLedger};
pub use simtime::{Duration, ParseTimestampError, Timestamp};
