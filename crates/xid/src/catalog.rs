//! The full NVIDIA XID reference catalog.
//!
//! [`ErrorKind`](crate::ErrorKind) covers the kinds the Delta study tracks;
//! real logs contain many more. This catalog maps every XID documented in
//! NVIDIA's *GPU Deployment and Management* guide (the paper's first
//! reference) to a name and a coarse class, so tooling built on this
//! crate can label arbitrary log content instead of lumping everything
//! into `Other`.

use crate::XidCode;
use std::fmt;

/// Coarse classification of a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum XidClass {
    /// Typically caused by user/application code.
    Application,
    /// Driver or firmware software faults.
    Driver,
    /// GPU hardware (engines, bus, power, thermal).
    Hardware,
    /// Memory / ECC subsystem.
    Memory,
    /// NVLink / fabric.
    Interconnect,
    /// Informational or vendor-internal.
    Informational,
}

impl XidClass {
    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            XidClass::Application => "application",
            XidClass::Driver => "driver",
            XidClass::Hardware => "hardware",
            XidClass::Memory => "memory",
            XidClass::Interconnect => "interconnect",
            XidClass::Informational => "informational",
        }
    }
}

impl fmt::Display for XidClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One catalog row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The XID code.
    pub code: u16,
    /// NVIDIA's name for the event.
    pub name: &'static str,
    /// Coarse class.
    pub class: XidClass,
}

/// The documented XIDs, in numeric order.
///
/// Names follow the deployment guide; codes NVIDIA marks as reserved or
/// undocumented are omitted.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        code: 1,
        name: "Invalid or corrupted push buffer stream",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 2,
        name: "Invalid or corrupted push buffer stream",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 3,
        name: "Invalid or corrupted push buffer stream",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 4,
        name: "Invalid or corrupted push buffer stream / GPU semaphore timeout",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 6,
        name: "Invalid or corrupted push buffer stream",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 7,
        name: "Invalid or corrupted push buffer address",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 8,
        name: "GPU stopped processing",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 9,
        name: "Driver error programming GPU",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 11,
        name: "Invalid or corrupted push buffer stream",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 12,
        name: "Driver error handling GPU exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 13,
        name: "Graphics Engine Exception",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 16,
        name: "Display engine hung",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 18,
        name: "Bus mastering disabled in PCI Config Space",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 19,
        name: "Display Engine error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 20,
        name: "Invalid or corrupted Mpeg push buffer",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 21,
        name: "Invalid or corrupted Motion Estimation push buffer",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 22,
        name: "Invalid or corrupted Video Processor push buffer",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 24,
        name: "GPU semaphore timeout",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 25,
        name: "Invalid or illegal push buffer stream",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 26,
        name: "Framebuffer timeout",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 27,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 28,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 29,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 30,
        name: "GPU semaphore access error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 31,
        name: "GPU memory page fault",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 32,
        name: "Invalid or corrupted push buffer stream (PBDMA)",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 33,
        name: "Internal micro-controller error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 34,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 35,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 36,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 37,
        name: "Driver firmware error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 38,
        name: "Driver firmware error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 42,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 43,
        name: "GPU stopped processing (reset channel verification)",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 44,
        name: "Graphics Engine fault during context switch",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 45,
        name: "Preemptive cleanup, due to previous errors",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 46,
        name: "GPU stopped processing",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 47,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 48,
        name: "Double Bit ECC Error",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 54,
        name: "Auxiliary power is not connected to the GPU board",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 56,
        name: "Display Engine error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 57,
        name: "Error programming video memory interface",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 58,
        name: "Unstable video memory interface detected",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 59,
        name: "Internal micro-controller error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 60,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 61,
        name: "Internal micro-controller breakpoint/warning",
        class: XidClass::Informational,
    },
    CatalogEntry {
        code: 62,
        name: "Internal micro-controller halt",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 63,
        name: "ECC page retirement or row remapping recording event",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 64,
        name: "ECC page retirement or row remapper recording failure",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 65,
        name: "Video processor exception",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 66,
        name: "Illegal access by driver",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 67,
        name: "Illegal access by driver",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 68,
        name: "NVDEC0 Exception",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 69,
        name: "Graphics Engine class error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 70,
        name: "CE3: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 71,
        name: "CE4: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 72,
        name: "CE5: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 73,
        name: "NVENC2 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 74,
        name: "NVLink Error",
        class: XidClass::Interconnect,
    },
    CatalogEntry {
        code: 79,
        name: "GPU has fallen off the bus",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 80,
        name: "Corrupted data sent to GPU",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 81,
        name: "VGA Subsystem Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 82,
        name: "NVJPG0 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 83,
        name: "NVDEC1 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 84,
        name: "NVDEC2 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 85,
        name: "CE6: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 86,
        name: "CE7: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 87,
        name: "CE8: Unknown Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 88,
        name: "NVDEC3 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 89,
        name: "NVDEC4 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 92,
        name: "High single-bit ECC error rate",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 94,
        name: "Contained ECC error",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 95,
        name: "Uncontained ECC error",
        class: XidClass::Memory,
    },
    CatalogEntry {
        code: 96,
        name: "NVDEC5 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 97,
        name: "NVDEC6 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 98,
        name: "NVDEC7 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 99,
        name: "NVJPG1 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 100,
        name: "NVJPG2 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 101,
        name: "NVJPG3 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 102,
        name: "NVJPG4 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 103,
        name: "NVJPG5 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 104,
        name: "NVJPG6 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 105,
        name: "NVJPG7 Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 106,
        name: "SMBPBI Test Message",
        class: XidClass::Informational,
    },
    CatalogEntry {
        code: 107,
        name: "SMBPBI Test Message Silent",
        class: XidClass::Informational,
    },
    CatalogEntry {
        code: 109,
        name: "Context Switch Timeout Error",
        class: XidClass::Application,
    },
    CatalogEntry {
        code: 110,
        name: "Security Fault Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 111,
        name: "Display Bundle Error Event",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 112,
        name: "Display Supervisor Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 113,
        name: "DP Link Training Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 114,
        name: "Display Pipeline Underflow Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 115,
        name: "Display Core Channel Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 116,
        name: "Display Window Channel Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 117,
        name: "Display Cursor Channel Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 118,
        name: "Display Pixel Pipeline Error",
        class: XidClass::Driver,
    },
    CatalogEntry {
        code: 119,
        name: "GSP RPC Timeout",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 120,
        name: "GSP Error",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 121,
        name: "C2C Link Error",
        class: XidClass::Interconnect,
    },
    CatalogEntry {
        code: 122,
        name: "SPI PMU RPC Read Failure",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 123,
        name: "SPI PMU RPC Write Failure",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 124,
        name: "SPI PMU RPC Erase Failure",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 125,
        name: "Inforom FS Failure",
        class: XidClass::Hardware,
    },
    CatalogEntry {
        code: 140,
        name: "Unrecovered ECC Error",
        class: XidClass::Memory,
    },
];

/// Looks up a code in the catalog.
pub fn lookup(code: XidCode) -> Option<&'static CatalogEntry> {
    // The catalog is sorted by code; binary search keeps lookups O(log n).
    CATALOG
        .binary_search_by_key(&code.value(), |e| e.code)
        .ok()
        .map(|i| &CATALOG[i])
}

/// A human-readable name for any code: the catalog name when documented,
/// `"XID <n> (undocumented)"` otherwise.
pub fn name_of(code: XidCode) -> String {
    match lookup(code) {
        Some(entry) => entry.name.to_owned(),
        None => format!("XID {} (undocumented)", code.value()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for pair in CATALOG.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "{} vs {}",
                pair[0].code,
                pair[1].code
            );
        }
    }

    #[test]
    fn every_studied_code_is_documented() {
        for kind in ErrorKind::STUDIED {
            for &code in kind.codes() {
                let entry = lookup(XidCode::new(code))
                    .unwrap_or_else(|| panic!("XID {code} missing from catalog"));
                assert!(!entry.name.is_empty());
            }
        }
    }

    #[test]
    fn studied_classes_agree_with_kind_categories() {
        use crate::Category;
        for kind in ErrorKind::STUDIED {
            for &code in kind.codes() {
                let entry = lookup(XidCode::new(code)).unwrap();
                let compatible = match kind.category() {
                    Category::Hardware => entry.class == XidClass::Hardware,
                    Category::Memory => entry.class == XidClass::Memory,
                    Category::Interconnect => entry.class == XidClass::Interconnect,
                    Category::Software => {
                        matches!(entry.class, XidClass::Application | XidClass::Driver)
                    }
                };
                assert!(
                    compatible,
                    "XID {code}: {:?} vs {:?}",
                    entry.class,
                    kind.category()
                );
            }
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(
            lookup(XidCode::new(79)).unwrap().name,
            "GPU has fallen off the bus"
        );
        assert_eq!(lookup(XidCode::new(119)).unwrap().name, "GSP RPC Timeout");
        assert!(lookup(XidCode::new(999)).is_none());
        assert!(lookup(XidCode::new(0)).is_none());
    }

    #[test]
    fn name_of_fallback() {
        assert_eq!(name_of(XidCode::new(74)), "NVLink Error");
        assert_eq!(name_of(XidCode::new(777)), "XID 777 (undocumented)");
    }

    #[test]
    fn excluded_codes_are_application_class() {
        assert_eq!(
            lookup(XidCode::new(13)).unwrap().class,
            XidClass::Application
        );
        assert_eq!(
            lookup(XidCode::new(43)).unwrap().class,
            XidClass::Application
        );
    }

    #[test]
    fn class_labels_distinct() {
        let labels = [
            XidClass::Application,
            XidClass::Driver,
            XidClass::Hardware,
            XidClass::Memory,
            XidClass::Interconnect,
            XidClass::Informational,
        ];
        let mut seen: Vec<&str> = labels.iter().map(|c| c.label()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), labels.len());
    }
}
