//! Recovery actions documented for each error kind (Table I).

use std::fmt;

/// The action required to clear an error, per NVIDIA's deployment guide and
/// Delta SRE practice.
///
/// Ordering is by escalating severity: `None < GpuReset < NodeReboot <
/// SreIntervention < GpuReplacement`. The availability model in
/// `clustersim` keys its downtime estimates off this ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RecoveryAction {
    /// No administrative action; the error clears with the offending
    /// process or is informational.
    #[default]
    None,
    /// The GPU must be reset (application-transparent node-level action).
    GpuReset,
    /// The whole node must be drained and rebooted.
    NodeReboot,
    /// Site reliability engineers must inspect hardware/software manually.
    SreIntervention,
    /// The GPU must be physically replaced.
    GpuReplacement,
}

impl RecoveryAction {
    /// All actions, in escalating-severity order.
    pub const ALL: [RecoveryAction; 5] = [
        RecoveryAction::None,
        RecoveryAction::GpuReset,
        RecoveryAction::NodeReboot,
        RecoveryAction::SreIntervention,
        RecoveryAction::GpuReplacement,
    ];

    /// Whether the action interrupts the GPU (reset or stronger).
    pub fn requires_reset(self) -> bool {
        self >= RecoveryAction::GpuReset
    }

    /// Whether the action takes the *node* out of service (reboot or
    /// stronger), not just one GPU.
    pub fn takes_node_down(self) -> bool {
        self >= RecoveryAction::NodeReboot
    }

    /// Whether a human must be involved.
    pub fn needs_human(self) -> bool {
        self >= RecoveryAction::SreIntervention
    }

    /// A short lowercase label, suitable for CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::None => "none",
            RecoveryAction::GpuReset => "gpu-reset",
            RecoveryAction::NodeReboot => "node-reboot",
            RecoveryAction::SreIntervention => "sre-intervention",
            RecoveryAction::GpuReplacement => "gpu-replacement",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ladder_is_monotone() {
        for pair in RecoveryAction::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn predicates_follow_the_ladder() {
        assert!(!RecoveryAction::None.requires_reset());
        assert!(RecoveryAction::GpuReset.requires_reset());
        assert!(!RecoveryAction::GpuReset.takes_node_down());
        assert!(RecoveryAction::NodeReboot.takes_node_down());
        assert!(!RecoveryAction::NodeReboot.needs_human());
        assert!(RecoveryAction::SreIntervention.needs_human());
        assert!(RecoveryAction::GpuReplacement.needs_human());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(RecoveryAction::default(), RecoveryAction::None);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = RecoveryAction::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len());
    }
}
