//! Raw numeric XID codes as they appear in NVRM log lines.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A raw numeric XID code as printed by the NVIDIA driver.
///
/// This is deliberately a thin newtype over the wire value: *any* `u16` is a
/// representable code (drivers add new ones over time), and interpretation
/// happens one level up in [`ErrorKind`](crate::ErrorKind). Constants are
/// provided for the codes the Delta study tracks.
///
/// # Example
///
/// ```
/// use xid::XidCode;
///
/// let code: XidCode = "79".parse()?;
/// assert_eq!(code, XidCode::FALLEN_OFF_BUS);
/// assert_eq!(code.to_string(), "79");
/// # Ok::<(), xid::ParseXidCodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct XidCode(u16);

impl XidCode {
    /// GPU software error (application-triggered; excluded from the study).
    pub const GPU_SOFTWARE: XidCode = XidCode(13);
    /// GPU memory-management-unit error.
    pub const MMU_ERROR: XidCode = XidCode(31);
    /// Reset-channel verification error (application-triggered; excluded).
    pub const RESET_CHANNEL: XidCode = XidCode(43);
    /// Double-bit ECC memory error.
    pub const DBE: XidCode = XidCode(48);
    /// Row-remapping event (spare row marked for replacement).
    pub const ROW_REMAP_EVENT: XidCode = XidCode(63);
    /// Row-remapping failure (spare rows exhausted).
    pub const ROW_REMAP_FAILURE: XidCode = XidCode(64);
    /// NVLink interconnect error.
    pub const NVLINK_ERROR: XidCode = XidCode(74);
    /// GPU has fallen off the bus.
    pub const FALLEN_OFF_BUS: XidCode = XidCode(79);
    /// Contained uncorrectable ECC error (containment succeeded).
    pub const CONTAINED_ECC: XidCode = XidCode(94);
    /// Uncontained uncorrectable ECC error (containment failed).
    pub const UNCONTAINED_ECC: XidCode = XidCode(95);
    /// GSP RPC timeout.
    pub const GSP_RPC_TIMEOUT: XidCode = XidCode(119);
    /// GSP error (secondary code).
    pub const GSP_ERROR: XidCode = XidCode(120);
    /// PMU SPI RPC read failure.
    pub const PMU_SPI_READ_FAILURE: XidCode = XidCode(122);
    /// PMU SPI RPC write failure (secondary code).
    pub const PMU_SPI_WRITE_FAILURE: XidCode = XidCode(123);

    /// Wraps a raw code value.
    pub const fn new(raw: u16) -> Self {
        XidCode(raw)
    }

    /// The raw numeric value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for XidCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u16> for XidCode {
    fn from(raw: u16) -> Self {
        XidCode(raw)
    }
}

impl From<XidCode> for u16 {
    fn from(code: XidCode) -> Self {
        code.0
    }
}

/// Error returned when parsing an [`XidCode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXidCodeError {
    input: String,
}

impl fmt::Display for ParseXidCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid XID code {:?}: expected a decimal integer in 0..=65535",
            self.input
        )
    }
}

impl Error for ParseXidCodeError {}

impl FromStr for XidCode {
    type Err = ParseXidCodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<u16>()
            .map(XidCode)
            .map_err(|_| ParseXidCodeError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_nvidia_numbering() {
        assert_eq!(XidCode::MMU_ERROR.value(), 31);
        assert_eq!(XidCode::DBE.value(), 48);
        assert_eq!(XidCode::ROW_REMAP_EVENT.value(), 63);
        assert_eq!(XidCode::ROW_REMAP_FAILURE.value(), 64);
        assert_eq!(XidCode::NVLINK_ERROR.value(), 74);
        assert_eq!(XidCode::FALLEN_OFF_BUS.value(), 79);
        assert_eq!(XidCode::CONTAINED_ECC.value(), 94);
        assert_eq!(XidCode::UNCONTAINED_ECC.value(), 95);
        assert_eq!(XidCode::GSP_RPC_TIMEOUT.value(), 119);
        assert_eq!(XidCode::GSP_ERROR.value(), 120);
        assert_eq!(XidCode::PMU_SPI_READ_FAILURE.value(), 122);
        assert_eq!(XidCode::PMU_SPI_WRITE_FAILURE.value(), 123);
    }

    #[test]
    fn parse_roundtrip() {
        for raw in [0u16, 13, 31, 119, 65535] {
            let code = XidCode::new(raw);
            let parsed: XidCode = code.to_string().parse().unwrap();
            assert_eq!(parsed, code);
        }
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(" 74 ".parse::<XidCode>().unwrap(), XidCode::NVLINK_ERROR);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "abc", "-1", "70000", "3.5"] {
            let err = bad.parse::<XidCode>().unwrap_err();
            assert!(err.to_string().contains("invalid XID code"), "{bad}");
        }
    }

    #[test]
    fn conversion_traits() {
        let code: XidCode = 94u16.into();
        assert_eq!(code, XidCode::CONTAINED_ECC);
        let raw: u16 = code.into();
        assert_eq!(raw, 94);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(XidCode::MMU_ERROR < XidCode::DBE);
        assert!(XidCode::GSP_ERROR > XidCode::GSP_RPC_TIMEOUT);
    }
}
