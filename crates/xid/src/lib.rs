//! NVIDIA XID error taxonomy for A100-class GPUs.
//!
//! NVIDIA GPUs report driver-visible errors as *XID* events in the kernel
//! log (`NVRM: Xid (...): <code>, ...`). This crate is the shared vocabulary
//! of the Delta resilience study (DSN'25): the numeric codes, the event
//! kinds built from them, their hardware/memory/interconnect categories, the
//! documented recovery actions, and the study's inclusion rules (XID 13 and
//! 43 are excluded as application-triggered).
//!
//! It is a pure data/logic crate with no I/O and no dependencies, used by
//! the `hpclog` log substrate, the `faultsim` injector, and the
//! `resilience` analysis pipeline alike.
//!
//! # Example
//!
//! ```
//! use xid::{ErrorKind, XidCode, Category};
//!
//! let code = XidCode::new(119);
//! let kind = ErrorKind::from_code(code);
//! assert_eq!(kind, ErrorKind::GspError);
//! assert_eq!(kind.category(), Category::Hardware);
//! assert!(kind.recovery().requires_reset());
//! assert!(kind.is_studied());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod category;
mod code;
mod kind;
mod recovery;

pub use category::Category;
pub use code::{ParseXidCodeError, XidCode};
pub use kind::ErrorKind;
pub use recovery::RecoveryAction;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_rows_are_fully_classified() {
        // Every row of Table I must map code -> kind -> category coherently.
        let rows: &[(u16, ErrorKind, Category)] = &[
            (31, ErrorKind::MmuError, Category::Hardware),
            (48, ErrorKind::DoubleBitError, Category::Memory),
            (63, ErrorKind::RowRemapEvent, Category::Memory),
            (64, ErrorKind::RowRemapFailure, Category::Memory),
            (74, ErrorKind::NvlinkError, Category::Interconnect),
            (79, ErrorKind::FallenOffBus, Category::Hardware),
            (94, ErrorKind::ContainedMemoryError, Category::Memory),
            (95, ErrorKind::UncontainedMemoryError, Category::Memory),
            (119, ErrorKind::GspError, Category::Hardware),
            (120, ErrorKind::GspError, Category::Hardware),
            (122, ErrorKind::PmuSpiError, Category::Hardware),
            (123, ErrorKind::PmuSpiError, Category::Hardware),
        ];
        for &(raw, kind, cat) in rows {
            let code = XidCode::new(raw);
            assert_eq!(ErrorKind::from_code(code), kind, "code {raw}");
            assert_eq!(kind.category(), cat, "code {raw}");
            assert!(kind.is_studied(), "code {raw} must be in the study set");
        }
    }

    #[test]
    fn excluded_codes_are_not_studied() {
        for raw in [13u16, 43] {
            let kind = ErrorKind::from_code(XidCode::new(raw));
            assert!(!kind.is_studied(), "XID {raw} is app-triggered, excluded");
        }
    }
}
