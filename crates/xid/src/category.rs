//! The study's top-level error categorisation (Table I "Category" column).

use std::fmt;

/// The component family an error kind belongs to.
///
/// The paper's headline comparison — "GPU memory is 160× more reliable than
/// GPU hardware" — is a comparison between the aggregate MTBE of the
/// [`Category::Memory`] kinds and the [`Category::Hardware`] kinds, so the
/// category assignment below *is* part of the methodology, copied verbatim
/// from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Non-memory GPU hardware: MMU, GSP, PMU, bus interface.
    Hardware,
    /// HBM2e memory and its ECC/row-remap/containment machinery.
    Memory,
    /// NVLink GPU-to-GPU fabric.
    Interconnect,
    /// Application-triggered software errors (excluded from the study).
    Software,
}

impl Category {
    /// All categories, in Table I presentation order.
    pub const ALL: [Category; 4] = [
        Category::Hardware,
        Category::Memory,
        Category::Interconnect,
        Category::Software,
    ];

    /// A short lowercase label, suitable for CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            Category::Hardware => "hardware",
            Category::Memory => "memory",
            Category::Interconnect => "interconnect",
            Category::Software => "software",
        }
    }

    /// Whether errors in this category count toward the study statistics.
    pub fn is_studied(self) -> bool {
        !matches!(self, Category::Software)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn only_software_is_excluded() {
        assert!(Category::Hardware.is_studied());
        assert!(Category::Memory.is_studied());
        assert!(Category::Interconnect.is_studied());
        assert!(!Category::Software.is_studied());
    }

    #[test]
    fn display_matches_label() {
        for c in Category::ALL {
            assert_eq!(c.to_string(), c.label());
        }
    }
}
