//! Event kinds: the study's semantic grouping of raw XID codes.

use crate::{Category, RecoveryAction, XidCode};
use std::fmt;

/// A semantic GPU error kind, the unit of analysis of the Delta study.
///
/// Kinds group raw codes the way Table I does: XID 119 and 120 are both
/// [`ErrorKind::GspError`]; 122 and 123 are both [`ErrorKind::PmuSpiError`].
/// Codes the study does not track map to [`ErrorKind::Other`], which carries
/// the raw code so nothing is lost in translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// XID 31 — memory-management-unit error (invalid memory access or
    /// driver/hardware bug).
    MmuError,
    /// XID 48 — double-bit ECC error, uncorrectable by SECDED.
    DoubleBitError,
    /// XID 63 — row-remapping event: a spare row was marked to replace a
    /// faulty one.
    RowRemapEvent,
    /// XID 64 — row-remapping failure: spare rows exhausted.
    RowRemapFailure,
    /// XID 74 — NVLink interconnect error.
    NvlinkError,
    /// XID 79 — GPU fell off the system bus.
    FallenOffBus,
    /// XID 94 — uncorrectable ECC error successfully contained.
    ContainedMemoryError,
    /// XID 95 — uncorrectable ECC error containment failed.
    UncontainedMemoryError,
    /// XID 119/120 — GPU System Processor (GSP) error / RPC timeout.
    GspError,
    /// XID 122/123 — PMU SPI RPC communication failure.
    PmuSpiError,
    /// XID 13 — application-triggered graphics engine exception (excluded).
    GpuSoftware,
    /// XID 43 — reset-channel verification error (excluded).
    ResetChannel,
    /// Any code the study does not track; the raw code is preserved.
    Other(XidCode),
}

impl ErrorKind {
    /// The kinds the study tracks, in Table I order.
    ///
    /// `Other`, `GpuSoftware` and `ResetChannel` are deliberately absent.
    pub const STUDIED: [ErrorKind; 10] = [
        ErrorKind::MmuError,
        ErrorKind::DoubleBitError,
        ErrorKind::RowRemapEvent,
        ErrorKind::RowRemapFailure,
        ErrorKind::NvlinkError,
        ErrorKind::FallenOffBus,
        ErrorKind::ContainedMemoryError,
        ErrorKind::UncontainedMemoryError,
        ErrorKind::GspError,
        ErrorKind::PmuSpiError,
    ];

    /// Classifies a raw code into its kind.
    pub fn from_code(code: XidCode) -> ErrorKind {
        match code.value() {
            13 => ErrorKind::GpuSoftware,
            31 => ErrorKind::MmuError,
            43 => ErrorKind::ResetChannel,
            48 => ErrorKind::DoubleBitError,
            63 => ErrorKind::RowRemapEvent,
            64 => ErrorKind::RowRemapFailure,
            74 => ErrorKind::NvlinkError,
            79 => ErrorKind::FallenOffBus,
            94 => ErrorKind::ContainedMemoryError,
            95 => ErrorKind::UncontainedMemoryError,
            119 | 120 => ErrorKind::GspError,
            122 | 123 => ErrorKind::PmuSpiError,
            _ => ErrorKind::Other(code),
        }
    }

    /// The canonical (primary) XID code for this kind.
    ///
    /// For kinds spanning two codes (GSP, PMU) this is the code the paper
    /// lists first (119, 122). For [`ErrorKind::Other`] it is the wrapped
    /// code itself.
    pub fn primary_code(self) -> XidCode {
        match self {
            ErrorKind::MmuError => XidCode::MMU_ERROR,
            ErrorKind::DoubleBitError => XidCode::DBE,
            ErrorKind::RowRemapEvent => XidCode::ROW_REMAP_EVENT,
            ErrorKind::RowRemapFailure => XidCode::ROW_REMAP_FAILURE,
            ErrorKind::NvlinkError => XidCode::NVLINK_ERROR,
            ErrorKind::FallenOffBus => XidCode::FALLEN_OFF_BUS,
            ErrorKind::ContainedMemoryError => XidCode::CONTAINED_ECC,
            ErrorKind::UncontainedMemoryError => XidCode::UNCONTAINED_ECC,
            ErrorKind::GspError => XidCode::GSP_RPC_TIMEOUT,
            ErrorKind::PmuSpiError => XidCode::PMU_SPI_READ_FAILURE,
            ErrorKind::GpuSoftware => XidCode::GPU_SOFTWARE,
            ErrorKind::ResetChannel => XidCode::RESET_CHANNEL,
            ErrorKind::Other(code) => code,
        }
    }

    /// The component category (Table I "Category" column).
    pub fn category(self) -> Category {
        match self {
            ErrorKind::MmuError
            | ErrorKind::FallenOffBus
            | ErrorKind::GspError
            | ErrorKind::PmuSpiError => Category::Hardware,
            ErrorKind::DoubleBitError
            | ErrorKind::RowRemapEvent
            | ErrorKind::RowRemapFailure
            | ErrorKind::ContainedMemoryError
            | ErrorKind::UncontainedMemoryError => Category::Memory,
            ErrorKind::NvlinkError => Category::Interconnect,
            ErrorKind::GpuSoftware | ErrorKind::ResetChannel | ErrorKind::Other(_) => {
                Category::Software
            }
        }
    }

    /// The documented recovery action (Table I "Recovery Action" column).
    pub fn recovery(self) -> RecoveryAction {
        match self {
            // MMU errors clear with the offending process; no reset needed
            // unless they stem from a real hardware fault.
            ErrorKind::MmuError => RecoveryAction::None,
            // A DBE triggers row remapping; reset needed only if that fails.
            ErrorKind::DoubleBitError => RecoveryAction::GpuReset,
            ErrorKind::RowRemapEvent => RecoveryAction::GpuReset,
            ErrorKind::RowRemapFailure => RecoveryAction::GpuReset,
            ErrorKind::NvlinkError => RecoveryAction::SreIntervention,
            ErrorKind::FallenOffBus => RecoveryAction::SreIntervention,
            ErrorKind::ContainedMemoryError => RecoveryAction::None,
            ErrorKind::UncontainedMemoryError => RecoveryAction::SreIntervention,
            // GSP errors require draining and rebooting the whole node.
            ErrorKind::GspError => RecoveryAction::NodeReboot,
            ErrorKind::PmuSpiError => RecoveryAction::None,
            ErrorKind::GpuSoftware | ErrorKind::ResetChannel | ErrorKind::Other(_) => {
                RecoveryAction::None
            }
        }
    }

    /// Whether this kind counts toward the study statistics.
    ///
    /// XID 13 and 43 are excluded despite their volume because they are
    /// typically triggered by user code and are not indicators of degraded
    /// GPU health; unknown codes are likewise excluded.
    pub fn is_studied(self) -> bool {
        !matches!(
            self,
            ErrorKind::GpuSoftware | ErrorKind::ResetChannel | ErrorKind::Other(_)
        )
    }

    /// The paper's abbreviation for this kind (Table I "Abbr." column).
    pub fn abbreviation(self) -> &'static str {
        match self {
            ErrorKind::MmuError => "MMU Error",
            ErrorKind::DoubleBitError => "DBE",
            ErrorKind::RowRemapEvent => "RRE",
            ErrorKind::RowRemapFailure => "RRF",
            ErrorKind::NvlinkError => "NVLink Error",
            ErrorKind::FallenOffBus => "GPU Fallen Off the Bus",
            ErrorKind::ContainedMemoryError => "Contained Memory Error",
            ErrorKind::UncontainedMemoryError => "Uncontained Memory Error",
            ErrorKind::GspError => "GSP Error",
            ErrorKind::PmuSpiError => "PMU SPI Error",
            ErrorKind::GpuSoftware => "GPU Software Error",
            ErrorKind::ResetChannel => "Reset Channel Error",
            ErrorKind::Other(_) => "Other",
        }
    }

    /// A one-line description derived from the NVIDIA XID manual.
    pub fn description(self) -> &'static str {
        match self {
            ErrorKind::MmuError => "GPU memory management unit (MMU) error",
            ErrorKind::DoubleBitError => "double-bit ECC memory error exceeding SECDED correction",
            ErrorKind::RowRemapEvent => "row remapping event: spare row marked for replacement",
            ErrorKind::RowRemapFailure => "row remapping failure: spare rows exhausted",
            ErrorKind::NvlinkError => "NVLink connection error between GPUs",
            ErrorKind::FallenOffBus => "GPU has fallen off the system bus and is unreachable",
            ErrorKind::ContainedMemoryError => {
                "uncorrectable ECC error contained by terminating affected processes"
            }
            ErrorKind::UncontainedMemoryError => "uncorrectable ECC error that escaped containment",
            ErrorKind::GspError => "GPU System Processor (GSP) error or RPC timeout",
            ErrorKind::PmuSpiError => "PMU SPI RPC failure: communication with the PMU failed",
            ErrorKind::GpuSoftware => "application-triggered graphics engine exception",
            ErrorKind::ResetChannel => "reset channel verification error",
            ErrorKind::Other(_) => "XID code not tracked by the study",
        }
    }

    /// All raw codes that map to this kind.
    pub fn codes(self) -> &'static [u16] {
        match self {
            ErrorKind::MmuError => &[31],
            ErrorKind::DoubleBitError => &[48],
            ErrorKind::RowRemapEvent => &[63],
            ErrorKind::RowRemapFailure => &[64],
            ErrorKind::NvlinkError => &[74],
            ErrorKind::FallenOffBus => &[79],
            ErrorKind::ContainedMemoryError => &[94],
            ErrorKind::UncontainedMemoryError => &[95],
            ErrorKind::GspError => &[119, 120],
            ErrorKind::PmuSpiError => &[122, 123],
            ErrorKind::GpuSoftware => &[13],
            ErrorKind::ResetChannel => &[43],
            ErrorKind::Other(_) => &[],
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

impl From<XidCode> for ErrorKind {
    fn from(code: XidCode) -> Self {
        ErrorKind::from_code(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_code_maps_back_to_its_kind() {
        for kind in ErrorKind::STUDIED {
            for &raw in kind.codes() {
                assert_eq!(ErrorKind::from_code(XidCode::new(raw)), kind);
            }
            assert!(kind.codes().contains(&kind.primary_code().value()));
        }
    }

    #[test]
    fn unknown_code_preserves_value() {
        let kind = ErrorKind::from_code(XidCode::new(999));
        assert_eq!(kind, ErrorKind::Other(XidCode::new(999)));
        assert_eq!(kind.primary_code().value(), 999);
        assert!(!kind.is_studied());
        assert_eq!(kind.category(), Category::Software);
    }

    #[test]
    fn studied_list_matches_predicate() {
        for kind in ErrorKind::STUDIED {
            assert!(kind.is_studied());
        }
        assert!(!ErrorKind::GpuSoftware.is_studied());
        assert!(!ErrorKind::ResetChannel.is_studied());
    }

    #[test]
    fn gsp_requires_node_reboot() {
        // Paper §IV(iii): GSP errors require manual node draining and reboot.
        assert_eq!(ErrorKind::GspError.recovery(), RecoveryAction::NodeReboot);
        assert!(ErrorKind::GspError.recovery().requires_reset());
    }

    #[test]
    fn abbreviations_are_unique_among_studied() {
        let mut abbrs: Vec<&str> = ErrorKind::STUDIED
            .iter()
            .map(|k| k.abbreviation())
            .collect();
        abbrs.sort_unstable();
        let before = abbrs.len();
        abbrs.dedup();
        assert_eq!(before, abbrs.len());
    }

    #[test]
    fn descriptions_are_nonempty() {
        for kind in ErrorKind::STUDIED {
            assert!(!kind.description().is_empty());
        }
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(ErrorKind::GspError.to_string(), "GSP Error");
    }

    #[test]
    fn from_trait_matches_from_code() {
        let code = XidCode::new(74);
        let via_trait: ErrorKind = code.into();
        assert_eq!(via_trait, ErrorKind::from_code(code));
    }
}
