//! Job identities, terminal states and sacct-style records.

use clustersim::{GpuId, NodeId};
use simtime::{Duration, Timestamp};
use std::fmt;

/// A job's scheduler-assigned identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A job's terminal state, mirroring Slurm's accounting states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Ran to completion with exit code 0.
    Completed,
    /// Exited non-zero (application error, OOM, crash).
    Failed,
    /// Cancelled by the user or an administrator.
    Cancelled,
    /// Hit its walltime limit.
    Timeout,
    /// Terminated because a node it ran on failed (GPU error, reboot).
    NodeFail,
}

impl JobState {
    /// Whether this state counts as success in the §V-A statistics.
    pub fn is_success(self) -> bool {
        self == JobState::Completed
    }

    /// Whether the state was caused by infrastructure rather than the user.
    pub fn is_infrastructure_failure(self) -> bool {
        self == JobState::NodeFail
    }

    /// Slurm's accounting label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Completed => "COMPLETED",
            JobState::Failed => "FAILED",
            JobState::Cancelled => "CANCELLED",
            JobState::Timeout => "TIMEOUT",
            JobState::NodeFail => "NODE_FAIL",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One sacct-style accounting record, the unit the analysis pipeline joins
/// against the error log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Scheduler-assigned id.
    pub id: JobId,
    /// User-visible job name (the §V-A ML classification reads this).
    pub name: String,
    /// When the job was submitted.
    pub submit: Timestamp,
    /// When it started running.
    pub start: Timestamp,
    /// When it terminated.
    pub end: Timestamp,
    /// Number of GPUs allocated (0 for CPU jobs).
    pub gpus: u32,
    /// The nodes it ran on (as Slurm records them).
    pub nodes: Vec<NodeId>,
    /// The specific GPUs allocated (Delta's Slurm exposes device-level
    /// GRES bindings, which is what lets the paper attribute per-GPU XID
    /// errors to jobs).
    pub gpu_ids: Vec<GpuId>,
    /// Terminal state.
    pub state: JobState,
}

impl JobRecord {
    /// Elapsed (wall-clock) runtime.
    pub fn elapsed(&self) -> Duration {
        self.end - self.start
    }

    /// Time spent waiting in the queue.
    pub fn wait(&self) -> Duration {
        self.start - self.submit
    }

    /// GPU-hours consumed.
    pub fn gpu_hours(&self) -> f64 {
        self.gpus as f64 * self.elapsed().as_hours_f64()
    }

    /// Whether this is a GPU job.
    pub fn is_gpu_job(&self) -> bool {
        self.gpus > 0
    }

    /// The §V-A machine-learning heuristic: a job is ML if its name
    /// contains an ML-indicative keyword (`train`, `model`, framework and
    /// architecture names). The paper applies exactly this approximation
    /// because submission scripts were off limits.
    pub fn is_ml(&self) -> bool {
        const KEYWORDS: [&str; 12] = [
            "train",
            "model",
            "bert",
            "resnet",
            "llm",
            "gpt",
            "finetune",
            "epoch",
            "torch",
            "tensorflow",
            "diffusion",
            "inference",
        ];
        let name = self.name.to_ascii_lowercase();
        KEYWORDS.iter().any(|k| name.contains(k))
    }

    /// Whether the job was running at instant `t`.
    pub fn running_at(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the job ran on `node`.
    pub fn uses_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Whether the job was allocated `gpu`.
    pub fn uses_gpu(&self, gpu: GpuId) -> bool {
        self.gpu_ids.contains(&gpu)
    }
}

impl fmt::Display for JobRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} gpus={} nodes={} state={} elapsed={}",
            self.id,
            self.name,
            self.gpus,
            self.nodes.len(),
            self.state,
            self.elapsed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, gpus: u32) -> JobRecord {
        JobRecord {
            id: JobId(1),
            name: name.to_owned(),
            submit: Timestamp::from_unix(0),
            start: Timestamp::from_unix(600),
            end: Timestamp::from_unix(4200),
            gpus,
            nodes: vec![NodeId::new(3)],
            gpu_ids: vec![GpuId::new(NodeId::new(3), 0)],
            state: JobState::Completed,
        }
    }

    #[test]
    fn elapsed_wait_and_gpu_hours() {
        let r = record("sim", 4);
        assert_eq!(r.elapsed(), Duration::from_secs(3600));
        assert_eq!(r.wait(), Duration::from_secs(600));
        assert!((r.gpu_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ml_classification_keywords() {
        assert!(record("train_resnet50", 1).is_ml());
        assert!(record("BERT-finetune", 4).is_ml());
        assert!(record("Llama_MODEL_eval", 8).is_ml());
        assert!(!record("namd_apoa1", 2).is_ml());
        assert!(!record("wrf_forecast", 1).is_ml());
    }

    #[test]
    fn running_at_bounds() {
        let r = record("x", 1);
        assert!(!r.running_at(Timestamp::from_unix(599)));
        assert!(r.running_at(Timestamp::from_unix(600)));
        assert!(r.running_at(Timestamp::from_unix(4199)));
        assert!(!r.running_at(Timestamp::from_unix(4200)));
    }

    #[test]
    fn state_predicates() {
        assert!(JobState::Completed.is_success());
        for s in [
            JobState::Failed,
            JobState::Cancelled,
            JobState::Timeout,
            JobState::NodeFail,
        ] {
            assert!(!s.is_success());
        }
        assert!(JobState::NodeFail.is_infrastructure_failure());
        assert!(!JobState::Failed.is_infrastructure_failure());
    }

    #[test]
    fn uses_node_and_gpu() {
        let r = record("x", 1);
        assert!(r.uses_node(NodeId::new(3)));
        assert!(!r.uses_node(NodeId::new(4)));
        assert!(r.uses_gpu(GpuId::new(NodeId::new(3), 0)));
        assert!(!r.uses_gpu(GpuId::new(NodeId::new(3), 1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobState::NodeFail.to_string(), "NODE_FAIL");
        assert!(record("abc", 2).to_string().contains("abc"));
        assert_eq!(JobId(9).to_string(), "job#9");
    }
}
