//! Incremental replay of accounting records, as a live `sacct` poller
//! would observe them.
//!
//! A batch analysis reads the whole accounting database at once. A
//! streaming deployment instead polls: every few minutes it asks Slurm
//! for the jobs that *ended* since the last poll, because a job only
//! becomes an accounting fact at termination. [`RecordFeed`] turns a
//! simulation's finished job list into exactly that replay — records
//! surface in `(end, id)` order, in batches cut by time or by count.
//!
//! The order is deterministic (ties on `end` break by job id), which is
//! what lets the streaming pipeline's differential tests demand
//! byte-identical reports no matter how the replay is batched: the
//! records always arrive in the same sequence, only the chunk boundaries
//! move.

use crate::job::JobRecord;
use simtime::Timestamp;

/// Replays job records in `(end, id)` order, the order a live accounting
/// poller discovers them.
///
/// # Example
///
/// ```
/// use slurmsim::feed::RecordFeed;
/// # use slurmsim::{JobId, JobRecord, JobState};
/// # use simtime::Timestamp;
/// # let job = |id: u64, end: u64| JobRecord {
/// #     id: JobId(id), name: "x".into(),
/// #     submit: Timestamp::from_unix(0), start: Timestamp::from_unix(0),
/// #     end: Timestamp::from_unix(end), gpus: 1, nodes: vec![],
/// #     gpu_ids: vec![], state: JobState::Completed,
/// # };
/// let mut feed = RecordFeed::new(vec![job(2, 50), job(1, 10)]);
/// assert_eq!(feed.up_to(Timestamp::from_unix(10)).len(), 1); // job 1
/// assert_eq!(feed.remaining(), 1);
/// assert_eq!(feed.drain().len(), 1); // job 2
/// assert!(feed.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct RecordFeed {
    records: Vec<JobRecord>,
    next: usize,
}

impl RecordFeed {
    /// Builds a feed over `records`, sorting them into replay order.
    pub fn new(mut records: Vec<JobRecord>) -> Self {
        records.sort_by(|a, b| a.end.cmp(&b.end).then_with(|| a.id.cmp(&b.id)));
        RecordFeed { records, next: 0 }
    }

    /// Records not yet replayed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.next
    }

    /// Whether every record has been replayed.
    pub fn is_done(&self) -> bool {
        self.next == self.records.len()
    }

    /// Replays every record that ended at or before `t` and has not been
    /// replayed yet — one accounting poll. Subsequent calls with the same
    /// `t` yield an empty slice.
    pub fn up_to(&mut self, t: Timestamp) -> &[JobRecord] {
        let start = self.next;
        while self.next < self.records.len() && self.records[self.next].end <= t {
            self.next += 1;
        }
        &self.records[start..self.next]
    }

    /// Replays the next `n` records (fewer if the feed runs dry).
    pub fn next_batch(&mut self, n: usize) -> &[JobRecord] {
        let start = self.next;
        self.next = (self.next + n).min(self.records.len());
        &self.records[start..self.next]
    }

    /// Replays everything left.
    pub fn drain(&mut self) -> &[JobRecord] {
        self.next_batch(self.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};

    fn job(id: u64, end: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            name: format!("job{id}"),
            submit: Timestamp::from_unix(0),
            start: Timestamp::from_unix(1),
            end: Timestamp::from_unix(end),
            gpus: 1,
            nodes: vec![],
            gpu_ids: vec![],
            state: JobState::Completed,
        }
    }

    #[test]
    fn replays_in_end_then_id_order() {
        let mut feed = RecordFeed::new(vec![job(3, 20), job(2, 10), job(1, 20)]);
        let ids: Vec<u64> = feed.drain().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, [2, 1, 3]);
    }

    #[test]
    fn time_cuts_are_half_open_on_the_right() {
        let mut feed = RecordFeed::new(vec![job(1, 10), job(2, 20), job(3, 30)]);
        assert_eq!(feed.up_to(Timestamp::from_unix(9)).len(), 0);
        assert_eq!(feed.up_to(Timestamp::from_unix(20)).len(), 2);
        // Re-polling the same instant discovers nothing new.
        assert_eq!(feed.up_to(Timestamp::from_unix(20)).len(), 0);
        assert_eq!(feed.remaining(), 1);
    }

    #[test]
    fn count_batches_never_overrun() {
        let mut feed = RecordFeed::new((0..5).map(|i| job(i, 10 * i)).collect());
        assert_eq!(feed.next_batch(2).len(), 2);
        assert_eq!(feed.next_batch(10).len(), 3);
        assert!(feed.is_done());
        assert_eq!(feed.next_batch(1).len(), 0);
        assert_eq!(feed.drain().len(), 0);
    }

    #[test]
    fn any_batching_yields_the_same_sequence() {
        let records: Vec<JobRecord> = (0..20).map(|i| job(i, (i * 7) % 13)).collect();
        let mut whole = RecordFeed::new(records.clone());
        let reference: Vec<u64> = whole.drain().iter().map(|j| j.id.0).collect();
        for batch in [1usize, 3, 7, 100] {
            let mut feed = RecordFeed::new(records.clone());
            let mut got = Vec::new();
            while !feed.is_done() {
                got.extend(feed.next_batch(batch).iter().map(|j| j.id.0));
            }
            assert_eq!(got, reference, "batch={batch}");
        }
    }
}
