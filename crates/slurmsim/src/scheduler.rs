//! The event-driven FIFO + backfill scheduler and error co-simulation.
//!
//! [`Simulation::run`] replays a generated workload against a cluster while
//! consuming two external timelines produced by the fault injector: GPU
//! error events (which kill co-located jobs per the [`KillModel`]) and node
//! hold windows (during which a node is unschedulable). Holds kill no jobs:
//! per §V-C, Delta drains a node and lets active jobs finish before the
//! reboot — job deaths come from the errors themselves. The output is the
//! sacct-style accounting table the analysis pipeline joins against the
//! error log — the §V methodology run in the forward direction.

use crate::job::{JobId, JobRecord, JobState};
use crate::kill::{KillModel, KillScope};
use crate::workload::{JobSpec, WorkloadConfig};
use clustersim::{Cluster, GpuErrorEvent, GpuId, NodeId, Outage};
use simrng::Rng;
use simtime::Timestamp;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How many queued jobs each scheduling pass may inspect (bounded backfill:
/// deeper scans change almost nothing at realistic queue depths but cost
/// simulation time).
const BACKFILL_DEPTH: usize = 64;

/// Queue-drain policy: what the scheduler does when the head of the queue
/// cannot start.
///
/// Delta runs Slurm with backfill, so [`SchedPolicy::Backfill`] is the
/// default and reproduces the historical behavior exactly. The strict
/// FIFO variant is a counterfactual axis (the `/whatif?sched=fifo` knob):
/// a wide job stuck at the head blocks everything behind it, which is how
/// head-of-line blocking turns node drains into queue-wide wait inflation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict first-in-first-out: each pass stops at the first queued job
    /// that cannot be placed.
    Fifo,
    /// Bounded backfill: up to [`BACKFILL_DEPTH`] jobs behind a stuck head
    /// may start if they fit (the measured-system default).
    #[default]
    Backfill,
}

impl SchedPolicy {
    /// Parses the `/whatif` query token: `fifo` or `backfill`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted tokens.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "fifo" => Ok(SchedPolicy::Fifo),
            "backfill" => Ok(SchedPolicy::Backfill),
            other => Err(format!("bad sched {other:?} (expected fifo|backfill)")),
        }
    }

    /// The canonical query token (the inverse of [`SchedPolicy::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Backfill => "backfill",
        }
    }
}

/// Requeue-on-failure policy: what happens to a job killed by a GPU error.
///
/// Models the §V-B mitigation discussion: without checkpointing a restarted
/// job repeats all of its work; with periodic checkpoints it resumes from
/// the last one. [`RequeuePolicy::none`] (the default) matches Delta as
/// measured — killed jobs just fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequeuePolicy {
    /// Maximum automatic restarts per job (0 disables requeueing).
    pub max_retries: u32,
    /// Delay between the kill and re-entering the queue.
    pub restart_delay: simtime::Duration,
    /// Checkpoint period; `None` means restarts repeat the whole job.
    pub checkpoint_interval: Option<simtime::Duration>,
}

impl RequeuePolicy {
    /// No requeueing (Delta as measured).
    pub fn none() -> Self {
        RequeuePolicy {
            max_retries: 0,
            restart_delay: simtime::Duration::ZERO,
            checkpoint_interval: None,
        }
    }

    /// Requeue up to `max_retries` times with hourly checkpoints and a
    /// 5-minute restart delay — a typical checkpoint/restart setup.
    pub fn hourly_checkpoints(max_retries: u32) -> Self {
        RequeuePolicy {
            max_retries,
            restart_delay: simtime::Duration::from_mins(5),
            checkpoint_interval: Some(simtime::Duration::from_hours(1)),
        }
    }

    /// Whether requeueing is active.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

impl Default for RequeuePolicy {
    fn default() -> Self {
        RequeuePolicy::none()
    }
}

/// Aggregate scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerStats {
    /// Jobs killed directly by a GPU error.
    pub error_kills: u64,
    /// Error events that landed on a GPU with no running job.
    pub errors_on_idle: u64,
    /// Peak queue depth observed.
    pub peak_queue: usize,
    /// Automatic restarts performed under the [`RequeuePolicy`].
    pub requeues: u64,
    /// GPU-hours of work discarded by kills (work since the last
    /// checkpoint, or the whole attempt without checkpointing).
    pub lost_gpu_hours: f64,
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// GPU job records, ordered by job id (submission order).
    pub jobs: Vec<JobRecord>,
    /// CPU job records (generated, not scheduled — they share no resources
    /// with the GPU partition).
    pub cpu_jobs: Vec<JobRecord>,
    /// Scheduler counters.
    pub stats: SchedulerStats,
}

impl SimulationOutcome {
    /// Success rate of the GPU jobs (§V-A reports 74.68%).
    pub fn gpu_success_rate(&self) -> f64 {
        success_rate(&self.jobs)
    }

    /// Success rate of the CPU jobs (§V-A reports 74.90%).
    pub fn cpu_success_rate(&self) -> f64 {
        success_rate(&self.cpu_jobs)
    }

    /// GPU allocation (fraction of GPU-hours occupied) over a window on a
    /// cluster with `total_gpus` devices. Delta's operational period ran
    /// around 90% allocated.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is zero or the window is empty.
    pub fn gpu_allocation(&self, total_gpus: usize, window: simtime::Period) -> f64 {
        assert!(total_gpus > 0);
        let capacity = total_gpus as f64 * window.hours();
        let used: f64 = self
            .jobs
            .iter()
            .map(|j| {
                // Clip each job to the window.
                let start = j.start.max(window.start);
                let end = j.end.min(window.end);
                if end > start {
                    j.gpus as f64 * (end - start).as_hours_f64()
                } else {
                    0.0
                }
            })
            .sum();
        used / capacity
    }

    /// Queue-wait statistics in hours: `(mean, p50, p99)`, `None` with no
    /// started jobs.
    pub fn wait_stats_hours(&self) -> Option<(f64, f64, f64)> {
        let mut waits: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| !j.nodes.is_empty())
            .map(|j| j.wait().as_hours_f64())
            .collect();
        if waits.is_empty() {
            return None;
        }
        waits.sort_by(f64::total_cmp);
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let idx = |p: f64| waits[(p * (waits.len() - 1) as f64).round() as usize];
        Some((mean, idx(0.50), idx(0.99)))
    }
}

fn success_rate(jobs: &[JobRecord]) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    jobs.iter().filter(|j| j.state.is_success()).count() as f64 / jobs.len() as f64
}

/// A configured scheduler simulation.
///
/// # Example
///
/// ```
/// use clustersim::{Cluster, ClusterSpec};
/// use slurmsim::{Simulation, WorkloadConfig};
///
/// let cluster = Cluster::new(ClusterSpec::tiny());
/// let workload = WorkloadConfig::delta_scaled(0.001);
/// let expected = workload.gpu_jobs;
/// let outcome = Simulation::new(&cluster, workload, 7).run(&[], &[]);
/// assert_eq!(outcome.jobs.len() as u64, expected);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation<'c> {
    cluster: &'c Cluster,
    workload: WorkloadConfig,
    kill: KillModel,
    requeue: RequeuePolicy,
    policy: SchedPolicy,
    seed: u64,
}

impl<'c> Simulation<'c> {
    /// Creates a simulation with the default (paper-calibrated) kill model,
    /// no requeueing, and backfill scheduling.
    pub fn new(cluster: &'c Cluster, workload: WorkloadConfig, seed: u64) -> Self {
        Simulation {
            cluster,
            workload,
            kill: KillModel::delta(),
            requeue: RequeuePolicy::none(),
            policy: SchedPolicy::Backfill,
            seed,
        }
    }

    /// Overrides the kill model (for ablations).
    pub fn with_kill_model(mut self, kill: KillModel) -> Self {
        self.kill = kill;
        self
    }

    /// Enables requeue-on-failure (checkpoint/restart what-if analysis).
    pub fn with_requeue(mut self, requeue: RequeuePolicy) -> Self {
        self.requeue = requeue;
        self
    }

    /// Overrides the queue-drain policy (scheduler what-if analysis).
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs the workload against the error and node-hold timelines.
    ///
    /// `errors` must be sorted by time (campaign outputs are); `holds` are
    /// the campaign's merged unschedulable windows. Events outside the
    /// workload window are ignored harmlessly.
    pub fn run(&self, errors: &[GpuErrorEvent], holds: &[Outage]) -> SimulationOutcome {
        let mut span = obs::span("stage_schedule");
        let root = Rng::seed_from(self.seed);
        let specs = self.workload.generate(&mut root.fork(1));
        let cpu_specs = self.workload.generate_cpu(&mut root.fork(2));
        let mut engine = Engine::new(
            self.cluster,
            specs.len(),
            self.kill,
            self.requeue,
            self.policy,
            root.fork(3),
        );
        engine.run(&specs, errors, holds);
        let stats = engine.stats;
        let jobs = engine.into_records(&specs);
        let cpu_jobs = cpu_specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| JobRecord {
                id: JobId(1_000_000_000 + i as u64),
                name: s.name,
                submit: s.submit,
                start: s.submit,
                end: s.submit + s.duration,
                gpus: 0,
                nodes: Vec::new(),
                gpu_ids: Vec::new(),
                state: s.baseline_state,
            })
            .collect();
        let outcome = SimulationOutcome {
            jobs,
            cpu_jobs,
            stats,
        };
        span.add_items(outcome.jobs.len() as u64 + outcome.cpu_jobs.len() as u64);
        record_scheduler_metrics(&outcome);
        outcome
    }
}

/// Publishes a finished simulation's scheduling tallies to the global
/// metrics registry. Write-only.
fn record_scheduler_metrics(outcome: &SimulationOutcome) {
    if !obs::is_enabled() {
        return;
    }
    obs::counter("slurmsim_jobs_scheduled_total", &[("pool", "gpu")])
        .add(outcome.jobs.len() as u64);
    obs::counter("slurmsim_jobs_scheduled_total", &[("pool", "cpu")])
        .add(outcome.cpu_jobs.len() as u64);
    obs::counter("slurmsim_jobs_killed_total", &[]).add(outcome.stats.error_kills);
    obs::counter("slurmsim_errors_on_idle_total", &[]).add(outcome.stats.errors_on_idle);
    obs::counter("slurmsim_requeues_total", &[]).add(outcome.stats.requeues);
    obs::gauge("slurmsim_peak_queue_depth", &[]).set_max(outcome.stats.peak_queue as u64);
}

/// A started job's live state.
#[derive(Debug, Clone)]
struct RunJob {
    spec_idx: usize,
    start: Timestamp,
    gpus: Vec<GpuId>,
    done: bool,
    /// Sticky NVLink fate: whether this job actively uses the faulted
    /// link. Rolled once on first exposure — a job that CRC retries saved
    /// stays safe through every repeat of the same flapping link error
    /// (§IV(v): 46% of affected jobs ran to completion).
    nvlink_vulnerable: Option<bool>,
    /// Sticky MMU fate: whether this job's application masks MMU faults
    /// (§V-B: frameworks can catch the exception and skip the iteration).
    /// Masking is a property of the job's code, so it is rolled once.
    mmu_vulnerable: Option<bool>,
}

/// Per-job requeue bookkeeping.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    attempts: u32,
    /// Work still to do at the next attempt.
    remaining: simtime::Duration,
    /// Start of the first attempt (the record keeps it).
    first_start: Timestamp,
}

/// Internal mutable engine.
struct Engine<'c> {
    cluster: &'c Cluster,
    kill: KillModel,
    requeue: RequeuePolicy,
    policy: SchedPolicy,
    rng: Rng,
    node_up: Vec<bool>,
    free: Vec<u8>,
    /// `owner[node][gpu]` = index into `running`.
    owner: Vec<Vec<Option<usize>>>,
    running: Vec<RunJob>,
    queue: VecDeque<usize>,
    finish: BinaryHeap<Reverse<(Timestamp, usize)>>,
    /// Killed jobs waiting out their restart delay: (resume time, spec).
    resume: BinaryHeap<Reverse<(Timestamp, usize)>>,
    retry: std::collections::HashMap<usize, RetryState>,
    records: Vec<Option<JobRecord>>,
    stats: SchedulerStats,
}

impl<'c> Engine<'c> {
    fn new(
        cluster: &'c Cluster,
        job_count: usize,
        kill: KillModel,
        requeue: RequeuePolicy,
        policy: SchedPolicy,
        rng: Rng,
    ) -> Self {
        Engine {
            cluster,
            kill,
            requeue,
            policy,
            rng,
            node_up: vec![true; cluster.node_count()],
            free: cluster.nodes().iter().map(|n| n.gpu_count()).collect(),
            owner: cluster
                .nodes()
                .iter()
                .map(|n| vec![None; n.gpu_count() as usize])
                .collect(),
            running: Vec::new(),
            queue: VecDeque::new(),
            finish: BinaryHeap::new(),
            resume: BinaryHeap::new(),
            retry: std::collections::HashMap::new(),
            records: vec![None; job_count],
            stats: SchedulerStats::default(),
        }
    }

    fn run(&mut self, specs: &[JobSpec], errors: &[GpuErrorEvent], holds: &[Outage]) {
        // Hold edges: (time, node index, is_down), sorted.
        let mut edges: Vec<(Timestamp, usize, bool)> = Vec::with_capacity(holds.len() * 2);
        for o in holds {
            if (o.node.index() as usize) < self.node_up.len() {
                edges.push((o.start, o.node.index() as usize, true));
                edges.push((o.end(), o.node.index() as usize, false));
            }
        }
        edges.sort_by_key(|&(t, n, d)| (t, n, d));

        let (mut si, mut ei, mut oi) = (0usize, 0usize, 0usize);
        loop {
            // Next pending time from each stream; tie-break priority:
            // finishes (free resources) < resumes < hold edges < errors
            // < submits.
            let tf = self.finish.peek().map(|Reverse((t, _))| *t);
            let tr = self.resume.peek().map(|Reverse((t, _))| *t);
            let to = edges.get(oi).map(|e| e.0);
            let te = errors.get(ei).map(|e| e.time);
            let ts = specs.get(si).map(|s| s.submit);
            let next = [(tf, 0u8), (tr, 1), (to, 2), (te, 3), (ts, 4)]
                .into_iter()
                .filter_map(|(t, tag)| t.map(|t| (t, tag)))
                .min();
            let Some((_, tag)) = next else { break };
            match tag {
                0 => {
                    let Reverse((t, idx)) = self.finish.pop().expect("peeked non-empty");
                    self.on_finish(t, idx, specs);
                    self.drain_queue(t, specs);
                }
                1 => {
                    let Reverse((t, idx)) = self.resume.pop().expect("peeked non-empty");
                    if !self.try_start(idx, t, specs) {
                        self.queue.push_back(idx);
                        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
                    }
                }
                2 => {
                    let (t, node, down) = edges[oi];
                    oi += 1;
                    self.on_hold_edge(node, down);
                    if !down {
                        self.drain_queue(t, specs);
                    }
                }
                3 => {
                    let ev = errors[ei];
                    ei += 1;
                    self.on_error(&ev, specs);
                }
                _ => {
                    let idx = si;
                    si += 1;
                    let t = specs[idx].submit;
                    if !self.try_start(idx, t, specs) {
                        self.queue.push_back(idx);
                        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
                    }
                }
            }
        }
    }

    /// Attempts to allocate and start job `idx` at time `t`.
    fn try_start(&mut self, idx: usize, t: Timestamp, specs: &[JobSpec]) -> bool {
        let total_gpus = self.cluster.gpu_count() as u32;
        let want = specs[idx].gpus.min(total_gpus).max(1);
        let alloc = self.find_allocation(want);
        let Some(gpus) = alloc else { return false };
        let run_idx = self.running.len();
        for gpu in &gpus {
            let n = gpu.node.index() as usize;
            self.owner[n][gpu.index as usize] = Some(run_idx);
            self.free[n] -= 1;
        }
        let duration = self
            .retry
            .get(&idx)
            .map(|r| r.remaining)
            .unwrap_or(specs[idx].duration);
        let end = t + duration;
        self.running.push(RunJob {
            spec_idx: idx,
            start: t,
            gpus,
            done: false,
            nvlink_vulnerable: None,
            mmu_vulnerable: None,
        });
        self.finish.push(Reverse((end, run_idx)));
        true
    }

    /// Finds GPUs for a `want`-wide job: single-node first-fit for jobs
    /// that fit on one node, whole-node accumulation for larger jobs.
    fn find_allocation(&self, want: u32) -> Option<Vec<GpuId>> {
        let nodes = self.cluster.nodes();
        if want <= 8 {
            for (n, node) in nodes.iter().enumerate() {
                if self.node_up[n] && node.gpu_count() as u32 >= want && self.free[n] as u32 >= want
                {
                    let mut gpus = Vec::with_capacity(want as usize);
                    for g in 0..node.gpu_count() {
                        if self.owner[n][g as usize].is_none() {
                            gpus.push(GpuId::new(node.id(), g));
                            if gpus.len() as u32 == want {
                                return Some(gpus);
                            }
                        }
                    }
                }
            }
            return None;
        }
        // Multi-node: accumulate fully idle nodes.
        let mut gpus = Vec::with_capacity(want as usize);
        for (n, node) in nodes.iter().enumerate() {
            if self.node_up[n] && self.free[n] == node.gpu_count() {
                for g in 0..node.gpu_count() {
                    gpus.push(GpuId::new(node.id(), g));
                }
                if gpus.len() as u32 >= want {
                    return Some(gpus);
                }
            }
        }
        None
    }

    /// Starts whatever the drain policy allows: strict FIFO stops at the
    /// first queued job that cannot be placed; backfill inspects the head
    /// region (bounded by [`BACKFILL_DEPTH`]) and starts anything that fits.
    fn drain_queue(&mut self, t: Timestamp, specs: &[JobSpec]) {
        if self.policy == SchedPolicy::Fifo {
            while let Some(&idx) = self.queue.front() {
                if !self.try_start(idx, t, specs) {
                    break;
                }
                self.queue.pop_front();
            }
            return;
        }
        loop {
            let mut started_any = false;
            let depth = self.queue.len().min(BACKFILL_DEPTH);
            let mut i = 0;
            while i < depth.min(self.queue.len()) {
                let idx = self.queue[i];
                if self.try_start(idx, t, specs) {
                    self.queue.remove(i);
                    started_any = true;
                } else {
                    i += 1;
                }
            }
            if !started_any {
                break;
            }
        }
    }

    /// Natural completion: finalize with the baseline state.
    fn on_finish(&mut self, t: Timestamp, run_idx: usize, specs: &[JobSpec]) {
        if self.running[run_idx].done {
            return;
        }
        let state = specs[self.running[run_idx].spec_idx].baseline_state;
        self.finalize(run_idx, t, state, specs);
    }

    /// A hold only toggles schedulability: per §V-C the drain lets
    /// resident jobs run to completion, so nothing is killed here.
    fn on_hold_edge(&mut self, node: usize, down: bool) {
        self.node_up[node] = !down;
    }

    fn on_error(&mut self, ev: &GpuErrorEvent, specs: &[JobSpec]) {
        let n = ev.gpu.node.index() as usize;
        if n >= self.owner.len() || ev.gpu.index as usize >= self.owner[n].len() {
            return;
        }
        // Blast radius: node-scoped kinds (GSP, bus drop) wedge the whole
        // node's driver, so every resident job rolls the dice.
        let victims: Vec<usize> = match self.kill.scope(ev.kind) {
            KillScope::Gpu => self.owner[n][ev.gpu.index as usize].into_iter().collect(),
            KillScope::Node => {
                let mut v: Vec<usize> = self.owner[n].iter().flatten().copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        };
        if victims.is_empty() || victims.iter().all(|&run_idx| self.running[run_idx].done) {
            self.stats.errors_on_idle += 1;
            return;
        }
        let mut any = false;
        for run_idx in victims {
            if self.running[run_idx].done {
                continue;
            }
            // NVLink and MMU survivability are properties of the *job*
            // (link usage; application-level exception handling), so their
            // fate is rolled once per job and reused on repeat exposures.
            let dies = match ev.kind {
                xid::ErrorKind::NvlinkError => match self.running[run_idx].nvlink_vulnerable {
                    Some(v) => v,
                    None => {
                        let v = self.kill.kills(ev.kind, &mut self.rng);
                        self.running[run_idx].nvlink_vulnerable = Some(v);
                        v
                    }
                },
                xid::ErrorKind::MmuError => match self.running[run_idx].mmu_vulnerable {
                    Some(v) => v,
                    None => {
                        let v = self.kill.kills(ev.kind, &mut self.rng);
                        self.running[run_idx].mmu_vulnerable = Some(v);
                        v
                    }
                },
                _ => self.kill.kills(ev.kind, &mut self.rng),
            };
            if dies {
                self.stats.error_kills += 1;
                self.kill_with_requeue(run_idx, ev.time, specs);
                any = true;
            }
        }
        if any {
            self.drain_queue(ev.time, specs);
        }
    }

    /// Kills a running job, either finalizing it as `NODE_FAIL` or — under
    /// an active [`RequeuePolicy`] with retries left — releasing its GPUs
    /// and scheduling a restart from the last checkpoint.
    fn kill_with_requeue(&mut self, run_idx: usize, t: Timestamp, specs: &[JobSpec]) {
        let spec_idx = self.running[run_idx].spec_idx;
        let start = self.running[run_idx].start;
        let gpus = self.running[run_idx].gpus.len() as f64;
        let attempts = self.retry.get(&spec_idx).map_or(0, |r| r.attempts);
        let done_this_attempt = t - start;
        let remaining_before = self
            .retry
            .get(&spec_idx)
            .map(|r| r.remaining)
            .unwrap_or(specs[spec_idx].duration);

        if !self.requeue.enabled() || attempts >= self.requeue.max_retries {
            // Lost work: everything since the last checkpoint (whole
            // attempt without checkpointing).
            let lost = match self.requeue.checkpoint_interval {
                Some(c) if self.requeue.enabled() => {
                    simtime::Duration::from_secs(done_this_attempt.as_secs() % c.as_secs().max(1))
                }
                _ => done_this_attempt,
            };
            self.stats.lost_gpu_hours += gpus * lost.as_hours_f64();
            self.finalize(run_idx, t, JobState::NodeFail, specs);
            return;
        }

        // Progress preserved: checkpointed work survives, the rest is lost.
        let kept = match self.requeue.checkpoint_interval {
            Some(c) => simtime::Duration::from_secs(
                done_this_attempt.as_secs() / c.as_secs().max(1) * c.as_secs().max(1),
            ),
            None => simtime::Duration::ZERO,
        };
        let lost = done_this_attempt - kept;
        self.stats.lost_gpu_hours += gpus * lost.as_hours_f64();
        self.stats.requeues += 1;
        let first_start = self.retry.get(&spec_idx).map_or(start, |r| r.first_start);
        self.retry.insert(
            spec_idx,
            RetryState {
                attempts: attempts + 1,
                remaining: remaining_before - kept,
                first_start,
            },
        );
        // Release the GPUs without writing a record.
        self.running[run_idx].done = true;
        let gpus_vec = std::mem::take(&mut self.running[run_idx].gpus);
        for gpu in gpus_vec {
            let n = gpu.node.index() as usize;
            self.owner[n][gpu.index as usize] = None;
            self.free[n] += 1;
        }
        self.resume
            .push(Reverse((t + self.requeue.restart_delay, spec_idx)));
    }

    /// Writes the job's record and releases its GPUs.
    fn finalize(&mut self, run_idx: usize, end: Timestamp, state: JobState, specs: &[JobSpec]) {
        let run = &mut self.running[run_idx];
        run.done = true;
        let spec = &specs[run.spec_idx];
        let mut nodes: Vec<NodeId> = run.gpus.iter().map(|g| g.node).collect();
        nodes.dedup();
        let record_start = self
            .retry
            .get(&run.spec_idx)
            .map(|r| r.first_start)
            .unwrap_or(run.start);
        self.records[run.spec_idx] = Some(JobRecord {
            id: JobId(run.spec_idx as u64),
            name: spec.name.clone(),
            submit: spec.submit,
            start: record_start,
            // A job killed at its start instant still occupies one second
            // of accounting so elapsed times stay positive.
            end: end.max(run.start + simtime::Duration::from_secs(1)),
            gpus: run.gpus.len() as u32,
            nodes,
            gpu_ids: run.gpus.clone(),
            state,
        });
        let gpus = std::mem::take(&mut self.running[run_idx].gpus);
        for gpu in gpus {
            let n = gpu.node.index() as usize;
            self.owner[n][gpu.index as usize] = None;
            self.free[n] += 1;
        }
    }

    /// Converts accumulated records, synthesising CANCELLED records for
    /// jobs that never started (queued past the end of the trace).
    fn into_records(self, specs: &[JobSpec]) -> Vec<JobRecord> {
        self.records
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| JobRecord {
                    id: JobId(i as u64),
                    name: specs[i].name.clone(),
                    submit: specs[i].submit,
                    start: specs[i].submit,
                    end: specs[i].submit,
                    gpus: specs[i].gpus,
                    nodes: Vec::new(),
                    gpu_ids: Vec::new(),
                    state: JobState::Cancelled,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustersim::{ClusterSpec, IncidentId};
    use simtime::Duration;
    use xid::ErrorKind;

    fn tiny_cluster() -> Cluster {
        Cluster::new(ClusterSpec::tiny())
    }

    fn small_workload(fraction: f64) -> WorkloadConfig {
        WorkloadConfig::delta_scaled(fraction)
    }

    #[test]
    fn all_jobs_get_records_in_submission_order() {
        let cluster = tiny_cluster();
        let outcome = Simulation::new(&cluster, small_workload(0.0005), 1).run(&[], &[]);
        for (i, job) in outcome.jobs.iter().enumerate() {
            assert_eq!(job.id, JobId(i as u64));
            assert!(job.end >= job.start);
            assert!(job.start >= job.submit);
        }
    }

    #[test]
    fn fifo_blocks_behind_the_head_where_backfill_does_not() {
        let cluster = tiny_cluster();
        assert_eq!(
            cluster.nodes()[3].gpu_count(),
            8,
            "tiny spec: node 3 is the eight-way"
        );
        let t0 = Timestamp::from_unix(1_000_000);
        let spec = |submit_off: u64, gpus: u32, dur_secs: u64| JobSpec {
            submit: t0 + Duration::from_secs(submit_off),
            name: format!("j{submit_off}"),
            gpus,
            duration: Duration::from_secs(dur_secs),
            baseline_state: JobState::Completed,
        };
        // Job 0 takes every four-way GPU; the eight-way node is held down,
        // so job 1 (8 GPUs, single-node only) and job 2 (1 GPU) both queue.
        // When job 0 finishes at t=500 the drain runs: backfill starts job
        // 2 past the stuck head; strict FIFO leaves it queued until the
        // hold lifts at t=2000.
        let specs = vec![spec(0, 12, 500), spec(1, 8, 100), spec(2, 1, 100)];
        let hold = Outage {
            node: cluster.nodes()[3].id(),
            start: t0,
            duration: Duration::from_secs(2000),
            action: xid::RecoveryAction::NodeReboot,
        };
        for (policy, expect_start) in [(SchedPolicy::Backfill, 500), (SchedPolicy::Fifo, 2000)] {
            let mut engine = Engine::new(
                &cluster,
                specs.len(),
                KillModel::delta(),
                RequeuePolicy::none(),
                policy,
                Rng::seed_from(1),
            );
            engine.run(&specs, &[], &[hold]);
            let records = engine.into_records(&specs);
            assert_eq!(
                records[2].start,
                t0 + Duration::from_secs(expect_start),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn sched_policy_parses_and_round_trips() {
        assert_eq!(SchedPolicy::parse("fifo").unwrap(), SchedPolicy::Fifo);
        assert_eq!(
            SchedPolicy::parse("backfill").unwrap(),
            SchedPolicy::Backfill
        );
        assert!(SchedPolicy::parse("lifo").is_err());
        for p in [SchedPolicy::Fifo, SchedPolicy::Backfill] {
            assert_eq!(SchedPolicy::parse(p.name()).unwrap(), p);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cluster = tiny_cluster();
        let a = Simulation::new(&cluster, small_workload(0.0005), 9).run(&[], &[]);
        let b = Simulation::new(&cluster, small_workload(0.0005), 9).run(&[], &[]);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn success_rate_without_errors_matches_baseline() {
        let cluster = tiny_cluster();
        let outcome = Simulation::new(&cluster, small_workload(0.002), 2).run(&[], &[]);
        let rate = outcome.gpu_success_rate();
        // Some jobs may be cancelled by never starting, so allow slack
        // below the 74.68% target but not above.
        assert!(rate > 0.70 && rate < 0.78, "success rate {rate}");
        let cpu = outcome.cpu_success_rate();
        assert!((cpu - 0.749).abs() < 0.02, "cpu success {cpu}");
    }

    #[test]
    fn gsp_error_on_busy_gpu_kills_job() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.002);
        let window = workload.window;
        // Blanket the window with GSP errors on every GPU every ~2 hours.
        let mut errors = Vec::new();
        let mut t = window.start;
        let mut incident = 0u64;
        while t < window.end {
            for gpu in cluster.gpus() {
                errors.push(GpuErrorEvent::new(
                    t,
                    gpu,
                    ErrorKind::GspError,
                    IncidentId(incident),
                ));
                incident += 1;
            }
            t = t + Duration::from_hours(2);
        }
        let outcome = Simulation::new(&cluster, workload, 3).run(&errors, &[]);
        assert!(outcome.stats.error_kills > 0, "{:?}", outcome.stats);
        let node_fails = outcome
            .jobs
            .iter()
            .filter(|j| j.state == JobState::NodeFail)
            .count();
        assert!(node_fails as u64 >= outcome.stats.error_kills);
    }

    #[test]
    fn rre_errors_never_kill() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.001);
        let window = workload.window;
        let mut errors = Vec::new();
        let mut t = window.start;
        while t < window.end {
            for gpu in cluster.gpus() {
                errors.push(GpuErrorEvent::new(
                    t,
                    gpu,
                    ErrorKind::RowRemapEvent,
                    IncidentId(0),
                ));
            }
            t = t + Duration::from_hours(1);
        }
        let outcome = Simulation::new(&cluster, workload, 4).run(&errors, &[]);
        assert_eq!(outcome.stats.error_kills, 0);
    }

    #[test]
    fn hold_blocks_scheduling_without_killing() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.002);
        let window = workload.window;
        // Hold node 0 out for the entire window.
        let hold = Outage {
            node: NodeId::new(0),
            start: window.start,
            duration: window.length(),
            action: xid::RecoveryAction::NodeReboot,
        };
        let outcome = Simulation::new(&cluster, workload, 5).run(&[], &[hold]);
        // No job may have *started* on node 0 while it was held (jobs that
        // queue past the hold may legitimately start there afterwards).
        for job in &outcome.jobs {
            if job.state != JobState::Cancelled && job.start < hold.end() {
                assert!(!job.uses_node(NodeId::new(0)), "{job} ran on a held node");
            }
        }
        // Holds themselves kill nothing.
        assert_eq!(
            outcome
                .jobs
                .iter()
                .filter(|j| j.state == JobState::NodeFail)
                .count(),
            0
        );
    }

    #[test]
    fn multi_node_jobs_get_whole_nodes() {
        let cluster = tiny_cluster(); // 3x4 + 1x8 = 20 GPUs
        let workload = small_workload(0.0005);
        let outcome = Simulation::new(&cluster, workload, 6).run(&[], &[]);
        for job in &outcome.jobs {
            if job.gpus > 8 && job.state != JobState::Cancelled {
                assert!(job.nodes.len() >= 2, "{job}");
            }
        }
    }

    #[test]
    fn requeue_restarts_killed_jobs() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.001);
        let window = workload.window;
        // One GSP error early in the window: without requeue the victim
        // dies; with requeue it restarts and completes.
        let errors = vec![GpuErrorEvent::new(
            window.start + Duration::from_hours(24),
            GpuId::new(NodeId::new(0), 0),
            ErrorKind::GspError,
            IncidentId(0),
        )];
        let plain = Simulation::new(&cluster, workload.clone(), 11).run(&errors, &[]);
        let retried = Simulation::new(&cluster, workload, 11)
            .with_requeue(RequeuePolicy::hourly_checkpoints(3))
            .run(&errors, &[]);
        // Same workload stream: requeue can only reduce NODE_FAIL count.
        let plain_fails = plain
            .jobs
            .iter()
            .filter(|j| j.state == JobState::NodeFail)
            .count();
        let retried_fails = retried
            .jobs
            .iter()
            .filter(|j| j.state == JobState::NodeFail)
            .count();
        assert!(
            retried_fails <= plain_fails,
            "{retried_fails} > {plain_fails}"
        );
        if plain.stats.error_kills > 0 {
            assert_eq!(retried.stats.requeues, retried.stats.error_kills);
        }
        // Both see the same number of records.
        assert_eq!(plain.jobs.len(), retried.jobs.len());
    }

    #[test]
    fn requeue_checkpointing_bounds_lost_work() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.002);
        let window = workload.window;
        // Kill everything hourly for a stretch: checkpointed restarts lose
        // at most one checkpoint interval per kill.
        let mut errors = Vec::new();
        let mut t = window.start + Duration::from_hours(10);
        for i in 0..20u64 {
            errors.push(GpuErrorEvent::new(
                t,
                GpuId::new(NodeId::new(0), 0),
                ErrorKind::GspError,
                IncidentId(i),
            ));
            t = t + Duration::from_hours(3);
        }
        let ckpt = Simulation::new(&cluster, workload.clone(), 12)
            .with_requeue(RequeuePolicy::hourly_checkpoints(10))
            .run(&errors, &[]);
        let restart = Simulation::new(&cluster, workload, 12)
            .with_requeue(RequeuePolicy {
                checkpoint_interval: None,
                ..RequeuePolicy::hourly_checkpoints(10)
            })
            .run(&errors, &[]);
        if ckpt.stats.requeues > 0 && restart.stats.requeues > 0 {
            // Full restarts lose at least as much work per requeue.
            let ckpt_per = ckpt.stats.lost_gpu_hours / ckpt.stats.requeues as f64;
            let restart_per = restart.stats.lost_gpu_hours / restart.stats.requeues.max(1) as f64;
            assert!(ckpt_per <= restart_per + 1e-9, "{ckpt_per} > {restart_per}");
        }
    }

    #[test]
    fn allocation_and_wait_statistics() {
        let cluster = tiny_cluster();
        let workload = small_workload(0.002);
        let window = workload.window;
        let outcome = Simulation::new(&cluster, workload, 30).run(&[], &[]);
        let alloc = outcome.gpu_allocation(cluster.gpu_count(), window);
        // A busy tiny cluster: meaningfully loaded, never above 1.
        assert!((0.05..=1.0).contains(&alloc), "allocation {alloc}");
        let (mean, p50, p99) = outcome.wait_stats_hours().unwrap();
        assert!(mean >= 0.0 && p50 <= p99);
    }

    #[test]
    fn requeue_policy_accessors() {
        assert!(!RequeuePolicy::none().enabled());
        assert!(RequeuePolicy::hourly_checkpoints(2).enabled());
        assert_eq!(RequeuePolicy::default(), RequeuePolicy::none());
    }

    #[test]
    fn errors_on_idle_gpus_are_counted() {
        let cluster = tiny_cluster();
        // No workload overlap: single error long before any job.
        let workload = small_workload(0.0005);
        let errors = [GpuErrorEvent::new(
            Timestamp::from_unix(1),
            GpuId::new(NodeId::new(0), 0),
            ErrorKind::GspError,
            IncidentId(0),
        )];
        let outcome = Simulation::new(&cluster, workload, 7).run(&errors, &[]);
        assert_eq!(outcome.stats.errors_on_idle, 1);
    }

    /// One handcrafted 2-GPU job (node 0 first-fit ⇒ GPUs 0 and 1),
    /// driven through the private [`Engine`] against a given error
    /// timeline. Deterministic kinds only (kill probability 0 or 1).
    fn run_two_gpu_job(
        duration_secs: u64,
        errors: &[GpuErrorEvent],
    ) -> (JobRecord, SchedulerStats) {
        let cluster = tiny_cluster();
        let specs = [JobSpec {
            submit: Timestamp::from_unix(1_000),
            name: "edge".to_owned(),
            gpus: 2,
            duration: Duration::from_secs(duration_secs),
            baseline_state: JobState::Completed,
        }];
        let mut engine = Engine::new(
            &cluster,
            specs.len(),
            KillModel::delta(),
            RequeuePolicy::none(),
            SchedPolicy::Backfill,
            Rng::seed_from(7),
        );
        engine.run(&specs, errors, &[]);
        let stats = engine.stats;
        let mut records = engine.into_records(&specs);
        (records.remove(0), stats)
    }

    fn contained_error_at(secs: u64, gpu_index: u8) -> GpuErrorEvent {
        GpuErrorEvent::new(
            Timestamp::from_unix(secs),
            GpuId::new(NodeId::new(0), gpu_index),
            ErrorKind::ContainedMemoryError,
            IncidentId(0),
        )
    }

    #[test]
    fn gpu_scope_error_on_non_allocated_gpu_spares_multi_gpu_job() {
        // The job holds GPUs 0 and 1 of node 0; the contained-memory error
        // (GPU blast radius, kill probability 1.0) lands on GPU 3 of the
        // same node, which the job does not hold. The job must survive and
        // the error must count as landing on an idle GPU.
        let (rec, stats) = run_two_gpu_job(10_000, &[contained_error_at(2_000, 3)]);
        assert_eq!(rec.state, JobState::Completed, "{rec:?}");
        assert_eq!(rec.end, Timestamp::from_unix(11_000));
        assert_eq!(rec.gpus, 2);
        assert_eq!(stats.error_kills, 0);
        assert_eq!(stats.errors_on_idle, 1);

        // Control: the same error on an allocated GPU kills the job.
        let (rec, stats) = run_two_gpu_job(10_000, &[contained_error_at(2_000, 1)]);
        assert_eq!(rec.state, JobState::NodeFail, "{rec:?}");
        assert_eq!(rec.end, Timestamp::from_unix(2_000));
        assert_eq!(stats.error_kills, 1);
        assert_eq!(stats.errors_on_idle, 0);
    }

    #[test]
    fn node_scope_error_kills_multi_gpu_job_from_any_gpu_index() {
        // GSP errors wedge the whole node's driver: even fired on GPU 3 —
        // which the job does not hold — every resident job is exposed.
        let errors = [GpuErrorEvent::new(
            Timestamp::from_unix(2_000),
            GpuId::new(NodeId::new(0), 3),
            ErrorKind::GspError,
            IncidentId(0),
        )];
        let (rec, stats) = run_two_gpu_job(10_000, &errors);
        assert_eq!(rec.state, JobState::NodeFail, "{rec:?}");
        assert_eq!(rec.end, Timestamp::from_unix(2_000));
        assert_eq!(stats.error_kills, 1);
    }

    #[test]
    fn job_finishing_in_the_same_tick_as_the_error_completes() {
        // Finish and error collide at t = 2000. The event loop drains
        // finishes before errors at equal timestamps (a job that ends as
        // the error arrives was not running when it landed), so the job
        // keeps its baseline state and the error counts as idle.
        let (rec, stats) = run_two_gpu_job(1_000, &[contained_error_at(2_000, 0)]);
        assert_eq!(rec.state, JobState::Completed, "{rec:?}");
        assert_eq!(rec.end, Timestamp::from_unix(2_000));
        assert_eq!(stats.error_kills, 0);
        assert_eq!(stats.errors_on_idle, 1);

        // One second earlier the job is still running and dies.
        let (rec, stats) = run_two_gpu_job(1_000, &[contained_error_at(1_999, 0)]);
        assert_eq!(rec.state, JobState::NodeFail, "{rec:?}");
        assert_eq!(rec.end, Timestamp::from_unix(1_999));
        assert_eq!(stats.error_kills, 1);
    }
}
