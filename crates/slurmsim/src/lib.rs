//! A Slurm-like scheduler simulator: workload generation, FIFO + backfill
//! GPU scheduling, error-driven job termination and sacct-style accounting.
//!
//! The DSN'25 study's job-impact analysis (§V) joins the Slurm accounting
//! database — 1.44M GPU jobs and 1.69M CPU jobs over the operational
//! period — against the GPU error log. This crate is the accounting
//! database's generative counterpart:
//!
//! * [`workload`] — generates job specs calibrated to §V-A / Table III:
//!   the GPU-count bucket mix (69.86% single-GPU, ...), log-normal
//!   durations fitted to each bucket's reported mean/median with the 48 h
//!   walltime cap, ML-vs-non-ML job naming, and the ~74.7% baseline
//!   success rate.
//! * [`scheduler`] — an event-driven FIFO + backfill scheduler allocating
//!   GPU slots on a [`clustersim::Cluster`], honouring node outages, and
//!   killing jobs hit by GPU errors according to a [`KillModel`].
//! * [`KillModel`] ([`kill`]) — the per-error-kind conditional termination
//!   probabilities of Table II (GSP 100%, PMU ≈ 97.6%, MMU ≈ 90.5%,
//!   NVLink ≈ 53.8% — errors on idle links are harmless).
//! * [`JobRecord`] ([`job`]) — the sacct-style output record the analysis
//!   pipeline consumes: submit/start/end, node list, GPU count, exit state
//!   and job name.
//! * [`feed`] — incremental replay of finished records in deterministic
//!   `(end, id)` order, the way a live `sacct` poller discovers them;
//!   feeds the streaming analysis pipeline.
//!
//! # Example
//!
//! ```
//! use clustersim::{Cluster, ClusterSpec};
//! use slurmsim::{Simulation, WorkloadConfig};
//!
//! let cluster = Cluster::new(ClusterSpec::tiny());
//! let workload = WorkloadConfig::delta_scaled(0.001);
//! let sim = Simulation::new(&cluster, workload, 42);
//! let outcome = sim.run(&[], &[]);
//! assert!(!outcome.jobs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feed;
pub mod job;
pub mod kill;
pub mod scheduler;
pub mod workload;

pub use job::{JobId, JobRecord, JobState};
pub use kill::{KillModel, KillScope};
pub use scheduler::{RequeuePolicy, SchedPolicy, Simulation, SimulationOutcome};
pub use workload::{GpuBucket, WorkloadConfig};
