//! The error-to-job termination model (Table II, generative direction).
//!
//! When a GPU error fires on a GPU that is hosting a job, the job dies with
//! a kind-dependent probability. The paper *measures* these conditional
//! probabilities (Table II); the simulator uses them *generatively*, so the
//! analysis pipeline should recover approximately the same numbers — that
//! round trip is one of the reproduction's validation checks.

use simrng::Rng;
use xid::ErrorKind;

/// How far an error's blast radius reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillScope {
    /// Only the job holding the erroring GPU is at risk.
    Gpu,
    /// Every job on the node is at risk (the GPU driver wedges the whole
    /// node: GSP hangs and bus drops require a node reboot).
    Node,
}

/// Per-error-kind conditional job-termination probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillModel {
    /// P(job dies | MMU error on its GPU). Below 1.0 because some MMU
    /// faults are application-level illegal accesses masked by the
    /// framework (§V-B: skipped training iterations).
    pub mmu: f64,
    /// P(job dies | GSP error on its GPU). The paper observed 100%.
    pub gsp: f64,
    /// P(job dies | PMU SPI error on its GPU).
    pub pmu: f64,
    /// P(job dies | NVLink error on its GPU). Well below 1.0: CRC
    /// detection plus retransmission masks errors on links the job is not
    /// actively using (§IV(v): 46% of affected jobs completed).
    pub nvlink: f64,
    /// P(job dies | contained ECC error on its GPU). Containment works by
    /// terminating the affected process, so this is 1.0 by design.
    pub contained: f64,
    /// P(job dies | uncontained ECC error on its GPU).
    pub uncontained: f64,
    /// P(job dies | GPU fell off the bus).
    pub fallen: f64,
}

impl KillModel {
    /// The Table II calibration.
    pub fn delta() -> Self {
        KillModel {
            mmu: 0.9048,
            gsp: 1.0,
            pmu: 0.9756,
            nvlink: 0.5375,
            contained: 1.0,
            uncontained: 1.0,
            fallen: 1.0,
        }
    }

    /// The termination probability for `kind`; kinds with no direct job
    /// impact (row-remap bookkeeping, logged DBEs — their impact arrives
    /// via the containment outcome) return 0.
    pub fn probability(&self, kind: ErrorKind) -> f64 {
        match kind {
            ErrorKind::MmuError => self.mmu,
            ErrorKind::GspError => self.gsp,
            ErrorKind::PmuSpiError => self.pmu,
            ErrorKind::NvlinkError => self.nvlink,
            ErrorKind::ContainedMemoryError => self.contained,
            ErrorKind::UncontainedMemoryError => self.uncontained,
            ErrorKind::FallenOffBus => self.fallen,
            ErrorKind::DoubleBitError
            | ErrorKind::RowRemapEvent
            | ErrorKind::RowRemapFailure
            | ErrorKind::GpuSoftware
            | ErrorKind::ResetChannel
            | ErrorKind::Other(_) => 0.0,
        }
    }

    /// Samples whether a job hosting the error dies.
    pub fn kills(&self, kind: ErrorKind, rng: &mut Rng) -> bool {
        rng.bool_with(self.probability(kind))
    }

    /// The blast radius of `kind`: GSP errors and bus drops wedge the whole
    /// node's driver state (they require a node reboot), so every resident
    /// job is exposed; all other kinds are confined to the erroring GPU.
    pub fn scope(&self, kind: ErrorKind) -> KillScope {
        match kind {
            ErrorKind::GspError | ErrorKind::FallenOffBus => KillScope::Node,
            _ => KillScope::Gpu,
        }
    }
}

impl Default for KillModel {
    fn default() -> Self {
        KillModel::delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_ordering_holds() {
        // GSP (100%) > PMU (97.6%) > MMU (90.5%) > NVLink (53.8%).
        let m = KillModel::delta();
        assert!(m.gsp > m.pmu);
        assert!(m.pmu > m.mmu);
        assert!(m.mmu > m.nvlink);
        assert_eq!(m.gsp, 1.0);
        assert_eq!(m.contained, 1.0);
    }

    #[test]
    fn bookkeeping_kinds_never_kill() {
        let m = KillModel::delta();
        let mut rng = Rng::seed_from(1);
        for kind in [
            ErrorKind::RowRemapEvent,
            ErrorKind::RowRemapFailure,
            ErrorKind::DoubleBitError,
            ErrorKind::GpuSoftware,
        ] {
            assert_eq!(m.probability(kind), 0.0);
            assert!(!m.kills(kind, &mut rng));
        }
    }

    #[test]
    fn gsp_always_kills() {
        let m = KillModel::delta();
        let mut rng = Rng::seed_from(2);
        for _ in 0..1000 {
            assert!(m.kills(ErrorKind::GspError, &mut rng));
        }
    }

    #[test]
    fn scopes() {
        let m = KillModel::delta();
        assert_eq!(m.scope(ErrorKind::GspError), KillScope::Node);
        assert_eq!(m.scope(ErrorKind::FallenOffBus), KillScope::Node);
        assert_eq!(m.scope(ErrorKind::MmuError), KillScope::Gpu);
        assert_eq!(m.scope(ErrorKind::NvlinkError), KillScope::Gpu);
    }

    #[test]
    fn nvlink_kill_rate_converges_to_calibration() {
        let m = KillModel::delta();
        let mut rng = Rng::seed_from(3);
        let n = 100_000;
        let kills = (0..n)
            .filter(|_| m.kills(ErrorKind::NvlinkError, &mut rng))
            .count();
        let frac = kills as f64 / n as f64;
        assert!((frac - 0.5375).abs() < 0.01, "{frac}");
    }
}
