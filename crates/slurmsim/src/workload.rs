//! Workload generation calibrated to §V-A and Table III.
//!
//! Table III fully determines the GPU workload's shape: the bucket mix over
//! GPU counts, per-bucket elapsed-time statistics (mean ≫ median — a
//! log-normal signature — with the P99 pinned at the 48 h walltime), and
//! the split of GPU-hours between ML and non-ML jobs. [`WorkloadConfig`]
//! encodes those published numbers; [`WorkloadConfig::generate`] turns them
//! into a concrete stream of [`JobSpec`]s for the scheduler.

use crate::job::JobState;
use simrng::dist::{CappedLogNormal, Categorical, Sample, TruncatedLogNormal};
use simrng::Rng;
use simtime::{Duration, Period, StudyPeriods, Timestamp};
use std::fmt;

/// Delta's GPU walltime limit in minutes (the P99 wall in Table III).
pub const WALLTIME_CAP_MINS: f64 = 2880.0;

/// One GPU-count bucket of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuBucket {
    /// Smallest GPU count in the bucket.
    pub min_gpus: u32,
    /// Largest GPU count in the bucket.
    pub max_gpus: u32,
    /// Fraction of jobs in this bucket (Table III "Count (%)").
    pub share: f64,
    /// Mean elapsed minutes.
    pub mean_mins: f64,
    /// Median (P50) elapsed minutes.
    pub median_mins: f64,
    /// ML GPU-hours (thousands) attributed to the bucket.
    pub ml_gpu_hours_k: f64,
    /// Non-ML GPU-hours (thousands).
    pub non_ml_gpu_hours_k: f64,
}

impl GpuBucket {
    /// The probability a job in this bucket is ML, from the GPU-hour split.
    pub fn ml_probability(&self) -> f64 {
        let total = self.ml_gpu_hours_k + self.non_ml_gpu_hours_k;
        if total == 0.0 {
            0.0
        } else {
            self.ml_gpu_hours_k / total
        }
    }

    /// A label like `"2-4"` matching the paper's row headers.
    pub fn label(&self) -> String {
        if self.min_gpus == self.max_gpus {
            self.min_gpus.to_string()
        } else if self.max_gpus == u32::MAX {
            format!("{}+", self.min_gpus)
        } else {
            format!("{}-{}", self.min_gpus, self.max_gpus)
        }
    }
}

impl fmt::Display for GpuBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket {} ({:.3}%)", self.label(), self.share)
    }
}

/// The Table III rows. Bucket boundaries follow the paper's headers, read
/// as disjoint ranges: 1, 2–4, 5–8, 9–32, 33–64, 65–128, 129–256, 257+.
pub const TABLE_III_BUCKETS: [GpuBucket; 8] = [
    GpuBucket {
        min_gpus: 1,
        max_gpus: 1,
        share: 69.86,
        mean_mins: 175.62,
        median_mins: 10.15,
        ml_gpu_hours_k: 241.6,
        non_ml_gpu_hours_k: 2724.0,
    },
    GpuBucket {
        min_gpus: 2,
        max_gpus: 4,
        share: 27.31,
        mean_mins: 145.04,
        median_mins: 4.75,
        ml_gpu_hours_k: 344.6,
        non_ml_gpu_hours_k: 3108.7,
    },
    GpuBucket {
        min_gpus: 5,
        max_gpus: 8,
        share: 1.55,
        mean_mins: 133.89,
        median_mins: 2.70,
        ml_gpu_hours_k: 57.9,
        non_ml_gpu_hours_k: 338.6,
    },
    GpuBucket {
        min_gpus: 9,
        max_gpus: 32,
        share: 1.07,
        mean_mins: 270.40,
        median_mins: 73.73,
        ml_gpu_hours_k: 107.1,
        non_ml_gpu_hours_k: 1332.7,
    },
    GpuBucket {
        min_gpus: 33,
        max_gpus: 64,
        share: 0.14,
        mean_mins: 204.52,
        median_mins: 10.25,
        ml_gpu_hours_k: 161.9,
        non_ml_gpu_hours_k: 226.4,
    },
    GpuBucket {
        min_gpus: 65,
        max_gpus: 128,
        share: 0.063,
        mean_mins: 226.28,
        median_mins: 0.32,
        ml_gpu_hours_k: 25.1,
        non_ml_gpu_hours_k: 322.3,
    },
    GpuBucket {
        min_gpus: 129,
        max_gpus: 256,
        share: 0.006,
        mean_mins: 226.53,
        median_mins: 9.19,
        ml_gpu_hours_k: 0.0,
        non_ml_gpu_hours_k: 52.4,
    },
    GpuBucket {
        min_gpus: 257,
        max_gpus: 448,
        share: 0.002,
        mean_mins: 32.12,
        median_mins: 20.40,
        ml_gpu_hours_k: 0.0,
        non_ml_gpu_hours_k: 4.5,
    },
];

/// One job to be submitted, before scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Submission time.
    pub submit: Timestamp,
    /// User-visible job name.
    pub name: String,
    /// Requested GPU count (0 for CPU jobs).
    pub gpus: u32,
    /// How long the job would run if nothing killed it.
    pub duration: Duration,
    /// The outcome the job reaches *absent* GPU errors (user-space
    /// failures, cancellations and timeouts happen regardless of GPU
    /// health).
    pub baseline_state: JobState,
}

/// Workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of GPU jobs to generate.
    pub gpu_jobs: u64,
    /// Number of CPU jobs to generate (records only; CPU jobs never touch
    /// GPU errors).
    pub cpu_jobs: u64,
    /// The submission window (the paper analyses the operational period).
    pub window: Period,
    /// Target success (COMPLETED) fraction for GPU jobs absent GPU errors.
    pub gpu_success_rate: f64,
    /// Target success fraction for CPU jobs.
    pub cpu_success_rate: f64,
}

impl WorkloadConfig {
    /// The paper's workload: 1,445,119 GPU jobs at 74.68% success and
    /// 1,686,696 CPU jobs at 74.90%, over the operational period.
    pub fn delta() -> Self {
        WorkloadConfig {
            gpu_jobs: 1_445_119,
            cpu_jobs: 1_686_696,
            window: StudyPeriods::delta().op,
            gpu_success_rate: 0.7468,
            cpu_success_rate: 0.7490,
        }
    }

    /// A scaled workload: job counts and window length multiplied by
    /// `fraction` (so the offered load per hour is preserved).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn delta_scaled(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let mut config = WorkloadConfig::delta();
        config.gpu_jobs = ((config.gpu_jobs as f64 * fraction) as u64).max(10);
        config.cpu_jobs = ((config.cpu_jobs as f64 * fraction) as u64).max(10);
        config.window = StudyPeriods::delta_scaled(fraction).op;
        config
    }

    /// Generates the GPU job stream, sorted by submission time.
    pub fn generate(&self, rng: &mut Rng) -> Vec<JobSpec> {
        let sampler = BucketSampler::new();
        let mut submits: Vec<u64> = (0..self.gpu_jobs)
            .map(|_| {
                self.window.start.unix() + rng.range_u64(self.window.length().as_secs().max(1))
            })
            .collect();
        submits.sort_unstable();
        submits
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let bucket = sampler.pick(rng);
                let gpus = if bucket.min_gpus == bucket.max_gpus {
                    bucket.min_gpus
                } else {
                    rng.range(bucket.min_gpus as u64, bucket.max_gpus as u64 + 1) as u32
                };
                let is_ml = rng.bool_with(bucket.ml_probability());
                let duration_mins = sampler.duration_mins(bucket, rng);
                let baseline_state = self.sample_baseline(self.gpu_success_rate, rng);
                JobSpec {
                    submit: Timestamp::from_unix(s),
                    name: job_name(is_ml, i as u64, rng),
                    gpus,
                    duration: Duration::from_secs((duration_mins * 60.0).round().max(1.0) as u64),
                    baseline_state,
                }
            })
            .collect()
    }

    /// Generates CPU job records directly (no GPU scheduling involved):
    /// `(submit, duration, state)` triples.
    pub fn generate_cpu(&self, rng: &mut Rng) -> Vec<JobSpec> {
        let dist = TruncatedLogNormal::new(3.2, 2.1, WALLTIME_CAP_MINS)
            .expect("static parameters are valid");
        (0..self.cpu_jobs)
            .map(|i| {
                let s =
                    self.window.start.unix() + rng.range_u64(self.window.length().as_secs().max(1));
                let mins = dist.sample(rng);
                JobSpec {
                    submit: Timestamp::from_unix(s),
                    name: job_name(false, i, rng),
                    gpus: 0,
                    duration: Duration::from_secs((mins * 60.0).round().max(1.0) as u64),
                    baseline_state: self.sample_baseline(self.cpu_success_rate, rng),
                }
            })
            .collect()
    }

    /// Samples a baseline terminal state with the configured success rate;
    /// the failing remainder splits 60/25/15 across FAILED / CANCELLED /
    /// TIMEOUT (typical Slurm accounting proportions).
    fn sample_baseline(&self, success: f64, rng: &mut Rng) -> JobState {
        if rng.bool_with(success) {
            JobState::Completed
        } else {
            let roll = rng.f64();
            if roll < 0.60 {
                JobState::Failed
            } else if roll < 0.85 {
                JobState::Cancelled
            } else {
                JobState::Timeout
            }
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::delta()
    }
}

/// Internal: bucket picker plus per-bucket duration distributions.
struct BucketSampler {
    picker: Categorical,
    durations: Vec<CappedLogNormal>,
}

impl BucketSampler {
    fn new() -> Self {
        let weights: Vec<f64> = TABLE_III_BUCKETS.iter().map(|b| b.share).collect();
        let durations = TABLE_III_BUCKETS
            .iter()
            .map(|b| {
                // Fit so the *capped* mean matches the reported mean: the
                // paper's statistics are computed over walltime-clamped
                // jobs (its P99 columns sit exactly at the 2880 min cap).
                CappedLogNormal::fit(b.mean_mins, b.median_mins, WALLTIME_CAP_MINS)
                    .expect("Table III rows all have median < mean < cap")
            })
            .collect();
        BucketSampler {
            picker: Categorical::new(&weights).expect("Table III shares are valid weights"),
            durations,
        }
    }

    fn pick(&self, rng: &mut Rng) -> &'static GpuBucket {
        &TABLE_III_BUCKETS[self.picker.sample(rng)]
    }

    fn duration_mins(&self, bucket: &GpuBucket, rng: &mut Rng) -> f64 {
        let idx = TABLE_III_BUCKETS
            .iter()
            .position(|b| b.min_gpus == bucket.min_gpus)
            .expect("bucket comes from the table");
        self.durations[idx].sample(rng)
    }
}

/// Generates a plausible job name; ML names carry the §V-A keywords.
fn job_name(ml: bool, index: u64, rng: &mut Rng) -> String {
    const ML_STEMS: [&str; 8] = [
        "train_resnet50",
        "bert_finetune",
        "llm_pretrain",
        "gpt_inference",
        "diffusion_model",
        "torch_ddp_train",
        "epoch_sweep",
        "tensorflow_model",
    ];
    const HPC_STEMS: [&str; 10] = [
        "namd_apoa1",
        "gromacs_md",
        "wrf_forecast",
        "vasp_relax",
        "amber_prod",
        "lammps_flow",
        "cfd_solver",
        "qchem_opt",
        "openfoam_run",
        "quantum_espresso",
    ];
    let stem = if ml {
        ML_STEMS[rng.range_u64(ML_STEMS.len() as u64) as usize]
    } else {
        HPC_STEMS[rng.range_u64(HPC_STEMS.len() as u64) as usize]
    };
    format!("{stem}_{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobRecord};
    use clustersim::NodeId;

    fn spec_to_record(spec: &JobSpec) -> JobRecord {
        JobRecord {
            id: JobId(0),
            name: spec.name.clone(),
            submit: spec.submit,
            start: spec.submit,
            end: spec.submit + spec.duration,
            gpus: spec.gpus,
            nodes: vec![NodeId::new(0)],
            gpu_ids: Vec::new(),
            state: spec.baseline_state,
        }
    }

    #[test]
    fn bucket_shares_sum_to_one_hundred() {
        let total: f64 = TABLE_III_BUCKETS.iter().map(|b| b.share).sum();
        assert!((total - 100.0).abs() < 0.01, "{total}");
    }

    #[test]
    fn buckets_are_disjoint_and_ordered() {
        for pair in TABLE_III_BUCKETS.windows(2) {
            assert!(pair[0].max_gpus < pair[1].min_gpus);
        }
    }

    #[test]
    fn generated_mix_matches_shares() {
        let config = WorkloadConfig::delta_scaled(0.02);
        let mut rng = Rng::seed_from(1);
        let jobs = config.generate(&mut rng);
        let single = jobs.iter().filter(|j| j.gpus == 1).count() as f64 / jobs.len() as f64;
        assert!((single - 0.6986).abs() < 0.01, "single-GPU share {single}");
        let small =
            jobs.iter().filter(|j| (2..=4).contains(&j.gpus)).count() as f64 / jobs.len() as f64;
        assert!((small - 0.2731).abs() < 0.01, "2-4 share {small}");
    }

    #[test]
    fn submissions_are_sorted_and_in_window() {
        let config = WorkloadConfig::delta_scaled(0.001);
        let mut rng = Rng::seed_from(2);
        let jobs = config.generate(&mut rng);
        for pair in jobs.windows(2) {
            assert!(pair[0].submit <= pair[1].submit);
        }
        for j in &jobs {
            assert!(config.window.contains(j.submit));
        }
    }

    #[test]
    fn durations_capped_at_walltime() {
        let config = WorkloadConfig::delta_scaled(0.002);
        let mut rng = Rng::seed_from(3);
        for j in config.generate(&mut rng) {
            assert!(j.duration.as_mins_f64() <= WALLTIME_CAP_MINS + 1e-9);
            assert!(j.duration.as_secs() >= 1);
        }
    }

    #[test]
    fn single_gpu_median_tracks_table() {
        let config = WorkloadConfig::delta_scaled(0.02);
        let mut rng = Rng::seed_from(4);
        let jobs = config.generate(&mut rng);
        let mut mins: Vec<f64> = jobs
            .iter()
            .filter(|j| j.gpus == 1)
            .map(|j| j.duration.as_mins_f64())
            .collect();
        mins.sort_by(f64::total_cmp);
        let median = mins[mins.len() / 2];
        assert!((median - 10.15).abs() < 1.5, "median {median} min");
    }

    #[test]
    fn baseline_success_rate_matches_target() {
        let config = WorkloadConfig::delta_scaled(0.01);
        let mut rng = Rng::seed_from(5);
        let jobs = config.generate(&mut rng);
        let ok = jobs
            .iter()
            .filter(|j| j.baseline_state == JobState::Completed)
            .count() as f64
            / jobs.len() as f64;
        assert!((ok - 0.7468).abs() < 0.01, "success {ok}");
    }

    #[test]
    fn ml_fraction_is_bucket_dependent() {
        let config = WorkloadConfig::delta_scaled(0.02);
        let mut rng = Rng::seed_from(6);
        let jobs = config.generate(&mut rng);
        let ml_rate = |lo: u32, hi: u32| {
            let bucket: Vec<_> = jobs
                .iter()
                .filter(|j| j.gpus >= lo && j.gpus <= hi)
                .collect();
            bucket.iter().filter(|j| spec_to_record(j).is_ml()).count() as f64
                / bucket.len().max(1) as f64
        };
        // 33-64 GPU jobs are heavily ML (41.7% of GPU-hours); 1-GPU much less.
        assert!(ml_rate(1, 1) < 0.15);
        // 128+ jobs are exclusively non-ML in Table III.
        assert!(ml_rate(129, 448) < 1e-9);
    }

    #[test]
    fn ml_names_classify_as_ml() {
        let mut rng = Rng::seed_from(7);
        for i in 0..50 {
            let name = job_name(true, i, &mut rng);
            let mut spec = JobSpec {
                submit: Timestamp::from_unix(0),
                name,
                gpus: 1,
                duration: Duration::from_secs(60),
                baseline_state: JobState::Completed,
            };
            assert!(spec_to_record(&spec).is_ml(), "{}", spec.name);
            spec.name = job_name(false, i, &mut rng);
            assert!(!spec_to_record(&spec).is_ml(), "{}", spec.name);
        }
    }

    #[test]
    fn cpu_jobs_have_no_gpus() {
        let config = WorkloadConfig::delta_scaled(0.001);
        let mut rng = Rng::seed_from(8);
        let cpu = config.generate_cpu(&mut rng);
        assert_eq!(cpu.len() as u64, config.cpu_jobs);
        assert!(cpu.iter().all(|j| j.gpus == 0));
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(TABLE_III_BUCKETS[0].label(), "1");
        assert_eq!(TABLE_III_BUCKETS[1].label(), "2-4");
        assert_eq!(TABLE_III_BUCKETS[7].label(), "257-448");
    }

    #[test]
    fn ml_probability_from_gpu_hours() {
        let b = &TABLE_III_BUCKETS[4]; // 33-64: 161.9 vs 226.4
        assert!((b.ml_probability() - 161.9 / 388.3).abs() < 1e-9);
        assert_eq!(TABLE_III_BUCKETS[7].ml_probability(), 0.0);
    }
}
