//! Property tests for the scheduler substrate: accounting invariants that
//! must hold for every seed, workload size and error pattern — on the
//! in-repo `propcheck` harness.

use clustersim::{Cluster, ClusterSpec, GpuErrorEvent, GpuId, IncidentId, NodeId};
use propcheck::run;
use simtime::Duration;
use slurmsim::{JobState, RequeuePolicy, Simulation, WorkloadConfig};
use xid::ErrorKind;

fn run_sim(seed: u64, errors: &[GpuErrorEvent]) -> slurmsim::SimulationOutcome {
    let cluster = Cluster::new(ClusterSpec::tiny());
    Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.001), seed).run(errors, &[])
}

/// Scheduler accounting invariants hold for any seed: one record per
/// job, ids in submission order, sane time ordering, GPU allocations
/// matching requests (clamped to cluster size), no GPU double-booked.
/// Simulations are slow; keep the case count small.
#[test]
fn accounting_invariants() {
    run("accounting_invariants", 12, |g| {
        let seed = g.u64();
        let outcome = run_sim(seed, &[]);
        let cluster_gpus = ClusterSpec::tiny().gpu_count();
        for (i, job) in outcome.jobs.iter().enumerate() {
            assert_eq!(job.id.0, i as u64);
            assert!(job.submit <= job.start);
            assert!(job.start <= job.end);
            if job.state != JobState::Cancelled {
                assert_eq!(job.gpu_ids.len() as u32, job.gpus);
                assert!(job.gpus >= 1);
                assert!(job.gpus <= cluster_gpus);
                // Every node in `nodes` hosts at least one allocated GPU.
                for node in &job.nodes {
                    assert!(job.gpu_ids.iter().any(|g| g.node == *node));
                }
            }
        }
        // Exclusive allocation: per GPU, running intervals don't overlap.
        let mut per_gpu: std::collections::BTreeMap<
            GpuId,
            Vec<(simtime::Timestamp, simtime::Timestamp)>,
        > = Default::default();
        for job in &outcome.jobs {
            for &gpu in &job.gpu_ids {
                per_gpu.entry(gpu).or_default().push((job.start, job.end));
            }
        }
        for (gpu, mut spans) in per_gpu {
            spans.sort();
            for pair in spans.windows(2) {
                assert!(
                    pair.first().unwrap().1 <= pair.last().unwrap().0,
                    "overlap on {gpu}: {pair:?}"
                );
            }
        }
    });
}

/// With no errors there are no NODE_FAIL records, and error kills are
/// bounded by error count in general.
#[test]
fn error_kills_bounded() {
    run("error_kills_bounded", 12, |g| {
        let seed = g.u64();
        let n_errors = g.usize_in(0, 40);
        let workload = WorkloadConfig::delta_scaled(0.001);
        let window = workload.window;
        let errors: Vec<GpuErrorEvent> = (0..n_errors)
            .map(|i| {
                GpuErrorEvent::new(
                    window.start + Duration::from_hours(i as u64 * 7 + 1),
                    GpuId::new(NodeId::new((i % 4) as u16), (i % 4) as u8),
                    ErrorKind::GspError,
                    IncidentId(i as u64),
                )
            })
            .collect();
        let outcome = run_sim(seed, &errors);
        let node_fails = outcome
            .jobs
            .iter()
            .filter(|j| j.state == JobState::NodeFail)
            .count();
        assert_eq!(node_fails as u64, outcome.stats.error_kills);
        if n_errors == 0 {
            assert_eq!(node_fails, 0);
        }
        // Node-scoped GSP kills can take out up to 8 co-resident jobs each.
        assert!(outcome.stats.error_kills <= (n_errors * 8) as u64);
    });
}

/// Requeueing never decreases the success rate and never loses records.
#[test]
fn requeue_never_hurts() {
    run("requeue_never_hurts", 12, |g| {
        let seed = g.u64();
        let workload = WorkloadConfig::delta_scaled(0.001);
        let window = workload.window;
        let cluster = Cluster::new(ClusterSpec::tiny());
        let errors: Vec<GpuErrorEvent> = (0..12u64)
            .map(|i| {
                GpuErrorEvent::new(
                    window.start + Duration::from_hours(i * 11 + 2),
                    GpuId::new(NodeId::new((i % 4) as u16), 0),
                    ErrorKind::GspError,
                    IncidentId(i),
                )
            })
            .collect();
        let plain = Simulation::new(&cluster, workload.clone(), seed).run(&errors, &[]);
        let retried = Simulation::new(&cluster, workload, seed)
            .with_requeue(RequeuePolicy::hourly_checkpoints(5))
            .run(&errors, &[]);
        assert_eq!(plain.jobs.len(), retried.jobs.len());
        assert!(retried.gpu_success_rate() >= plain.gpu_success_rate() - 1e-9);
    });
}
