//! Shared admission control for servd's bounded queues.
//!
//! Two subsystems accept work the event loop cannot finish inline: the
//! ingest write path and the `/whatif` compute path. Both follow one
//! shed contract — a bounded queue, a `*_rejected_total{reason=overload}`
//! counter, and a `429` with a `Retry-After` hint when full — and this
//! module implements that contract once so the two paths cannot drift.

use crate::http::Response;

/// The shed policy for one bounded queue: how deep it may grow, what to
/// tell clients when it is full, and which counter records the shed.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// The `*_rejected_total` counter bumped (with `reason=overload`)
    /// on every shed.
    pub rejected_metric: &'static str,
    /// Maximum queued entries before new offers shed.
    pub queue_capacity: usize,
    /// The `Retry-After` hint handed to shed clients, in seconds.
    pub retry_after_secs: u32,
}

impl AdmissionPolicy {
    /// Admits or sheds an offer given the current queue depth.
    ///
    /// # Errors
    ///
    /// When the queue is full, bumps the policy's rejected counter and
    /// returns the `Retry-After` hint the caller must surface.
    pub fn admit(&self, depth: usize) -> Result<(), u32> {
        if depth >= self.queue_capacity {
            if obs::is_enabled() {
                obs::counter(self.rejected_metric, &[("reason", "overload")]).inc();
            }
            return Err(self.retry_after_secs);
        }
        Ok(())
    }
}

/// Renders the uniform overload response: `429` with a `Retry-After`
/// header. `what` names the queue in the body (`ingest`, `whatif`).
pub fn overloaded(what: &str, retry_after_secs: u32) -> Response {
    Response::text(
        429,
        format!("{what} queue is full; retry after the indicated delay\n"),
    )
    .with_header("Retry-After", retry_after_secs.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: AdmissionPolicy = AdmissionPolicy {
        rejected_metric: "servd_test_rejected_total",
        queue_capacity: 2,
        retry_after_secs: 3,
    };

    #[test]
    fn admits_below_capacity_and_sheds_at_it() {
        assert_eq!(POLICY.admit(0), Ok(()));
        assert_eq!(POLICY.admit(1), Ok(()));
        assert_eq!(POLICY.admit(2), Err(3));
        assert_eq!(POLICY.admit(100), Err(3));
    }

    #[test]
    fn overloaded_response_carries_retry_after() {
        let resp = overloaded("whatif", 7);
        assert_eq!(resp.status, 429);
        assert!(resp
            .extra
            .iter()
            .any(|(k, v)| *k == "Retry-After" && v == "7"));
        assert!(resp.body.contains("whatif queue is full"), "{}", resp.body);
    }
}
