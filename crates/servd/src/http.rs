//! A minimal, defensive HTTP/1.1 reader/writer over `std::net` streams.
//!
//! Only what the serving subsystem needs: `GET`/`HEAD` queries, `POST`
//! ingest uploads with an exact `Content-Length` body, keep-alive, and
//! fixed-`Content-Length` responses. Everything is bounded — the request
//! head is read through a hard byte cap, `POST` bodies through their own
//! cap ([`RequestLimits::max_body_bytes`], answered `413` *before* any
//! body byte is read), and body reads carry a total time budget so a
//! slowloris dripping its body one byte per socket-timeout cannot hold a
//! worker past [`RequestLimits::body_timeout`]. `POST` without a
//! `Content-Length` is `411`; a non-numeric length is `400`;
//! `Transfer-Encoding` (chunked or otherwise) is never accepted.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request (head plus any declared body).
    Request(Request),
    /// The peer closed before sending anything; close quietly.
    Closed,
    /// The head exceeded the size cap — answer `413` and close.
    TooLarge,
    /// The declared body exceeds the body cap — answer `413` and close
    /// (the body is never read).
    BodyTooLarge,
    /// A `POST` without a `Content-Length` — answer `411` and close.
    LengthRequired,
    /// The socket read timed out mid-request, or the body read exceeded
    /// its total time budget — answer `408` and close.
    TimedOut,
    /// Bytes arrived but they are not HTTP we accept — answer `400`.
    Malformed(&'static str),
}

/// Read caps for one request: head bytes, body bytes, and the total time
/// budget for reading the body.
#[derive(Debug, Clone, Copy)]
pub struct RequestLimits {
    /// Request-head byte cap (`413` beyond it).
    pub max_head_bytes: usize,
    /// `POST` body byte cap (`413` beyond it, checked against the
    /// declared `Content-Length` before reading).
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading the complete body across however
    /// many socket reads it takes (`408` beyond it). `None` disables the
    /// budget (unit tests); the per-read socket timeout still applies.
    pub body_timeout: Option<Duration>,
}

impl RequestLimits {
    /// Limits for in-memory parsing: generous caps, no clock.
    pub fn unbounded() -> Self {
        RequestLimits {
            max_head_bytes: 64 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
            body_timeout: None,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `HEAD`, or `POST` (other methods parse — the router answers
    /// `405` — but may not carry a body).
    pub method: String,
    /// The decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs, in arrival order.
    pub query: Vec<(String, String)>,
    /// The request body (`POST` only; empty otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The canonical form of the query string: pairs sorted by key then
    /// value, re-encoded. Two requests naming the same slice in different
    /// parameter orders canonicalize identically — this is the response
    /// cache key (joined with the path by the cache itself).
    pub fn canonical_query(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.query.iter().collect();
        pairs.sort();
        let mut out = String::new();
        for (k, v) in pairs {
            if !out.is_empty() {
                out.push('&');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }

    /// The last value given for query key `k`, if any.
    pub fn query_value(&self, k: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request (head through the blank line, then exactly the
/// declared body for `POST`) from `stream` under `limits`. Reads exactly
/// to the end of the request, so the next head starts at the current
/// stream position on keep-alive connections.
pub fn read_request(stream: &mut impl Read, limits: &RequestLimits) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-request")
                };
            }
            Ok(_) => {
                buf.push(byte[0]);
                if buf.len() > limits.max_head_bytes {
                    return ReadOutcome::TooLarge;
                }
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    let (mut request, body_len) = match parse_head(&buf) {
                        Ok(parsed) => parsed,
                        Err(outcome) => return outcome,
                    };
                    if body_len > limits.max_body_bytes {
                        return ReadOutcome::BodyTooLarge;
                    }
                    if body_len > 0 {
                        match read_body(stream, body_len, limits.body_timeout) {
                            Ok(body) => request.body = body,
                            Err(outcome) => return outcome,
                        }
                    }
                    return ReadOutcome::Request(request);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::TimedOut
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

/// Reads exactly `len` body bytes, charging every read against one total
/// wall-clock `budget` — the per-read socket timeout alone would let a
/// peer drip one byte per timeout forever.
fn read_body(
    stream: &mut impl Read,
    len: usize,
    budget: Option<Duration>,
) -> Result<Vec<u8>, ReadOutcome> {
    let started = Instant::now();
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        if budget.is_some_and(|b| started.elapsed() > b) {
            return Err(ReadOutcome::TimedOut);
        }
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadOutcome::Malformed("connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ReadOutcome::TimedOut);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadOutcome::Malformed("connection error mid-body")),
        }
    }
    Ok(body)
}

/// Parses a complete head, yielding the request plus how many body bytes
/// follow it on the wire.
fn parse_head(head: &[u8]) -> Result<(Request, usize), ReadOutcome> {
    let Ok(text) = std::str::from_utf8(head) else {
        return Err(ReadOutcome::Malformed("request head is not UTF-8"));
    };
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let Some(request_line) = lines.next() else {
        return Err(ReadOutcome::Malformed("empty request"));
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadOutcome::Malformed("bad request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadOutcome::Malformed("unsupported HTTP version"));
    }

    let mut headers: BTreeMap<String, String> = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    // Body framing: only an exact Content-Length, and only on POST.
    if headers.contains_key("transfer-encoding") {
        return Err(ReadOutcome::Malformed(
            "transfer encodings are not accepted",
        ));
    }
    let body_len = if method == "POST" {
        match headers.get("content-length") {
            None => return Err(ReadOutcome::LengthRequired),
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Err(ReadOutcome::Malformed("invalid Content-Length")),
            },
        }
    } else {
        if headers
            .get("content-length")
            .is_some_and(|v| v.trim() != "0")
        {
            return Err(ReadOutcome::Malformed(
                "request bodies are only accepted on POST",
            ));
        }
        0
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let Some(path) = percent_decode(raw_path) else {
        return Err(ReadOutcome::Malformed("bad percent-encoding in path"));
    };
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
            return Err(ReadOutcome::Malformed("bad percent-encoding in query"));
        };
        query.push((k, v));
    }

    let keep_alive = match headers.get("connection").map(String::as_str) {
        Some(c) if c.eq_ignore_ascii_case("close") => false,
        Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
        _ => version != "HTTP/1.0",
    };

    Ok((
        Request {
            method: method.to_owned(),
            path,
            query,
            body: Vec::new(),
            keep_alive,
        },
        body_len,
    ))
}

/// Decodes `%XX` escapes and `+`-as-space; `None` on truncated or
/// non-hex escapes.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response ready to serialize: status, body, and any extra headers
/// (`X-Snapshot`, `X-Cache`). `Content-Length` is always emitted so
/// clients on keep-alive connections know exactly where the body ends.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes (suppressed on the wire for `HEAD`).
    pub body: String,
    /// Extra `(name, value)` headers.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra: Vec::new(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra: Vec::new(),
        }
    }

    /// A CSV response.
    pub fn csv(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into(),
            extra: Vec::new(),
        }
    }

    /// Adds an extra header, builder-style.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra.push((name, value.into()));
        self
    }

    /// The standard reason phrase for the status codes this server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Content Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// Serializes `response` onto `stream`. `head_only` suppresses the body
/// (HEAD requests) while keeping the headers — including the true
/// `Content-Length` — identical to the GET form.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
    head_only: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()
}

// ------------------------------------------------------ incremental parser

/// What [`Parser::poll`] learned from the bytes pushed so far.
#[derive(Debug)]
pub enum ParseProgress {
    /// Not enough bytes yet — push more (or let a deadline fire).
    NeedMore,
    /// One complete request; any trailing bytes stay buffered for the
    /// next (pipelined) request.
    Done(Request),
    /// The request is unacceptable. Carries the same [`ReadOutcome`]
    /// variant the one-shot [`read_request`] would have returned
    /// (`TooLarge`, `BodyTooLarge`, `LengthRequired`, `TimedOut`,
    /// `Malformed`) so the status-code mapping is shared.
    Fail(ReadOutcome),
}

/// Body phase bookkeeping: the parsed head waiting for its body.
#[derive(Debug)]
struct PendingBody {
    request: Request,
    body_len: usize,
    started: Option<Instant>,
}

/// An incremental HTTP/1.1 request parser for non-blocking connections.
///
/// [`Parser::push`] buffers whatever bytes the socket produced;
/// [`Parser::poll`] advances the state machine and yields
/// [`ParseProgress`]. The grammar, caps, and error taxonomy are
/// deliberately a second implementation of exactly what the blocking
/// [`read_request`] accepts — byte-for-byte the same verdicts however
/// the input is split — and `tests/parser_fuzz.rs` holds the two
/// implementations against each other across every split schedule.
///
/// Per-byte accounting mirrors the one-shot reader: each head byte is
/// charged against `max_head_bytes` *before* the terminator test, so a
/// head whose final `\n` lands one past the cap is `TooLarge` even
/// though it terminates; the declared `Content-Length` is checked
/// against `max_body_bytes` before any body byte is consumed; and the
/// body's wall-clock budget starts when the head completes.
#[derive(Debug)]
pub struct Parser {
    limits: RequestLimits,
    buf: Vec<u8>,
    /// How many bytes of `buf` have already been tested for the head
    /// terminator — keeps repeated polls linear, not quadratic.
    scanned: usize,
    pending: Option<PendingBody>,
    failed: bool,
}

impl Parser {
    /// A parser enforcing `limits` for every request on the connection.
    pub fn new(limits: RequestLimits) -> Parser {
        Parser {
            limits,
            buf: Vec::with_capacity(512),
            scanned: 0,
            pending: None,
            failed: false,
        }
    }

    /// Buffers socket bytes. Call [`Parser::poll`] afterwards.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when nothing of a request has arrived — the connection is
    /// idle between requests (keep-alive timeout closes it silently
    /// rather than answering `408`).
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none() && !self.failed
    }

    /// True while a request head or body is partially buffered.
    pub fn mid_request(&self) -> bool {
        !self.is_idle()
    }

    /// When the in-flight body started arriving, if the parser is in the
    /// body phase (used by the caller's timer wheel).
    pub fn body_started(&self) -> Option<Instant> {
        self.pending.as_ref().and_then(|p| p.started)
    }

    /// Advances the state machine. `now` feeds the body wall-clock
    /// budget; pass `None` to skip clock checks (differential tests).
    ///
    /// After a `Fail` the parser is poisoned — every later poll repeats
    /// a failure — because the connection is about to close anyway.
    pub fn poll(&mut self, now: Option<Instant>) -> ParseProgress {
        if self.failed {
            return ParseProgress::Fail(ReadOutcome::Malformed("parser already failed"));
        }
        if self.pending.is_none() {
            match self.scan_head() {
                HeadScan::NeedMore => return ParseProgress::NeedMore,
                HeadScan::Fail(outcome) => {
                    self.failed = true;
                    return ParseProgress::Fail(outcome);
                }
                HeadScan::Complete => {
                    if let Some(p) = self.pending.as_mut() {
                        p.started = now;
                    }
                }
            }
        }
        // Body phase (scan_head either returned above or left a parsed
        // head in `pending`; zero-length bodies complete inside
        // scan_head's caller below).
        let Some(pending) = self.pending.as_ref() else {
            return ParseProgress::NeedMore;
        };
        if let (Some(started), Some(budget), Some(clock)) =
            (pending.started, self.limits.body_timeout, now)
        {
            if clock.duration_since(started) > budget {
                self.failed = true;
                return ParseProgress::Fail(ReadOutcome::TimedOut);
            }
        }
        if self.buf.len() < pending.body_len {
            return ParseProgress::NeedMore;
        }
        let Some(mut pending) = self.pending.take() else {
            return ParseProgress::NeedMore;
        };
        pending.request.body = self.buf[..pending.body_len].to_vec();
        self.buf.drain(..pending.body_len);
        self.scanned = 0;
        ParseProgress::Done(pending.request)
    }

    /// Looks for the head terminator in the unscanned tail of `buf`,
    /// charging each byte against the head cap exactly like the one-shot
    /// reader (cap check first, terminator test second). On success the
    /// head bytes are drained and the parsed request parked in
    /// `pending`; a zero-length body short-circuits to `pending` with
    /// `body_len == 0`, completed by the caller.
    fn scan_head(&mut self) -> HeadScan {
        while self.scanned < self.buf.len() {
            let len = self.scanned + 1;
            self.scanned = len;
            if len > self.limits.max_head_bytes {
                return HeadScan::Fail(ReadOutcome::TooLarge);
            }
            let head = &self.buf[..len];
            if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                let (request, body_len) = match parse_head(head) {
                    Ok(parsed) => parsed,
                    Err(outcome) => return HeadScan::Fail(outcome),
                };
                if body_len > self.limits.max_body_bytes {
                    return HeadScan::Fail(ReadOutcome::BodyTooLarge);
                }
                self.buf.drain(..len);
                self.scanned = 0;
                self.pending = Some(PendingBody {
                    request,
                    body_len,
                    started: None,
                });
                return HeadScan::Complete;
            }
        }
        HeadScan::NeedMore
    }

    /// The peer closed its write side (read returned 0). Maps buffered
    /// state to the same verdicts the one-shot reader gives at EOF.
    pub fn close(&mut self) -> Option<ReadOutcome> {
        self.failed = true;
        if self.pending.is_some() {
            Some(ReadOutcome::Malformed("connection closed mid-body"))
        } else if self.buf.is_empty() {
            None
        } else {
            Some(ReadOutcome::Malformed("connection closed mid-request"))
        }
    }
}

/// Result of one head-scanning pass.
enum HeadScan {
    NeedMore,
    Complete,
    Fail(ReadOutcome),
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut raw.as_bytes(), &RequestLimits::unbounded())
    }

    fn request(raw: &str) -> Request {
        match parse(raw) {
            ReadOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let r = request("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.query.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_query_pairs_and_percent_escapes() {
        let r = request("GET /errors?host=gpub%30%31&xid=74&from=1+2 HTTP/1.1\r\n\r\n");
        assert_eq!(r.query_value("host"), Some("gpub01"));
        assert_eq!(r.query_value("xid"), Some("74"));
        assert_eq!(r.query_value("from"), Some("1 2"));
    }

    #[test]
    fn canonical_query_sorts_pairs() {
        let a = request("GET /errors?xid=74&host=h HTTP/1.1\r\n\r\n");
        let b = request("GET /errors?host=h&xid=74 HTTP/1.1\r\n\r\n");
        assert_eq!(a.canonical_query(), b.canonical_query());
        assert_eq!(a.canonical_query(), "host=h&xid=74");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        assert!(!request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!request("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(request("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn oversized_head_is_too_large() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        let limits = RequestLimits {
            max_head_bytes: 64,
            ..RequestLimits::unbounded()
        };
        assert!(matches!(
            read_request(&mut raw.as_bytes(), &limits),
            ReadOutcome::TooLarge
        ));
    }

    #[test]
    fn empty_stream_is_closed_truncated_is_malformed() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn bodies_on_get_and_bad_escapes_are_rejected() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse("GET /%zz HTTP/1.1\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn post_reads_exact_body() {
        let r = request("POST /ingest/logs?seq=0 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
        assert_eq!(r.query_value("seq"), Some("0"));
    }

    #[test]
    fn post_body_stops_at_declared_length_for_keep_alive() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabGET /y HTTP/1.1\r\n\r\n";
        let mut stream = &raw[..];
        let limits = RequestLimits::unbounded();
        match read_request(&mut stream, &limits) {
            ReadOutcome::Request(r) => assert_eq!(r.body, b"ab"),
            other => panic!("expected request, got {other:?}"),
        }
        // The next request head begins exactly where the body ended.
        match read_request(&mut stream, &limits) {
            ReadOutcome::Request(r) => assert_eq!(r.path, "/y"),
            other => panic!("expected second request, got {other:?}"),
        }
    }

    #[test]
    fn post_without_content_length_is_411() {
        assert!(matches!(
            parse("POST /ingest/logs HTTP/1.1\r\n\r\n"),
            ReadOutcome::LengthRequired
        ));
    }

    #[test]
    fn post_with_invalid_content_length_is_malformed() {
        for bad in ["abc", "-1", "3.5", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            assert!(
                matches!(parse(&raw), ReadOutcome::Malformed(_)),
                "Content-Length: {bad:?}"
            );
        }
    }

    #[test]
    fn transfer_encoding_is_always_rejected() {
        for head in [
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(matches!(parse(head), ReadOutcome::Malformed(_)), "{head}");
        }
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading() {
        let limits = RequestLimits {
            max_body_bytes: 8,
            ..RequestLimits::unbounded()
        };
        // Only the head is on the wire; the verdict must not wait for
        // body bytes that will never arrive.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], &limits),
            ReadOutcome::BodyTooLarge
        ));
    }

    #[test]
    fn body_at_the_cap_is_accepted() {
        let limits = RequestLimits {
            max_body_bytes: 4,
            ..RequestLimits::unbounded()
        };
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        assert!(matches!(
            read_request(&mut &raw[..], &limits),
            ReadOutcome::Request(_)
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(
            read_request(&mut &raw[..], &RequestLimits::unbounded()),
            ReadOutcome::Malformed(_)
        ));
    }

    /// A reader that yields the head at once, then drips body bytes with
    /// a delay — the slowloris-on-body shape.
    struct DripBody {
        head: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for DripBody {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.head.len() {
                let n = buf.len().min(self.head.len() - self.pos);
                buf[..n].copy_from_slice(&self.head[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            std::thread::sleep(self.delay);
            buf[0] = b'x';
            Ok(1)
        }
    }

    #[test]
    fn slow_body_exceeding_the_budget_times_out() {
        let mut stream = DripBody {
            head: b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(20),
        };
        let limits = RequestLimits {
            body_timeout: Some(Duration::from_millis(60)),
            ..RequestLimits::unbounded()
        };
        let started = Instant::now();
        assert!(matches!(
            read_request(&mut stream, &limits),
            ReadOutcome::TimedOut
        ));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "budget cut the drip short"
        );
    }

    #[test]
    fn reason_phrases_cover_every_emitted_status() {
        for (status, phrase) in [
            (200, "OK"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (408, "Request Timeout"),
            (409, "Conflict"),
            (411, "Length Required"),
            (413, "Content Too Large"),
            (429, "Too Many Requests"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(Response::text(status, "").reason(), phrase);
        }
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("a%20b"), Some("a b".to_owned()));
        assert_eq!(percent_decode("a%2"), None);
        assert_eq!(percent_decode("a%gg"), None);
        assert_eq!(percent_decode("plain"), Some("plain".to_owned()));
    }

    #[test]
    fn response_serialization_sets_length_and_connection() {
        let mut out = Vec::new();
        let resp = Response::text(200, "hello").with_header("X-Snapshot", "3");
        write_response(&mut out, &resp, true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Snapshot: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_suppresses_body_but_keeps_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "hello"), false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    // ------------------------------------------- incremental parser

    #[test]
    fn incremental_parser_completes_byte_by_byte() {
        let raw = b"POST /ingest/logs?seq=3 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = Parser::new(RequestLimits::unbounded());
        for (i, b) in raw.iter().enumerate() {
            parser.push(std::slice::from_ref(b));
            match parser.poll(None) {
                ParseProgress::NeedMore => assert!(i + 1 < raw.len(), "never completed"),
                ParseProgress::Done(r) => {
                    assert_eq!(i + 1, raw.len(), "completed early at byte {i}");
                    assert_eq!(r.body, b"hello");
                    assert_eq!(r.query_value("seq"), Some("3"));
                }
                ParseProgress::Fail(o) => panic!("failed at byte {i}: {o:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_keeps_pipelined_leftovers() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabGET /y HTTP/1.1\r\n\r\n";
        let mut parser = Parser::new(RequestLimits::unbounded());
        parser.push(raw);
        match parser.poll(None) {
            ParseProgress::Done(r) => assert_eq!(r.body, b"ab"),
            other => panic!("first request: {other:?}"),
        }
        match parser.poll(None) {
            ParseProgress::Done(r) => assert_eq!(r.path, "/y"),
            other => panic!("second request: {other:?}"),
        }
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_matches_one_shot_cap_accounting() {
        // A head whose terminating newline lands one byte past the cap
        // must be TooLarge, exactly like the one-shot reader.
        let raw = b"GET /aaaa HTTP/1.1\r\n\r\n";
        let limits = RequestLimits {
            max_head_bytes: raw.len() - 1,
            ..RequestLimits::unbounded()
        };
        let mut parser = Parser::new(limits);
        parser.push(raw);
        assert!(matches!(
            parser.poll(None),
            ParseProgress::Fail(ReadOutcome::TooLarge)
        ));
        // And at exactly the cap it parses.
        let mut parser = Parser::new(RequestLimits {
            max_head_bytes: raw.len(),
            ..RequestLimits::unbounded()
        });
        parser.push(raw);
        assert!(matches!(parser.poll(None), ParseProgress::Done(_)));
    }

    #[test]
    fn incremental_parser_times_out_dripping_body() {
        let limits = RequestLimits {
            body_timeout: Some(Duration::from_millis(50)),
            ..RequestLimits::unbounded()
        };
        let mut parser = Parser::new(limits);
        parser.push(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
        let t0 = Instant::now();
        assert!(matches!(parser.poll(Some(t0)), ParseProgress::NeedMore));
        parser.push(b"a");
        assert!(matches!(
            parser.poll(Some(t0 + Duration::from_millis(30))),
            ParseProgress::NeedMore
        ));
        parser.push(b"b");
        assert!(matches!(
            parser.poll(Some(t0 + Duration::from_millis(80))),
            ParseProgress::Fail(ReadOutcome::TimedOut)
        ));
    }

    #[test]
    fn incremental_parser_close_matches_eof_verdicts() {
        let mut idle = Parser::new(RequestLimits::unbounded());
        assert!(idle.close().is_none(), "clean EOF between requests");

        let mut mid_head = Parser::new(RequestLimits::unbounded());
        mid_head.push(b"GET /healthz HT");
        let _ = mid_head.poll(None);
        assert!(matches!(
            mid_head.close(),
            Some(ReadOutcome::Malformed("connection closed mid-request"))
        ));

        let mut mid_body = Parser::new(RequestLimits::unbounded());
        mid_body.push(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc");
        let _ = mid_body.poll(None);
        assert!(matches!(
            mid_body.close(),
            Some(ReadOutcome::Malformed("connection closed mid-body"))
        ));
    }
}
