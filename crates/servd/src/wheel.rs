//! A hashed timer wheel for connection deadlines.
//!
//! The event loop arms at most one deadline per connection (idle
//! keep-alive, request-head `408`, body budget, write stall, drain
//! grace). Deadlines are coarse — tens of milliseconds of slack is
//! fine — so a classic hashed wheel fits: O(1) insert, O(slots) sweep,
//! no allocation on re-arm beyond the slot `Vec`s.
//!
//! Cancellation is lazy, via generations: each connection carries a
//! monotonically increasing `gen`, bumped on every re-arm or close.
//! Stale wheel entries (an older `gen`, or a token whose connection is
//! gone) fall out during the sweep without being hunted down at
//! cancel time. [`TimerWheel::expire`] therefore yields *candidates*:
//! the caller must check the entry's `(token, gen)` against the live
//! connection before acting.

use std::time::{Duration, Instant};

/// One armed deadline: which connection (`token`), which arming of that
/// connection (`gen`), and the absolute tick it matures at.
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    gen: u64,
    at: u64,
}

/// The wheel. Ticks are fixed-width; a deadline lands in slot
/// `at % slots` with its absolute tick kept alongside, so deadlines
/// beyond one revolution simply survive extra sweeps of their slot.
#[derive(Debug)]
pub struct TimerWheel {
    base: Instant,
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// The next tick the sweep will process.
    cursor: u64,
    /// Live (scheduled, not yet expired) entry count, including stale
    /// generations — only used to skip the sweep entirely when zero.
    armed: usize,
}

impl TimerWheel {
    /// A wheel of `slots` ticks of width `tick`, anchored at `base`.
    pub fn new(base: Instant, tick: Duration, slots: usize) -> TimerWheel {
        TimerWheel {
            base,
            tick,
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            cursor: 0,
            armed: 0,
        }
    }

    /// Deadlines round *up* to a tick, the current time rounds *down*
    /// ([`TimerWheel::now_tick`]): together a deadline can mature up to
    /// one tick late but never early.
    fn tick_of(&self, at: Instant) -> u64 {
        let nanos = at.saturating_duration_since(self.base).as_nanos();
        let width = self.tick.as_nanos().max(1);
        (nanos.div_ceil(width)).min(u64::MAX as u128) as u64
    }

    fn now_tick(&self, now: Instant) -> u64 {
        let nanos = now.saturating_duration_since(self.base).as_nanos();
        let width = self.tick.as_nanos().max(1);
        ((nanos / width).min(u64::MAX as u128)) as u64
    }

    /// Arms `(token, gen)` to mature at `deadline`. Re-arming is just
    /// scheduling with a bumped `gen`; the old entry goes stale.
    pub fn schedule(&mut self, token: u64, gen: u64, deadline: Instant) {
        let at = self.tick_of(deadline).max(self.cursor);
        let slot = (at % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, gen, at });
        self.armed += 1;
    }

    /// How long the event loop may sleep before the next possible
    /// expiry. `None` when nothing is armed. Coarse on purpose: it
    /// reports the gap to the next *occupied* slot within one
    /// revolution, not the exact nearest deadline, so a sweep may find
    /// only future-revolution entries and yield nothing — harmless.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let now_tick = self.now_tick(now);
        let len = self.slots.len() as u64;
        for step in 0..len {
            let t = self.cursor.saturating_add(step);
            if !self.slots[(t % len) as usize].is_empty() {
                if t <= now_tick {
                    return Some(Duration::ZERO);
                }
                let gap = self
                    .tick
                    .saturating_mul(u32::try_from(t - now_tick).unwrap_or(u32::MAX));
                return Some(gap);
            }
        }
        // Occupied slots exist beyond one revolution; wake once per
        // revolution and let the sweep carry them forward.
        Some(
            self.tick
                .saturating_mul(u32::try_from(len).unwrap_or(u32::MAX)),
        )
    }

    /// Sweeps every tick up to `now`, appending matured `(token, gen)`
    /// candidates to `expired`. Entries scheduled for a later
    /// revolution of their slot are retained.
    pub fn expire(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        if self.armed == 0 {
            self.cursor = self.now_tick(now);
            return;
        }
        let now_tick = self.now_tick(now);
        let len = self.slots.len() as u64;
        // Each slot needs at most one visit per sweep, however far the
        // cursor lags.
        let span = (now_tick.saturating_sub(self.cursor) + 1).min(len);
        for step in 0..span {
            let slot = ((self.cursor + step) % len) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].at <= now_tick {
                    let e = entries.swap_remove(i);
                    expired.push((e.token, e.gen));
                    self.armed -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(10);

    fn wheel() -> (TimerWheel, Instant) {
        let base = Instant::now();
        (TimerWheel::new(base, TICK, 8), base)
    }

    fn expired_at(wheel: &mut TimerWheel, now: Instant) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        wheel.expire(now, &mut out);
        out
    }

    #[test]
    fn deadline_fires_at_or_after_maturity_never_before() {
        let (mut w, base) = wheel();
        w.schedule(1, 0, base + Duration::from_millis(25));
        assert!(expired_at(&mut w, base + Duration::from_millis(20)).is_empty());
        assert_eq!(
            expired_at(&mut w, base + Duration::from_millis(31)),
            vec![(1, 0)]
        );
    }

    #[test]
    fn entries_beyond_one_revolution_survive_sweeps() {
        let (mut w, base) = wheel();
        // 8 slots × 10ms per revolution; 200ms is 2.5 revolutions out.
        w.schedule(9, 3, base + Duration::from_millis(200));
        assert!(expired_at(&mut w, base + Duration::from_millis(100)).is_empty());
        assert!(expired_at(&mut w, base + Duration::from_millis(150)).is_empty());
        assert_eq!(
            expired_at(&mut w, base + Duration::from_millis(210)),
            vec![(9, 3)]
        );
    }

    #[test]
    fn rearm_leaves_a_stale_generation_behind() {
        let (mut w, base) = wheel();
        w.schedule(5, 1, base + Duration::from_millis(20));
        w.schedule(5, 2, base + Duration::from_millis(60));
        let first = expired_at(&mut w, base + Duration::from_millis(30));
        // The stale gen-1 entry matures — the caller's gen check drops it.
        assert_eq!(first, vec![(5, 1)]);
        assert_eq!(
            expired_at(&mut w, base + Duration::from_millis(70)),
            vec![(5, 2)]
        );
    }

    #[test]
    fn next_wakeup_tracks_the_earliest_occupied_slot() {
        let (mut w, base) = wheel();
        assert!(w.next_wakeup(base).is_none(), "empty wheel never wakes");
        w.schedule(1, 0, base + Duration::from_millis(40));
        let gap = w.next_wakeup(base).expect("armed wheel wakes");
        assert!(
            gap >= Duration::from_millis(20) && gap <= Duration::from_millis(60),
            "gap {gap:?} far from the 40ms deadline"
        );
        let _ = expired_at(&mut w, base + Duration::from_millis(50));
        assert!(w.next_wakeup(base).is_none(), "fired entries disarm");
    }

    #[test]
    fn past_deadlines_mature_on_the_next_sweep() {
        let (mut w, base) = wheel();
        let _ = expired_at(&mut w, base + Duration::from_millis(50));
        w.schedule(2, 0, base); // already past
        assert_eq!(
            w.next_wakeup(base + Duration::from_millis(50)),
            Some(Duration::ZERO)
        );
        assert_eq!(
            expired_at(&mut w, base + Duration::from_millis(51)),
            vec![(2, 0)]
        );
    }

    #[test]
    fn many_tokens_in_one_slot_all_mature() {
        let (mut w, base) = wheel();
        for t in 0..100u64 {
            // All land on ticks ≡ 2 (mod 8) — the same slot.
            w.schedule(
                t,
                0,
                base + Duration::from_millis(20) + TICK * 8 * (t as u32 % 3),
            );
        }
        let mut all = Vec::new();
        w.expire(base + Duration::from_millis(400), &mut all);
        let mut tokens: Vec<u64> = all.iter().map(|(t, _)| *t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..100).collect::<Vec<u64>>());
    }
}
