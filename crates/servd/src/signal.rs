//! Process shutdown signals, without a signal-handling crate.
//!
//! The only thing a handler may safely do is flip an atomic, so that is
//! all this module does: [`install`] registers a handler for `SIGINT`
//! and `SIGTERM` that sets a process-global flag, and
//! [`shutdown_requested`] reads it. The server's accept loop polls the
//! flag between connections (and is woken by a self-connect from
//! [`RunningServer::shutdown`](crate::server::RunningServer::shutdown)),
//! turning ctrl-c into a graceful drain instead of a hard kill.
//!
//! This is the crate's single unsafe seam: the raw `signal(2)` binding
//! below is the minimal FFI needed, declared directly because the
//! workspace links no external crates (std already links libc). On
//! non-Unix targets installation is a no-op and only the in-process
//! [`request_shutdown`] path can set the flag.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or [`request_shutdown`]) has been seen.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag from inside the process (tests, the bin's
/// orderly-exit path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag — test isolation only; a real process shuts down once.
#[doc(hidden)]
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Storing to an atomic is async-signal-safe; nothing else here is
        // allowed to allocate, lock, or call into std I/O.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only touches an atomic;
        // both arguments are valid for the whole process lifetime.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs the `SIGINT`/`SIGTERM` handler (no-op off Unix). Idempotent.
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        install();
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
    }
}
