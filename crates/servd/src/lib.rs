//! `servd` — the query/serving subsystem over a finished (or still
//! streaming) GPU-resilience study.
//!
//! Four PRs of pipeline produce a [`StudyReport`](resilience::StudyReport)
//! and render it once to stdout; this crate makes the same results
//! *queryable*: an immutable, columnar [`StudyStore`] behind a
//! hand-rolled HTTP/1.1 listener, in the workspace's zero-external-crates
//! discipline (everything is `std`).
//!
//! # Architecture
//!
//! ```text
//!  POST /ingest/* ─ IngestHandle ─ bounded queue + WAL ─ ingest worker
//!        (429 on overflow)                                   │ cadence
//!                                                            ▼
//!  Pipeline / StreamingPipeline ──────────────── materialize + checkpoint
//!        │ publish (SnapshotSink)
//!        ▼
//!  StoreHandle ── RwLock<Arc<Published{id, StudyStore}>> ── atomic swap
//!        │ current(): Arc clone     │ StudyStore = host-range shards
//!        ▼                          ▼
//!  router ── ResponseCache ── ScanPool scatter ─ k-way merge (hpclog)
//!        ▲
//!  server ── epoll event loops ─ conn state machines ─ timer wheel
//! ```
//!
//! * [`store`] — the columnar snapshot: pre-rendered paper surfaces plus
//!   sorted column vectors and posting-list indexes answering filtered
//!   queries by binary search, and the [`StoreHandle`](store::StoreHandle)
//!   swap point implementing the core pipeline's
//!   [`SnapshotSink`](resilience::incremental::SnapshotSink).
//! * [`router`] — path/query dispatch: `/tables/{1,2,3}`, `/fig2`
//!   (byte-identical to the offline renderers), `/errors`, `/mtbe`,
//!   `/jobs/impact`, `/availability`, `/snapshot`, `/healthz`,
//!   `/readyz` (snapshot age + ingest backlog), `/metrics` (the `obs`
//!   Prometheus exposition), `/metrics/history` (self-scraped series
//!   rings), and `/debug/traces` (the slow-trace flight recorder).
//! * [`cache`] — snapshot-scoped response memo, invalidated wholesale on
//!   swap.
//! * [`ingest`] — the write path: `POST /ingest/*` admission behind a
//!   bounded queue (`429` + `Retry-After` on overflow), a checksummed
//!   write-ahead log so an acknowledged chunk survives SIGKILL, a single
//!   worker driving the streaming pipeline on a publish cadence, and
//!   [`ingest::recover`] replaying WAL + checkpoint on restart.
//! * [`admission`] — the shed contract both bounded queues (ingest,
//!   whatif) share: capacity check, overload counter, `429` +
//!   `Retry-After` rendering.
//! * [`whatif`] — the compute path: `/whatif` counterfactual campaigns
//!   (`resilience::scenario`) on a dedicated worker pool with
//!   single-flight deduplication, deterministic job ids, snapshot-scoped
//!   result caching and `202` polling for long campaigns.
//! * [`http`] — bounded request parsing (one-shot and incremental — the
//!   two implementations are held byte-equivalent by
//!   `tests/parser_fuzz.rs`) and fixed-length responses.
//! * [`server`] — the listener: epoll event loops with per-connection
//!   state machines, a timer wheel of deadlines, `503` load shedding
//!   over the connection cap, graceful drain. With tracing enabled it
//!   mints one [`obs::Trace`] per parsed request (responses answer
//!   with `X-Trace-Id`), and with scraping enabled it runs the
//!   `/metrics/history` self-scrape thread and can emit a Common Log
//!   Format access log to stderr.
//! * [`epoll`] — the thin epoll/eventfd FFI under the event loops.
//! * [`wheel`] — the hashed timer wheel arming connection deadlines.
//! * [`pool`] — the scan pool that shard-parallel queries scatter over.
//! * [`signal`] — SIGINT/SIGTERM → atomic flag (with [`epoll`], the
//!   crate's only `unsafe` seams: direct libc bindings).
//!
//! The differential suite (`tests/serve_equivalence.rs` at the workspace
//! root) proves every endpoint byte-identical to the offline oracle over
//! clean and corrupted inputs, and that concurrent snapshot swaps never
//! produce a torn response.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod admission;
pub mod cache;
pub mod epoll;
pub mod http;
pub mod ingest;
pub mod pool;
pub mod router;
pub mod server;
pub mod signal;
pub mod store;
#[cfg(any(test, feature = "testutil"))]
pub mod testutil;
pub mod whatif;
pub mod wheel;

pub use cache::ResponseCache;
pub use ingest::{IngestConfig, IngestError, IngestHandle, IngestStream, IngestWorker, ReadyStats};
pub use router::ObsState;
pub use server::{start, start_with_ingest, RunningServer, ServeError, ServerConfig};
pub use store::{ErrorFilter, RollupMetric, RollupQuery, StoreHandle, StudyStore};
pub use whatif::{WhatifConfig, WhatifHandle};
