//! Live ingest: bounded admission, a write-ahead log, a publish cadence,
//! and crash recovery for a read-write `servd`.
//!
//! The read path (store/router/cache) never blocks on ingest; this module
//! is everything on the write path:
//!
//! ```text
//!   POST /ingest/{logs,jobs,cpu-jobs,outages}?seq=N
//!        │ offer(): dedup check → queue-full check → WAL append → ack
//!        ▼
//!   IngestHandle ── Mutex<{queue, accepted[], wal}> ── bounded, 429 on full
//!        │ pop (single worker thread)
//!        ▼
//!   StreamingPipeline ── publish cadence (N events or T seconds)
//!        │ materialize_full()
//!        ▼
//!   StoreHandle.publish() + checkpoint (temp+rename) + WAL compaction
//! ```
//!
//! # The recovery invariant
//!
//! A `200` on `/ingest/*` is a durability promise: the chunk's bytes are
//! in the write-ahead log *before* the response is written, and the WAL
//! is only compacted after a checkpoint capturing those bytes' effect has
//! been atomically renamed into place. At every instant
//!
//! ```text
//!   engine state in checkpoint  +  WAL records ≥ applied counts
//!       =  every acknowledged chunk, exactly once, in acceptance order
//! ```
//!
//! so [`recover`] after a SIGKILL rebuilds exactly the acknowledged
//! prefix: restore the checkpointed engine, then re-apply WAL records at
//! or beyond the checkpoint's per-stream applied counts, stopping at the
//! first torn record (a torn tail can only be an *unacknowledged* write,
//! because the ack happens after the append returns).
//!
//! # Exactly-once re-POST
//!
//! A client that crashes mid-upload (or never saw an ack the server did
//! write) can replay its chunks safely by numbering them: `?seq=N` is the
//! zero-based per-stream chunk index. A chunk below the accepted count is
//! acknowledged as a duplicate without being re-applied; a chunk beyond
//! it is refused with `409` (the client skipped something); only the
//! exact next chunk is admitted. `GET /ingest/status` reports the
//! accepted counts so a restarted client knows where to resume. Chunks
//! POSTed without `seq` are applied unconditionally (at-least-once).
//!
//! # Backpressure
//!
//! Admission is a bounded queue ahead of the single worker. A full queue
//! answers `429` with a `Retry-After` — load is *shed*, never buffered,
//! so slow materialization can cost an uploader a retry but can never
//! grow server memory or stall the GET path.

use crate::admission::AdmissionPolicy;
use crate::store::{StoreHandle, StudyStore};
use resilience::checkpoint::{write_atomic, Checkpoint, CheckpointError, Decoder, Encoder};
use resilience::incremental::StreamingPipeline;
use resilience::Pipeline;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Checkpoint file name inside the ingest directory.
const CKPT_FILE: &str = "ingest.ckpt";
/// Write-ahead log file name inside the ingest directory.
const WAL_FILE: &str = "wal.log";
/// Envelope tag distinguishing an ingest checkpoint from a bare engine
/// checkpoint (both share the container magic).
const ENVELOPE_TAG: &str = "servd-ingest-v1";
/// Fixed bytes of a WAL record ahead of the payload:
/// `u32` payload length, `u64` checksum, `u8` stream tag, `u64` seq.
const RECORD_HEADER: usize = 4 + 8 + 1 + 8;

/// One ingestible input stream, mirroring the batch pipeline's four
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestStream {
    /// Raw syslog bytes (`POST /ingest/logs`).
    Logs,
    /// GPU job export CSV (`POST /ingest/jobs`).
    GpuJobs,
    /// CPU job export CSV (`POST /ingest/cpu-jobs`).
    CpuJobs,
    /// Outage export CSV (`POST /ingest/outages`).
    Outages,
}

impl IngestStream {
    /// Every stream, in tag order.
    pub const ALL: [IngestStream; 4] = [
        IngestStream::Logs,
        IngestStream::GpuJobs,
        IngestStream::CpuJobs,
        IngestStream::Outages,
    ];

    /// The `/ingest/<segment>` path segment naming this stream.
    pub fn name(self) -> &'static str {
        match self {
            IngestStream::Logs => "logs",
            IngestStream::GpuJobs => "jobs",
            IngestStream::CpuJobs => "cpu-jobs",
            IngestStream::Outages => "outages",
        }
    }

    /// Resolves a `/ingest/<segment>` path segment.
    pub fn from_segment(segment: &str) -> Option<Self> {
        IngestStream::ALL.into_iter().find(|s| s.name() == segment)
    }

    fn index(self) -> usize {
        match self {
            IngestStream::Logs => 0,
            IngestStream::GpuJobs => 1,
            IngestStream::CpuJobs => 2,
            IngestStream::Outages => 3,
        }
    }

    fn tag(self) -> u8 {
        self.index() as u8
    }

    fn from_tag(tag: u8) -> Option<Self> {
        IngestStream::ALL.get(tag as usize).copied()
    }
}

/// Ingest tunables. `dir` is where the WAL and checkpoint live; the rest
/// have serviceable defaults.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Durable state directory (created if missing).
    pub dir: PathBuf,
    /// Queue slots ahead of the worker; an offer beyond this is `429`.
    pub queue_capacity: usize,
    /// Publish after this many new input lines…
    pub publish_every_events: u64,
    /// …or after this long with unpublished input, whichever first.
    pub publish_every: Duration,
    /// Seconds suggested to a shed client via `Retry-After`.
    pub retry_after_secs: u32,
}

impl IngestConfig {
    /// A config with defaults, rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        IngestConfig {
            dir: dir.into(),
            queue_capacity: 256,
            publish_every_events: 5_000,
            publish_every: Duration::from_secs(2),
            retry_after_secs: 1,
        }
    }

    /// The shared shed contract this queue enforces.
    pub fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            rejected_metric: "servd_ingest_rejected_total",
            queue_capacity: self.queue_capacity,
            retry_after_secs: self.retry_after_secs,
        }
    }
}

/// Why ingest could not be set up or made durable.
#[derive(Debug)]
pub enum IngestError {
    /// A filesystem operation on the ingest directory failed.
    Io {
        /// What was being done, e.g. `"opening the write-ahead log"`.
        what: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The on-disk ingest checkpoint is structurally invalid. (Cannot
    /// arise from a crash — checkpoints land via atomic rename — so this
    /// means external corruption; refusing to serve beats silently
    /// dropping acknowledged data.)
    Checkpoint(CheckpointError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { what, path, source } => {
                write!(f, "{what} {}: {source}", path.display())
            }
            IngestError::Checkpoint(e) => write!(f, "ingest checkpoint: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            IngestError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for IngestError {
    fn from(e: CheckpointError) -> Self {
        IngestError::Checkpoint(e)
    }
}

/// The verdict on one offered chunk, rendered by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Offer {
    /// Admitted: WAL'd, queued, will be applied. Carries the assigned
    /// per-stream sequence number.
    Accepted {
        /// The chunk's zero-based per-stream index.
        seq: u64,
    },
    /// `seq` was below the accepted count — already durable, not
    /// re-applied. Acknowledged `200` so blind client replays converge.
    Duplicate {
        /// The stream's accepted count (next expected `seq`).
        accepted: u64,
    },
    /// `seq` was beyond the accepted count — the client skipped a chunk;
    /// `409`.
    Gap {
        /// The `seq` the server expected.
        expected: u64,
    },
    /// The queue is full — `429` + `Retry-After`; nothing was written.
    Overloaded {
        /// Suggested client back-off, seconds.
        retry_after_secs: u32,
    },
    /// The server is draining for shutdown; `503`.
    Unavailable,
    /// The WAL append failed — the chunk is NOT durable and was not
    /// acknowledged; `503` with the error text.
    WalFailed(String),
}

/// One accepted-but-unapplied chunk.
#[derive(Debug, Clone)]
struct Record {
    stream: IngestStream,
    seq: u64,
    payload: Vec<u8>,
}

/// What the worker should do next.
enum Step {
    Apply(Record),
    Flush(u64),
    Tick,
    Shutdown,
}

/// Mutable ingest state, all behind one mutex.
#[derive(Debug)]
struct State {
    queue: VecDeque<Record>,
    /// Per-stream count of acknowledged chunks (== next expected seq).
    accepted: [u64; 4],
    /// Per-stream count of chunks the worker has fed to the engine
    /// (status mirror; the worker's own copy is authoritative for
    /// checkpoints).
    applied: [u64; 4],
    wal: Option<std::fs::File>,
    wal_bytes: u64,
    flush_requested: u64,
    flush_completed: u64,
    shutdown: bool,
    worker_running: bool,
    publishes: u64,
    last_snapshot: u64,
    last_error: Option<String>,
}

/// The write path's health snapshot, as `/readyz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyStats {
    /// Accepted-but-unapplied chunks waiting for the worker.
    pub queue_depth: usize,
    /// Bytes of WAL not yet folded into a checkpoint.
    pub wal_bytes: u64,
    /// Whether the ingest worker thread is alive.
    pub worker_running: bool,
}

/// The shared ingest front end: admission control, durability, and the
/// status surface. Construct via [`recover`], which also replays any
/// surviving WAL into the engine it returns.
#[derive(Debug)]
pub struct IngestHandle {
    config: IngestConfig,
    state: Mutex<State>,
    /// Wakes the worker (new record, flush request, shutdown).
    work: Condvar,
    /// Wakes flush waiters and the final join.
    done: Condvar,
}

/// [`recover`]'s result: the handle plus the engine positioned at the
/// exact acknowledged prefix.
#[derive(Debug)]
pub struct Recovered {
    /// The admission front end, ready for [`spawn_worker`].
    pub handle: Arc<IngestHandle>,
    /// The streaming engine, restored from the checkpoint with surviving
    /// WAL records re-applied.
    pub engine: StreamingPipeline,
    /// Per-stream chunk counts already inside `engine` (what a resuming
    /// client sees as the accepted counts).
    pub accepted: [u64; 4],
    /// How many WAL records were re-applied beyond the checkpoint.
    pub replayed: u64,
}

impl IngestHandle {
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The ingest configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Offers one chunk for ingest. On [`Offer::Accepted`] the bytes are
    /// already durable in the WAL — the caller can acknowledge `200`.
    pub fn offer(&self, stream: IngestStream, seq: Option<u64>, payload: &[u8]) -> Offer {
        let i = stream.index();
        let mut state = self.lock();
        if state.shutdown {
            return Offer::Unavailable;
        }
        let expected = state.accepted[i];
        match seq {
            Some(s) if s < expected => {
                drop(state);
                if obs::is_enabled() {
                    obs::counter(
                        "servd_ingest_duplicates_total",
                        &[("stream", stream.name())],
                    )
                    .inc();
                }
                return Offer::Duplicate { accepted: expected };
            }
            Some(s) if s > expected => {
                drop(state);
                if obs::is_enabled() {
                    obs::counter("servd_ingest_rejected_total", &[("reason", "gap")]).inc();
                }
                return Offer::Gap { expected };
            }
            _ => {}
        }
        if let Err(retry_after_secs) = self.config.admission().admit(state.queue.len()) {
            drop(state);
            return Offer::Overloaded { retry_after_secs };
        }
        // Durability before acknowledgement: the record must be in the
        // WAL before accepted[] moves (and before the caller writes 200).
        let record = Record {
            stream,
            seq: expected,
            payload: payload.to_vec(),
        };
        let encoded = encode_record(&record);
        let result = match state.wal.as_mut() {
            Some(file) => file.write_all(&encoded).and_then(|()| file.flush()),
            None => Err(io::Error::other("write-ahead log is not open")),
        };
        if let Err(e) = result {
            // The WAL handle may have written a partial record; replay
            // tolerates a torn tail, but further appends could land after
            // the tear. Drop the handle so subsequent offers fail fast
            // instead of corrupting the log.
            state.wal = None;
            drop(state);
            if obs::is_enabled() {
                obs::counter("servd_ingest_rejected_total", &[("reason", "wal")]).inc();
            }
            return Offer::WalFailed(e.to_string());
        }
        state.accepted[i] = expected + 1;
        state.wal_bytes += encoded.len() as u64;
        state.queue.push_back(record);
        let depth = state.queue.len() as u64;
        let wal_bytes = state.wal_bytes;
        drop(state);
        self.work.notify_one();
        if obs::is_enabled() {
            obs::counter("servd_ingest_accepted_total", &[("stream", stream.name())]).inc();
            obs::counter("servd_ingest_accepted_bytes_total", &[]).add(payload.len() as u64);
            obs::gauge("servd_ingest_queue_depth", &[]).set(depth);
            obs::gauge("servd_ingest_wal_bytes", &[]).set(wal_bytes);
        }
        Offer::Accepted { seq: expected }
    }

    /// Blocks until the worker has applied everything accepted so far,
    /// published a snapshot, and checkpointed. `Err` carries a reason
    /// (`no worker`, a worker-side failure, or a timeout).
    ///
    /// # Errors
    ///
    /// A human-readable reason when the flush could not be confirmed.
    pub fn flush(&self) -> Result<FlushInfo, String> {
        let mut state = self.lock();
        if !state.worker_running {
            return Err("no ingest worker is running".to_owned());
        }
        state.flush_requested += 1;
        let ticket = state.flush_requested;
        self.work.notify_one();
        let deadline = Instant::now() + Duration::from_secs(60);
        while state.flush_completed < ticket {
            if !state.worker_running {
                return Err("ingest worker exited before the flush completed".to_owned());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err("flush timed out".to_owned());
            }
            let (guard, _) = match self.done.wait_timeout(state, deadline - now) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            state = guard;
        }
        if let Some(err) = &state.last_error {
            return Err(err.clone());
        }
        Ok(FlushInfo {
            snapshot: state.last_snapshot,
            applied: state.applied,
        })
    }

    /// The `/ingest/status` body: per-stream accepted/applied counts,
    /// queue occupancy, and publish bookkeeping.
    pub fn status_json(&self) -> String {
        let state = self.lock();
        let mut out = String::from("{\"streams\":{");
        for (n, stream) in IngestStream::ALL.into_iter().enumerate() {
            let i = stream.index();
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"accepted\":{},\"applied\":{}}}",
                stream.name(),
                state.accepted[i],
                state.applied[i]
            );
        }
        let _ = write!(
            out,
            "}},\"queue_depth\":{},\"queue_capacity\":{},\"publishes\":{},\"snapshot\":{},\"wal_bytes\":{},\"worker_running\":{}}}",
            state.queue.len(),
            self.config.queue_capacity,
            state.publishes,
            state.last_snapshot,
            state.wal_bytes,
            state.worker_running
        );
        out.push('\n');
        out
    }

    /// The write path's health snapshot for `/readyz`: queue depth, WAL
    /// backlog bytes, and whether the ingest worker is alive.
    pub fn ready_stats(&self) -> ReadyStats {
        let state = self.lock();
        ReadyStats {
            queue_depth: state.queue.len(),
            wal_bytes: state.wal_bytes,
            worker_running: state.worker_running,
        }
    }

    /// Per-stream accepted chunk counts (next expected `seq` values).
    pub fn accepted(&self) -> [u64; 4] {
        self.lock().accepted
    }

    /// Per-stream applied chunk counts.
    pub fn applied(&self) -> [u64; 4] {
        self.lock().applied
    }

    /// Worker side: wait for the next thing to do, waking at `deadline`
    /// for the time-based publish cadence.
    fn next_step(&self, deadline: Instant) -> Step {
        let mut state = self.lock();
        loop {
            if let Some(record) = state.queue.pop_front() {
                let depth = state.queue.len() as u64;
                drop(state);
                if obs::is_enabled() {
                    obs::gauge("servd_ingest_queue_depth", &[]).set(depth);
                }
                return Step::Apply(record);
            }
            if state.flush_requested > state.flush_completed {
                return Step::Flush(state.flush_requested);
            }
            if state.shutdown {
                return Step::Shutdown;
            }
            let now = Instant::now();
            if now >= deadline {
                return Step::Tick;
            }
            state = match self.work.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn note_applied(&self, stream: IngestStream) {
        let mut state = self.lock();
        state.applied[stream.index()] += 1;
        drop(state);
        if obs::is_enabled() {
            obs::counter("servd_ingest_applied_total", &[("stream", stream.name())]).inc();
        }
    }

    fn note_published(&self, snapshot: u64, error: Option<String>) {
        let mut state = self.lock();
        state.publishes += 1;
        state.last_snapshot = snapshot;
        state.last_error = error;
    }

    fn complete_flush(&self, ticket: u64) {
        let mut state = self.lock();
        state.flush_completed = ticket;
        drop(state);
        self.done.notify_all();
    }

    /// Rewrites the WAL to exactly the not-yet-applied records (the queue
    /// contents), via temp-file + atomic rename. Called by the worker
    /// right after a checkpoint lands; holding the state lock briefly
    /// blocks concurrent offers, which keeps "checkpoint + WAL = all
    /// acknowledged chunks" exact.
    fn compact_wal(&self) -> io::Result<()> {
        let path = self.config.dir.join(WAL_FILE);
        let mut state = self.lock();
        let mut bytes = Vec::new();
        for record in &state.queue {
            bytes.extend_from_slice(&encode_record(record));
        }
        write_atomic(&path, &bytes)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        state.wal = Some(file);
        state.wal_bytes = bytes.len() as u64;
        drop(state);
        if obs::is_enabled() {
            obs::gauge("servd_ingest_wal_bytes", &[]).set(bytes.len() as u64);
        }
        Ok(())
    }

    /// Begins shutdown: no further offers are admitted; the worker drains
    /// the queue, publishes, checkpoints, and exits.
    fn request_shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }
}

/// What a completed flush observed.
#[derive(Debug, Clone, Copy)]
pub struct FlushInfo {
    /// The snapshot id the flush published.
    pub snapshot: u64,
    /// Per-stream applied counts after the flush.
    pub applied: [u64; 4],
}

/// Opens (creating if needed) the ingest directory, loads the newest
/// checkpoint, replays the surviving WAL tail, and returns the engine
/// positioned at exactly the acknowledged prefix plus the ready handle.
///
/// `pipeline` and `year` configure a *fresh* engine; both are ignored
/// when a checkpoint exists (its embedded config wins, so a restart
/// cannot silently change analysis parameters mid-stream).
///
/// # Errors
///
/// [`IngestError::Io`] on directory/WAL trouble, [`IngestError::Checkpoint`]
/// when an existing checkpoint is structurally invalid.
pub fn recover(
    config: IngestConfig,
    pipeline: Pipeline,
    year: i32,
) -> Result<Recovered, IngestError> {
    std::fs::create_dir_all(&config.dir).map_err(|source| IngestError::Io {
        what: "creating ingest directory",
        path: config.dir.clone(),
        source,
    })?;
    let ckpt_path = config.dir.join(CKPT_FILE);
    let wal_path = config.dir.join(WAL_FILE);

    // 1. Engine: from the checkpoint envelope when present, fresh
    //    otherwise. Leftover `.tmp` siblings are pre-rename debris from a
    //    crash; the rename never happened, so they are dead bytes.
    let mut applied = [0u64; 4];
    let mut engine = match std::fs::read(&ckpt_path) {
        Ok(bytes) => {
            let (engine_ckpt, counts) = decode_envelope(&bytes)?;
            applied = counts;
            StreamingPipeline::restore(&engine_ckpt)?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => StreamingPipeline::new(pipeline, year),
        Err(source) => {
            return Err(IngestError::Io {
                what: "reading ingest checkpoint",
                path: ckpt_path,
                source,
            })
        }
    };

    // 2. WAL replay: apply every intact record at/beyond the applied
    //    counts, in file order; stop at the first torn or out-of-order
    //    record (only an unacknowledged tail can be torn).
    let mut accepted = applied;
    let mut replayed = 0u64;
    let wal_bytes = match std::fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(source) => {
            return Err(IngestError::Io {
                what: "reading write-ahead log",
                path: wal_path,
                source,
            })
        }
    };
    let mut consistent_len = 0usize;
    let mut cursor = &wal_bytes[..];
    while let Some((record, rest)) = decode_record(cursor) {
        let i = record.stream.index();
        if record.seq < applied[i] {
            // Already inside the checkpointed engine state; a later
            // compaction will drop it.
        } else if record.seq == accepted[i] {
            apply_record(&mut engine, &record);
            accepted[i] += 1;
            applied[i] += 1;
            replayed += 1;
        } else {
            // A gap can only mean the log was tampered with or the tail
            // of a previous generation survived a partial compaction;
            // everything from here on is untrusted.
            break;
        }
        consistent_len = wal_bytes.len() - rest.len();
        cursor = rest;
    }
    // Drop the torn/untrusted tail so future appends extend a clean log.
    if consistent_len < wal_bytes.len() {
        write_atomic(&wal_path, &wal_bytes[..consistent_len]).map_err(|source| {
            IngestError::Io {
                what: "truncating torn write-ahead log tail",
                path: wal_path.clone(),
                source,
            }
        })?;
    } else if !wal_path.exists() {
        write_atomic(&wal_path, &[]).map_err(|source| IngestError::Io {
            what: "creating write-ahead log",
            path: wal_path.clone(),
            source,
        })?;
    }
    let wal = OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .map_err(|source| IngestError::Io {
            what: "opening write-ahead log",
            path: wal_path,
            source,
        })?;

    let handle = Arc::new(IngestHandle {
        config,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            accepted,
            applied,
            wal: Some(wal),
            wal_bytes: consistent_len as u64,
            flush_requested: 0,
            flush_completed: 0,
            shutdown: false,
            worker_running: false,
            publishes: 0,
            last_snapshot: 0,
            last_error: None,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    });
    Ok(Recovered {
        handle,
        engine,
        accepted,
        replayed,
    })
}

/// The running ingest worker; [`stop`](IngestWorker::stop) drains,
/// publishes, checkpoints, and joins.
#[derive(Debug)]
pub struct IngestWorker {
    handle: Arc<IngestHandle>,
    join: Option<JoinHandle<()>>,
}

impl IngestWorker {
    /// Graceful stop: refuse new offers, drain the queue, publish and
    /// checkpoint a final time, join the thread. Idempotent via `Drop`.
    pub fn stop(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.handle.request_shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for IngestWorker {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Starts the single ingest worker: pops accepted chunks, feeds the
/// engine, and publishes + checkpoints on the cadence policy (every
/// `publish_every_events` input lines or `publish_every` elapsed,
/// whichever comes first — plus always on flush and shutdown).
pub fn spawn_worker(
    engine: StreamingPipeline,
    handle: Arc<IngestHandle>,
    store: Arc<StoreHandle>,
) -> IngestWorker {
    handle.lock().worker_running = true;
    let thread_handle = Arc::clone(&handle);
    let join = std::thread::spawn(move || {
        worker_loop(engine, &thread_handle, &store);
        let mut state = thread_handle.lock();
        state.worker_running = false;
        drop(state);
        thread_handle.done.notify_all();
    });
    IngestWorker {
        handle,
        join: Some(join),
    }
}

fn worker_loop(mut engine: StreamingPipeline, handle: &IngestHandle, store: &StoreHandle) {
    // The worker's own applied counts are what checkpoints record: they
    // are exactly in step with `engine`, which the shared mirror (updated
    // after the fact, for status) is not guaranteed to be at the instant
    // `engine.checkpoint()` runs.
    let mut applied = handle.lock().applied;
    let cadence = handle.config.publish_every;
    let every_events = handle.config.publish_every_events.max(1);
    let mut last_publish = Instant::now();
    let mut published_lines = engine.ingested_lines();
    let mut dirty = false;

    loop {
        match handle.next_step(last_publish + cadence) {
            Step::Apply(record) => {
                apply_record(&mut engine, &record);
                applied[record.stream.index()] += 1;
                handle.note_applied(record.stream);
                dirty = true;
                if engine.ingested_lines().saturating_sub(published_lines) >= every_events {
                    publish(&engine, handle, store, &applied);
                    last_publish = Instant::now();
                    published_lines = engine.ingested_lines();
                    dirty = false;
                }
            }
            Step::Flush(ticket) => {
                // The queue is already drained (records outrank flushes
                // in next_step); publish unconditionally so a flush is a
                // reliable barrier even with nothing new.
                publish(&engine, handle, store, &applied);
                last_publish = Instant::now();
                published_lines = engine.ingested_lines();
                dirty = false;
                handle.complete_flush(ticket);
            }
            Step::Tick => {
                if dirty {
                    publish(&engine, handle, store, &applied);
                    last_publish = Instant::now();
                    published_lines = engine.ingested_lines();
                    dirty = false;
                } else {
                    last_publish = Instant::now();
                }
            }
            Step::Shutdown => {
                if dirty {
                    publish(&engine, handle, store, &applied);
                }
                return;
            }
        }
    }
}

fn apply_record(engine: &mut StreamingPipeline, record: &Record) {
    match record.stream {
        IngestStream::Logs => engine.push_log(&record.payload),
        IngestStream::GpuJobs => {
            engine.push_gpu_jobs_csv(&String::from_utf8_lossy(&record.payload));
        }
        IngestStream::CpuJobs => {
            engine.push_cpu_jobs_csv(&String::from_utf8_lossy(&record.payload));
        }
        IngestStream::Outages => {
            engine.push_outages_csv(&String::from_utf8_lossy(&record.payload));
        }
    }
}

/// Materializes, publishes, checkpoints, compacts — the whole durable
/// publish step. Failures to persist are recorded (status + metrics) but
/// never crash the worker: the WAL still holds everything unapplied and
/// the previous checkpoint still holds everything older, so the
/// durability invariant survives a full disk.
fn publish(
    engine: &StreamingPipeline,
    handle: &IngestHandle,
    store: &StoreHandle,
    applied: &[u64; 4],
) {
    let mut span = obs::span("servd_ingest_publish");
    let (report, quarantine) = engine.materialize_full();
    span.add_items(report.errors.len() as u64);
    let snapshot = store.publish(StudyStore::build(report, Some(&quarantine)));

    let envelope = encode_envelope(&engine.checkpoint(), applied);
    let ckpt_path = handle.config.dir.join(CKPT_FILE);
    let persisted = write_atomic(&ckpt_path, envelope.as_bytes())
        .map_err(|e| format!("writing ingest checkpoint {}: {e}", ckpt_path.display()))
        .and_then(|()| {
            handle
                .compact_wal()
                .map_err(|e| format!("compacting write-ahead log: {e}"))
        });
    let error = persisted.err();
    if obs::is_enabled() {
        obs::counter("servd_ingest_publishes_total", &[]).inc();
        if error.is_some() {
            obs::counter("servd_ingest_persist_errors_total", &[]).inc();
        }
    }
    if let Some(e) = &error {
        eprintln!("ingest: {e}");
    }
    handle.note_published(snapshot, error);
}

// ---- wire formats ---------------------------------------------------

/// FNV-1a 64-bit, the WAL record checksum (detects torn/garbled tails;
/// not cryptographic).
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn encode_record(record: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + record.payload.len());
    out.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
    let checksum = fnv1a(&[
        &[record.stream.tag()],
        &record.seq.to_le_bytes(),
        &record.payload,
    ]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.push(record.stream.tag());
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.extend_from_slice(&record.payload);
    out
}

/// Decodes the record at the head of `bytes`; `None` on a torn, short,
/// or corrupt head (replay stops there).
fn decode_record(bytes: &[u8]) -> Option<(Record, &[u8])> {
    if bytes.len() < RECORD_HEADER {
        return None;
    }
    let payload_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let total = RECORD_HEADER.checked_add(payload_len)?;
    if bytes.len() < total {
        return None;
    }
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(&bytes[4..12]);
    let checksum = u64::from_le_bytes(checksum);
    let tag = bytes[12];
    let mut seq = [0u8; 8];
    seq.copy_from_slice(&bytes[13..21]);
    let seq = u64::from_le_bytes(seq);
    let payload = &bytes[RECORD_HEADER..total];
    if fnv1a(&[&[tag], &seq.to_le_bytes(), payload]) != checksum {
        return None;
    }
    let stream = IngestStream::from_tag(tag)?;
    Some((
        Record {
            stream,
            seq,
            payload: payload.to_vec(),
        },
        &bytes[total..],
    ))
}

/// Wraps an engine checkpoint plus the per-stream applied counts in the
/// shared container format.
fn encode_envelope(engine: &Checkpoint, applied: &[u64; 4]) -> Checkpoint {
    let mut enc = Encoder::new();
    enc.str(ENVELOPE_TAG);
    enc.bytes(engine.as_bytes());
    for n in applied {
        enc.u64(*n);
    }
    enc.finish()
}

fn decode_envelope(bytes: &[u8]) -> Result<(Checkpoint, [u64; 4]), CheckpointError> {
    let mut dec = Decoder::new(bytes);
    dec.header()?;
    let tag = dec.str("ingest envelope tag")?;
    if tag != ENVELOPE_TAG {
        return Err(CheckpointError::Invalid {
            what: "ingest envelope tag",
        });
    }
    let engine_bytes = dec.bytes("embedded engine checkpoint")?;
    let mut applied = [0u64; 4];
    for slot in &mut applied {
        *slot = dec.u64()?;
    }
    dec.finish()?;
    let engine = Checkpoint::from_bytes(engine_bytes)?;
    Ok((engine, applied))
}

/// The WAL path under an ingest directory (exposed for tests/tools that
/// want to inspect or truncate it).
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// The checkpoint path under an ingest directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CKPT_FILE)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "servd-ingest-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config(dir: &Path) -> IngestConfig {
        IngestConfig {
            queue_capacity: 4,
            publish_every_events: 1_000_000,
            publish_every: Duration::from_secs(3600),
            ..IngestConfig::new(dir)
        }
    }

    #[test]
    fn record_roundtrip_and_torn_tail() {
        let a = Record {
            stream: IngestStream::Logs,
            seq: 0,
            payload: b"May 10 03:22:07 gpub001 kernel: x\n".to_vec(),
        };
        let b = Record {
            stream: IngestStream::GpuJobs,
            seq: 3,
            payload: b"id,name\n".to_vec(),
        };
        let mut wal = encode_record(&a);
        wal.extend_from_slice(&encode_record(&b));
        let (ra, rest) = decode_record(&wal).unwrap();
        assert_eq!(ra.payload, a.payload);
        assert_eq!(ra.seq, 0);
        let (rb, rest) = decode_record(rest).unwrap();
        assert_eq!(rb.stream, IngestStream::GpuJobs);
        assert_eq!(rb.seq, 3);
        assert!(rest.is_empty());

        // Truncate anywhere inside the second record: first still decodes,
        // torn tail yields None.
        let cut = encode_record(&a).len() + 5;
        let (ra2, rest2) = decode_record(&wal[..cut]).unwrap();
        assert_eq!(ra2.payload, a.payload);
        assert!(decode_record(rest2).is_none());

        // Flip a payload byte: checksum catches it.
        let mut flipped = encode_record(&a);
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(decode_record(&flipped).is_none());
    }

    #[test]
    fn envelope_roundtrip_rejects_bad_tag() {
        let engine = StreamingPipeline::new(Pipeline::delta(), 2023);
        let env = encode_envelope(&engine.checkpoint(), &[1, 2, 3, 4]);
        let (ckpt, applied) = decode_envelope(env.as_bytes()).unwrap();
        assert_eq!(applied, [1, 2, 3, 4]);
        assert!(StreamingPipeline::restore(&ckpt).is_ok());

        // A bare engine checkpoint is not an envelope.
        assert!(decode_envelope(engine.checkpoint().as_bytes()).is_err());
    }

    #[test]
    fn offer_seq_protocol_dedups_and_rejects_gaps() {
        let dir = temp_dir("seq");
        let rec = recover(small_config(&dir), Pipeline::delta(), 2023).unwrap();
        let h = rec.handle;
        assert_eq!(
            h.offer(IngestStream::Logs, Some(0), b"a\n"),
            Offer::Accepted { seq: 0 }
        );
        assert_eq!(
            h.offer(IngestStream::Logs, Some(0), b"a\n"),
            Offer::Duplicate { accepted: 1 }
        );
        assert_eq!(
            h.offer(IngestStream::Logs, Some(5), b"f\n"),
            Offer::Gap { expected: 1 }
        );
        // Streams number independently.
        assert_eq!(
            h.offer(IngestStream::GpuJobs, Some(0), b"hdr\n"),
            Offer::Accepted { seq: 0 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_sheds_with_retry_after() {
        let dir = temp_dir("full");
        let rec = recover(small_config(&dir), Pipeline::delta(), 2023).unwrap();
        let h = rec.handle;
        for _ in 0..4 {
            assert!(matches!(
                h.offer(IngestStream::Logs, None, b"x\n"),
                Offer::Accepted { .. }
            ));
        }
        assert_eq!(
            h.offer(IngestStream::Logs, None, b"x\n"),
            Offer::Overloaded {
                retry_after_secs: 1
            }
        );
        // Shed offers are not acknowledged and must not advance seq.
        assert_eq!(h.accepted()[0], 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_acknowledged_wal_records() {
        let dir = temp_dir("replay");
        let line = b"May 10 03:22:07 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, pid=1, GPU has fallen off the bus\n";
        {
            let rec = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
            assert!(matches!(
                rec.handle.offer(IngestStream::Logs, Some(0), line),
                Offer::Accepted { .. }
            ));
            // No worker ran: nothing applied, nothing checkpointed. The
            // handle is simply dropped — a crash.
        }
        let rec = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
        assert_eq!(rec.accepted[0], 1, "acknowledged chunk recovered");
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.engine.scan_stats().lines_seen, 1);
        // The replayed record still counts as accepted for the dedup
        // protocol: a client re-POST of seq 0 is a duplicate.
        assert_eq!(
            rec.handle.offer(IngestStream::Logs, Some(0), line),
            Offer::Duplicate { accepted: 1 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_tolerates_torn_wal_tail() {
        let dir = temp_dir("torn");
        {
            let rec = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
            for i in 0..3 {
                assert!(matches!(
                    rec.handle
                        .offer(IngestStream::Logs, Some(i), b"May 10 03:22:07 h k: x\n"),
                    Offer::Accepted { .. }
                ));
            }
        }
        // Tear the last record mid-payload, as a crash mid-append would.
        let wal = wal_path(&dir);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

        let rec = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
        assert_eq!(rec.accepted[0], 2, "intact prefix recovered");
        // The torn tail was truncated away; the next accept extends a
        // clean log at seq 2.
        assert!(matches!(
            rec.handle
                .offer(IngestStream::Logs, Some(2), b"May 10 03:22:08 h k: y\n"),
            Offer::Accepted { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_applies_publishes_and_checkpoints_on_flush() {
        let dir = temp_dir("worker");
        let rec = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
        let store = Arc::new(StoreHandle::new(StudyStore::build(
            rec.engine.materialize(),
            None,
        )));
        let worker = spawn_worker(rec.engine, Arc::clone(&rec.handle), Arc::clone(&store));
        let line = b"May 10 03:22:07 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, pid=1, GPU has fallen off the bus\n";
        assert!(matches!(
            rec.handle.offer(IngestStream::Logs, Some(0), line),
            Offer::Accepted { .. }
        ));
        let info = rec.handle.flush().unwrap();
        assert_eq!(info.applied[0], 1);
        assert!(info.snapshot >= 2, "a new snapshot was published");
        assert!(store.current().store.table1().contains("79"));
        // The checkpoint landed and the WAL compacted to empty.
        assert!(checkpoint_path(&dir).exists());
        assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), 0);
        worker.stop();

        // A restart finds everything inside the checkpoint.
        let rec2 = recover(small_config(&dir), Pipeline::delta(), 2022).unwrap();
        assert_eq!(rec2.accepted[0], 1);
        assert_eq!(rec2.replayed, 0, "nothing left to replay");
        assert_eq!(rec2.engine.scan_stats().lines_seen, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
