//! The listener: a bounded worker pool over `std::net::TcpListener`.
//!
//! One accept thread feeds a bounded connection queue; a fixed pool of
//! worker threads drains it, each running a keep-alive request loop
//! against the shared [`StoreHandle`] and [`ResponseCache`]. Every
//! resource is capped — queue depth, worker count, request-head bytes,
//! per-socket read/write time — so no client behavior can grow server
//! state without bound. When the queue is full the accept thread answers
//! `503` and closes, which is the whole load-shedding story: better an
//! honest rejection in one round-trip than an unbounded backlog.
//!
//! Shutdown (from [`RunningServer::shutdown`] or a process signal
//! observed by the bin) drains in order: stop accepting, let workers
//! finish queued connections, join everything. The accept thread is
//! unblocked by a self-connection, a trick that keeps the loop a plain
//! blocking `accept()` with no platform poll machinery.

use crate::cache::ResponseCache;
use crate::http::{read_request, write_response, ReadOutcome, RequestLimits, Response};
use crate::ingest::IngestHandle;
use crate::router;
use crate::store::StoreHandle;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Listener tunables. The defaults suit a local query server; tests
/// shrink them to exercise the rejection and timeout paths.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Connection queue depth; an accept beyond it is answered `503`.
    pub max_queue: usize,
    /// Request-head byte cap; beyond it the request is answered `413`.
    pub max_request_bytes: usize,
    /// `POST` body byte cap; a larger declared `Content-Length` is
    /// answered `413` without reading the body.
    pub max_body_bytes: usize,
    /// Per-socket read timeout (a stalled sender gets `408`, then close).
    /// Also the total wall-clock budget for reading one request body, so
    /// a body dripped one byte per timeout still ends in `408`.
    pub read_timeout: Duration,
    /// Per-socket write timeout (a stalled reader gets dropped).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            max_queue: 64,
            max_request_bytes: 8 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "failed to bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
        }
    }
}

/// The bounded handoff between the accept thread and the workers.
#[derive(Debug)]
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueues a connection, or returns it when the queue is full or
    /// closed (the caller sheds it with a `503`).
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next connection; `None` once closed *and* drained —
    /// queued clients are served even after shutdown begins.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// A started server: the bound address plus the thread handles needed to
/// drain it.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The actual bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, serve what is already queued,
    /// join every thread. Idempotent via `Drop` (a second call finds the
    /// handles already taken).
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call; the loop re-checks the flag before
        // touching the connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Binds and starts serving `store` under `config`, read-only
/// (`/ingest/*` answers `404`).
///
/// # Errors
///
/// [`ServeError::Bind`] when the listen address cannot be bound.
pub fn start(config: ServerConfig, store: Arc<StoreHandle>) -> Result<RunningServer, ServeError> {
    start_with_ingest(config, store, None)
}

/// Binds and starts serving `store` under `config`, with the live ingest
/// write path attached when `ingest` is given (the handle should already
/// have a worker via [`crate::ingest::spawn_worker`]).
///
/// # Errors
///
/// [`ServeError::Bind`] when the listen address cannot be bound.
pub fn start_with_ingest(
    config: ServerConfig,
    store: Arc<StoreHandle>,
    ingest: Option<Arc<IngestHandle>>,
) -> Result<RunningServer, ServeError> {
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    let addr = listener.local_addr().map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;

    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.max_queue));
    let cache = Arc::new(ResponseCache::new());

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for _ in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let store = Arc::clone(&store);
        let cache = Arc::clone(&cache);
        let ingest = ingest.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            while let Some(conn) = queue.pop() {
                serve_connection(conn, &config, &store, &cache, ingest.as_deref());
            }
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) || crate::signal::shutdown_requested() {
                    break;
                }
                let Ok(conn) = conn else { continue };
                if let Err(rejected) = queue.push(conn) {
                    shed(rejected);
                }
            }
        })
    };

    Ok(RunningServer {
        addr,
        stop,
        queue,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Answers a connection the queue could not take with a one-shot `503`.
fn shed(mut conn: TcpStream) {
    if obs::is_enabled() {
        obs::counter("servd_connections_rejected_total", &[]).inc();
    }
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = conn.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 9\r\nConnection: close\r\n\r\noverload\n",
    );
}

/// The per-connection keep-alive loop.
fn serve_connection(
    mut conn: TcpStream,
    config: &ServerConfig,
    store: &StoreHandle,
    cache: &ResponseCache,
    ingest: Option<&IngestHandle>,
) {
    if obs::is_enabled() {
        obs::counter("servd_connections_total", &[]).inc();
    }
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    let _ = conn.set_nodelay(true);

    let limits = RequestLimits {
        max_head_bytes: config.max_request_bytes,
        max_body_bytes: config.max_body_bytes,
        body_timeout: Some(config.read_timeout),
    };
    loop {
        let outcome = read_request(&mut conn, &limits);
        let (response, keep_alive, head_only) = match &outcome {
            ReadOutcome::Request(req) => {
                let head_only = req.method == "HEAD";
                let response = router::handle(req, store, cache, ingest);
                (response, req.keep_alive, head_only)
            }
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => (Response::text(413, "request too large\n"), false, false),
            ReadOutcome::BodyTooLarge => (
                Response::text(413, "request body too large\n"),
                false,
                false,
            ),
            ReadOutcome::LengthRequired => (
                Response::text(411, "POST requires a Content-Length\n"),
                false,
                false,
            ),
            ReadOutcome::TimedOut => (Response::text(408, "request timed out\n"), false, false),
            ReadOutcome::Malformed(why) => (Response::text(400, format!("{why}\n")), false, false),
        };
        let wrote = write_response(&mut conn, &response, keep_alive, head_only);
        if !matches!(outcome, ReadOutcome::Request(_)) {
            // Error path: the peer may still have unread request bytes in
            // flight; closing now would RST and can clip the response we
            // just wrote. Discard a bounded amount first so the close is
            // a clean FIN.
            drain_input(&mut conn);
        }
        if wrote.is_err() || !keep_alive {
            return;
        }
    }
}

/// Best-effort discard of pending request bytes before an error close,
/// bounded in both bytes and time.
fn drain_input(conn: &mut TcpStream) {
    use std::io::Read;
    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
    let mut discarded = 0usize;
    let mut buf = [0u8; 4096];
    while discarded < 64 * 1024 {
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => discarded += n,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::StudyStore;
    use resilience::Pipeline;
    use std::io::Read;
    use std::net::Shutdown;

    fn handle() -> Arc<StoreHandle> {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        Arc::new(StoreHandle::new(StudyStore::build(report, None)))
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        }
    }

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    /// Reads exactly one response (headers + `Content-Length` body) off a
    /// keep-alive connection; a single `read` may return a partial write.
    fn read_one_response(conn: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            assert_eq!(conn.read(&mut byte).unwrap(), 1, "EOF mid-headers");
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf.clone()).unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        conn.read_exact(&mut body).unwrap();
        buf.extend_from_slice(&body);
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn serves_healthz_end_to_end() {
        let server = start(test_config(), handle()).unwrap();
        let resp = get(server.addr(), "/healthz");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("ok\n"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for _ in 0..3 {
            write!(conn, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let text = read_one_response(&mut conn);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("Connection: keep-alive"));
        }
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_gets_413() {
        let config = ServerConfig {
            max_request_bytes: 128,
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        let resp = get(server.addr(), &format!("/{}", "x".repeat(500)));
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn stalled_sender_gets_408_not_a_stuck_worker() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Half a request, then silence longer than the read timeout.
        write!(conn, "GET /healthz HT").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
    }

    #[test]
    fn queue_overflow_is_shed_with_503() {
        // One worker wedged on a held-open connection, queue depth 1:
        // the third concurrent connection must be rejected, not queued.
        let config = ServerConfig {
            workers: 1,
            max_queue: 1,
            read_timeout: Duration::from_secs(2),
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        let wedge = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(150)); // worker pops it, blocks
        let queued = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(150)); // sits in the queue
        let mut shed_conn = TcpStream::connect(server.addr()).unwrap();
        shed_conn
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        shed_conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        drop(wedge);
        drop(queued);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_joins_and_refuses_new_connections() {
        let server = start(test_config(), handle()).unwrap();
        let addr = server.addr();
        assert!(get(addr, "/healthz").contains("200 OK"));
        server.shutdown();
        // The listener is gone: either the connect fails outright or the
        // accepted-then-dropped socket yields no bytes.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                let _ = write!(conn, "GET /healthz HTTP/1.1\r\n\r\n");
                let _ = conn.shutdown(Shutdown::Write);
                let mut out = Vec::new();
                let _ = conn.read_to_end(&mut out);
                assert!(out.is_empty(), "served after shutdown");
            }
        }
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "BLETCH\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("Connection: close"));
        server.shutdown();
    }

    #[test]
    fn queue_basics() {
        let q = ConnQueue::new(1);
        q.close();
        assert!(q.pop().is_none(), "closed empty queue pops None");
    }
}
