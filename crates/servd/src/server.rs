//! The listener: a non-blocking epoll event loop core.
//!
//! `workers` event-loop threads each own an epoll instance
//! ([`crate::epoll::Poller`]), a clone of the shared non-blocking
//! listener (level-triggered shared accept — no dedicated acceptor
//! thread), a [`crate::wheel::TimerWheel`] of connection deadlines, and
//! the connections accepted on that loop. Each connection is a small
//! state machine: socket reads feed the incremental
//! [`crate::http::Parser`], completed requests are dispatched inline to
//! [`router::handle`] (handlers are pre-rendered or index-backed; large
//! scans scatter across the store's own scan pool), and responses drain
//! through a buffered non-blocking write with `EPOLLOUT` armed only
//! while bytes are pending.
//!
//! Every resource stays capped, exactly as in the thread-pool
//! predecessor: concurrent connections (`workers + max_queue`; one past
//! the cap is answered `503` in one round-trip), request-head bytes
//! (`413`), declared body bytes (`413` before the body is read), time to
//! deliver a request (`408` via the timer wheel — covers both a stalled
//! head and a slowloris body drip), time to drain a response (stalled
//! readers are dropped), and idle keep-alive lifetime (closed silently).
//! After an error response the connection lingers briefly discarding
//! request bytes (bounded in bytes and time) so the close is a clean FIN
//! and never an RST that clips the response.
//!
//! Shutdown ([`RunningServer::shutdown`], `Drop`, or a process signal)
//! drains: deregister the listener, close idle connections immediately,
//! let in-flight requests finish with `Connection: close`, and join the
//! loops under a bounded grace period.

use crate::cache::ResponseCache;
use crate::epoll::{Event, Interest, Poller, Waker};
use crate::http::{
    write_response, ParseProgress, Parser, ReadOutcome, Request, RequestLimits, Response,
};
use crate::ingest::IngestHandle;
use crate::router::{self, ObsState};
use crate::store::StoreHandle;
use crate::whatif::{WhatifConfig, WhatifHandle};
use crate::wheel::TimerWheel;
use obs::{FlightRecorder, Trace, Tsdb};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Listener tunables. The defaults suit a local query server; tests
/// shrink them to exercise the rejection and timeout paths.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` for an ephemeral port).
    pub addr: String,
    /// Event-loop threads sharing the listener.
    pub workers: usize,
    /// Connection headroom beyond one-per-worker: the concurrent
    /// connection cap is `workers + max_queue`, and a connection beyond
    /// it is answered `503` (the name survives from the thread-pool
    /// core, where this was the accept-queue depth).
    pub max_queue: usize,
    /// Request-head byte cap; beyond it the request is answered `413`.
    pub max_request_bytes: usize,
    /// `POST` body byte cap; a larger declared `Content-Length` is
    /// answered `413` without reading the body.
    pub max_body_bytes: usize,
    /// Time budget for receiving a request (a stalled or dripping
    /// sender gets `408`, then close) and for an idle keep-alive
    /// connection (closed silently).
    pub read_timeout: Duration,
    /// Time budget for draining a response (a stalled reader gets
    /// dropped).
    pub write_timeout: Duration,
    /// Flight-recorder capacity: how many slowest traces each rolling
    /// window retains. `0` (the default) disables request tracing —
    /// no trace ids are minted, responses carry no `X-Trace-Id`, and
    /// `/debug/traces` answers `404`.
    pub trace_capacity: usize,
    /// Self-scrape cadence for `/metrics/history`, in seconds. `0`
    /// (the default) disables the scraper thread and the endpoint.
    pub scrape_secs: u64,
    /// Emit one Common Log Format line per dispatched request to
    /// stderr.
    pub access_log: bool,
    /// The `/whatif` counterfactual-campaign service: worker count,
    /// queue depth, rep cap. `workers == 0` disables the service
    /// (`/whatif` then answers `404`).
    pub whatif: WhatifConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            max_queue: 64,
            max_request_bytes: 8 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            trace_capacity: 0,
            scrape_secs: 0,
            access_log: false,
            whatif: WhatifConfig::default(),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Creating the event-loop machinery (epoll instance, wakeup
    /// eventfd, listener clone) failed.
    EventLoop {
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "failed to bind {addr}: {source}")
            }
            ServeError::EventLoop { source } => {
                write!(f, "failed to start event loop: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::EventLoop { source } => Some(source),
        }
    }
}

/// A started server: the bound address plus the handles needed to drain
/// its event loops.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    loops: Vec<JoinHandle<()>>,
    scraper: Option<JoinHandle<()>>,
    whatif: Option<Arc<WhatifHandle>>,
    whatif_workers: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The actual bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests
    /// under a bounded grace period, join every loop. Idempotent via
    /// `Drop` (a second call finds the handles already taken).
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.scraper.take() {
            let _ = handle.join();
        }
        // After the loops: an in-flight synchronous /whatif request
        // blocks its loop thread on the campaign, so the workers must
        // outlive the loops.
        if let Some(whatif) = self.whatif.take() {
            whatif.request_shutdown();
        }
        for handle in self.whatif_workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Binds and starts serving `store` under `config`, read-only
/// (`/ingest/*` answers `404`).
///
/// # Errors
///
/// [`ServeError::Bind`] when the listen address cannot be bound;
/// [`ServeError::EventLoop`] when the epoll machinery cannot start.
pub fn start(config: ServerConfig, store: Arc<StoreHandle>) -> Result<RunningServer, ServeError> {
    start_with_ingest(config, store, None)
}

/// Binds and starts serving `store` under `config`, with the live ingest
/// write path attached when `ingest` is given (the handle should already
/// have a worker via [`crate::ingest::spawn_worker`]).
///
/// # Errors
///
/// [`ServeError::Bind`] when the listen address cannot be bound;
/// [`ServeError::EventLoop`] when the epoll machinery cannot start.
pub fn start_with_ingest(
    config: ServerConfig,
    store: Arc<StoreHandle>,
    ingest: Option<Arc<IngestHandle>>,
) -> Result<RunningServer, ServeError> {
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    let addr = listener.local_addr().map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|source| ServeError::EventLoop { source })?;

    let stop = Arc::new(AtomicBool::new(false));
    let conns_open = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResponseCache::new());
    let capacity = config.workers.max(1) + config.max_queue.max(1);

    let whatif = (config.whatif.workers > 0).then(|| WhatifHandle::new(config.whatif.clone()));
    let whatif_workers = whatif
        .as_ref()
        .map(WhatifHandle::spawn_workers)
        .unwrap_or_default();

    let obs_state = Arc::new(ObsState {
        recorder: (config.trace_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(config.trace_capacity))),
        tsdb: (config.scrape_secs > 0)
            .then(|| Arc::new(Tsdb::new(Tsdb::DEFAULT_POINTS_PER_SERIES))),
    });
    let scraper = obs_state.tsdb.as_ref().map(|tsdb| {
        let tsdb = Arc::clone(tsdb);
        let stop = Arc::clone(&stop);
        let cadence = Duration::from_secs(config.scrape_secs);
        std::thread::spawn(move || scrape_loop(&tsdb, &stop, cadence))
    });

    let nloops = config.workers.max(1);
    let mut wakers = Vec::with_capacity(nloops);
    let mut loops = Vec::with_capacity(nloops);
    for _ in 0..nloops {
        // Every loop gets its own clone of the shared listening socket;
        // the original drops when this function returns, and the socket
        // closes when the last loop exits.
        let listener = listener
            .try_clone()
            .map_err(|source| ServeError::EventLoop { source })?;
        let poller = Poller::new().map_err(|source| ServeError::EventLoop { source })?;
        let waker = Arc::new(Waker::new().map_err(|source| ServeError::EventLoop { source })?);
        wakers.push(Arc::clone(&waker));
        let event_loop = EventLoop::new(
            poller,
            listener,
            waker,
            config.clone(),
            Arc::clone(&store),
            Arc::clone(&cache),
            ingest.clone(),
            whatif.clone(),
            Arc::clone(&stop),
            Arc::clone(&conns_open),
            capacity,
            Arc::clone(&obs_state),
        );
        loops.push(std::thread::spawn(move || event_loop.run()));
    }

    Ok(RunningServer {
        addr,
        stop,
        wakers,
        loops,
        scraper,
        whatif,
        whatif_workers,
    })
}

/// The self-scrape driver: absorbs a registry snapshot into the
/// time-series rings every `cadence`, stamped with real unix seconds
/// (the tsdb ignores a scrape whose clock has not advanced, so a
/// sub-second cadence degrades gracefully to one point per second).
/// Polls the stop flag at 50 ms so shutdown never waits on a sleep.
fn scrape_loop(tsdb: &Tsdb, stop: &AtomicBool, cadence: Duration) {
    scrape_once(tsdb);
    let mut last = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() >= cadence {
            last = Instant::now();
            scrape_once(tsdb);
        }
    }
}

fn scrape_once(tsdb: &Tsdb) {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if tsdb.scrape(t, &obs::global().registry().snapshot()) && obs::is_enabled() {
        let stats = tsdb.stats();
        obs::gauge("obs_tsdb_series", &[]).set(stats.series as u64);
        obs::gauge("obs_tsdb_points", &[]).set(stats.points as u64);
    }
}

/// Answers a connection over the capacity cap with a one-shot `503`.
/// The freshly accepted socket is still blocking with an empty send
/// buffer, so the write completes in one syscall.
fn shed(mut conn: TcpStream) {
    if obs::is_enabled() {
        obs::counter("servd_connections_rejected_total", &[]).inc();
    }
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = conn.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 9\r\nConnection: close\r\n\r\noverload\n",
    );
}

// --------------------------------------------------------- event loop

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// Timer-wheel tick width: deadlines are second-scale, so ±10 ms of
/// quantization is invisible.
const WHEEL_TICK: Duration = Duration::from_millis(10);
const WHEEL_SLOTS: usize = 1024;

/// How long the loop sleeps with nothing armed — bounds the latency of
/// noticing the stop flag or a process signal.
const STOP_POLL: Duration = Duration::from_millis(500);

/// Post-error linger caps, matching the old `drain_input`: discard at
/// most this many request bytes / this much time before closing, so the
/// FIN is clean but a firehose cannot hold the connection.
const DRAIN_BYTE_CAP: usize = 64 * 1024;
const DRAIN_TIME_CAP: Duration = Duration::from_millis(250);

/// Per-readable-event read cap, so one firehose connection cannot
/// starve its loop; level triggering re-arms the leftover immediately.
const READ_BURST: usize = 64 * 1024;

/// Which deadline a connection currently has armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// Idle keep-alive expiry — close silently.
    IdleClose,
    /// A request started arriving but has not completed — answer `408`.
    Request408,
    /// Queued response bytes are not draining — drop the connection.
    WriteStall,
    /// Post-error linger elapsed — close.
    DrainOver,
}

/// Connection lifecycle phase.
#[derive(Debug)]
enum Phase {
    /// Parsing requests and writing responses.
    Serving,
    /// An error response was queued; discard request bytes (bounded)
    /// until the linger ends, then close.
    Draining { since: Instant, discarded: usize },
}

/// A dispatched request whose trace is waiting for its response bytes
/// to drain before sealing: the flight recorder only admits traces
/// whose `total_ns` includes the write, so a slow reader shows up as a
/// slow trace with a long `write` stage.
#[derive(Debug)]
struct PendingTrace {
    trace: Arc<Trace>,
    /// When the response bytes were queued — start of the write stage.
    queued: Instant,
    /// `METHOD /path`, the flight recorder's endpoint key.
    endpoint: String,
    status: u16,
}

/// Everything [`Conn::advance`] needs from its event loop to dispatch a
/// completed request (bundled so the signature survives clippy's
/// argument budget as the loop grows context).
struct Dispatch<'a> {
    store: &'a StoreHandle,
    cache: &'a ResponseCache,
    ingest: Option<&'a IngestHandle>,
    whatif: Option<&'a WhatifHandle>,
    obs: &'a ObsState,
    access_log: bool,
    server_draining: bool,
}

/// One connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: Parser,
    phase: Phase,
    /// Peer address at accept time (for the access log; `None` if the
    /// accept path could not resolve it).
    peer: Option<SocketAddr>,
    /// Traces of dispatched requests whose responses are still
    /// draining; sealed when `out` empties (or the connection dies).
    pending: Vec<PendingTrace>,
    /// Buffered response bytes not yet written.
    out: Vec<u8>,
    written: usize,
    /// Close once `out` drains (Connection: close, or peer EOF).
    closing: bool,
    /// Fatal socket error — close unconditionally.
    dead: bool,
    /// The peer closed its write side; stop reading.
    peer_closed: bool,
    /// When the connection last became idle (accept, or last response
    /// of a completed request) — anchors the keep-alive deadline.
    idle_since: Instant,
    /// When the first byte of the in-flight request arrived.
    req_started: Option<Instant>,
    /// When `out` last became non-empty — anchors the write deadline.
    write_started: Option<Instant>,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// Deadline currently armed (lazily cancelled via `gen`).
    armed: Option<(DeadlineKind, Instant)>,
    gen: u64,
    read_timeout: Duration,
    write_timeout: Duration,
}

impl Conn {
    fn new(
        stream: TcpStream,
        peer: Option<SocketAddr>,
        limits: RequestLimits,
        config: &ServerConfig,
        now: Instant,
    ) -> Conn {
        Conn {
            stream,
            parser: Parser::new(limits),
            phase: Phase::Serving,
            peer,
            pending: Vec::new(),
            out: Vec::new(),
            written: 0,
            closing: false,
            dead: false,
            peer_closed: false,
            idle_since: now,
            req_started: None,
            write_started: None,
            registered: Interest::READ,
            armed: None,
            gen: 0,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
        }
    }

    fn out_done(&self) -> bool {
        self.written == self.out.len()
    }

    /// Reads whatever the socket has (up to [`READ_BURST`]), feeding the
    /// parser (serving) or the void (draining).
    fn fill(&mut self, now: Instant) {
        if self.peer_closed || self.dead {
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        let mut taken = 0usize;
        loop {
            if taken >= READ_BURST {
                return; // level triggering will re-deliver the rest
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    match self.phase {
                        Phase::Serving => match self.parser.close() {
                            None => self.closing = true,
                            Some(outcome) => self.fail(&outcome, now),
                        },
                        Phase::Draining { .. } => {}
                    }
                    return;
                }
                Ok(n) => {
                    taken += n;
                    match &mut self.phase {
                        Phase::Serving => {
                            if self.closing {
                                // Response with Connection: close already
                                // queued; ignore pipelined leftovers.
                                continue;
                            }
                            self.parser.push(&buf[..n]);
                            if self.req_started.is_none() && self.parser.mid_request() {
                                self.req_started = Some(now);
                            }
                        }
                        Phase::Draining { discarded, .. } => {
                            *discarded += n;
                            if *discarded >= DRAIN_BYTE_CAP {
                                return;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Runs the parser over buffered bytes and dispatches every
    /// completed request (inline — handlers are index reads or
    /// pool-scattered scans).
    ///
    /// With tracing on, each completed request mints a [`Trace`] whose
    /// epoch is the arrival of its first byte: `parse` covers first
    /// byte → dispatch, `queue_wait` covers the epoll wakeup →
    /// dispatch (for pipelined requests that includes time spent
    /// serving earlier requests in the batch), the router records its
    /// own child stages, and the final `write` stage lands when the
    /// response bytes drain (see [`EventLoop::after_io`]).
    fn advance(&mut self, now: Instant, ctx: &Dispatch<'_>) {
        while matches!(self.phase, Phase::Serving) && !self.closing && !self.dead {
            match self.parser.poll(Some(now)) {
                ParseProgress::NeedMore => break,
                ParseProgress::Done(req) => {
                    let head_only = req.method == "HEAD";
                    let keep = req.keep_alive && !ctx.server_draining;
                    let dispatch_start = Instant::now();
                    let trace = ctx.obs.recorder.as_ref().map(|recorder| {
                        let epoch = self.req_started.unwrap_or(now);
                        let trace = recorder.begin(epoch, obs::trace::unix_ms_now());
                        trace.record_span(
                            "parse",
                            "",
                            epoch,
                            dispatch_start,
                            req.body.len() as u64,
                        );
                        trace.record_span("queue_wait", "", now, dispatch_start, 0);
                        trace
                    });
                    let response = router::handle_traced(
                        &req,
                        ctx.store,
                        ctx.cache,
                        ctx.ingest,
                        ctx.whatif,
                        ctx.obs,
                        trace.as_ref(),
                    );
                    if ctx.access_log {
                        access_log_line(self.peer, &req, &response);
                    }
                    self.queue_response(&response, keep, head_only, now);
                    if let Some(trace) = trace {
                        self.pending.push(PendingTrace {
                            trace,
                            queued: Instant::now(),
                            endpoint: format!("{} {}", req.method, req.path),
                            status: response.status,
                        });
                    }
                    if !keep {
                        self.closing = true;
                    }
                    self.req_started = if self.parser.mid_request() {
                        Some(now)
                    } else {
                        self.idle_since = now;
                        None
                    };
                }
                ParseProgress::Fail(outcome) => {
                    self.fail(&outcome, now);
                    break;
                }
            }
        }
    }

    /// Queues the error response for a parse failure and enters the
    /// post-error linger. [`ReadOutcome::Closed`] never reaches here
    /// (EOF with an empty parser closes quietly in `fill`).
    fn fail(&mut self, outcome: &ReadOutcome, now: Instant) {
        let response = match outcome {
            ReadOutcome::Request(_) | ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => Response::text(413, "request too large\n"),
            ReadOutcome::BodyTooLarge => Response::text(413, "request body too large\n"),
            ReadOutcome::LengthRequired => Response::text(411, "POST requires a Content-Length\n"),
            ReadOutcome::TimedOut => Response::text(408, "request timed out\n"),
            ReadOutcome::Malformed(why) => Response::text(400, format!("{why}\n")),
        };
        self.queue_response(&response, false, false, now);
        self.closing = true;
        self.phase = Phase::Draining {
            since: now,
            discarded: 0,
        };
    }

    fn queue_response(
        &mut self,
        response: &Response,
        keep_alive: bool,
        head_only: bool,
        now: Instant,
    ) {
        if self.out_done() {
            self.out.clear();
            self.written = 0;
        }
        if self.out.is_empty() {
            self.write_started = Some(now);
        }
        // Writing into a Vec is infallible.
        let _ = write_response(&mut self.out, response, keep_alive, head_only);
    }

    /// Writes queued response bytes until the socket would block.
    fn flush(&mut self) {
        while self.written < self.out.len() && !self.dead {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => self.dead = true,
            }
        }
        if self.out_done() && !self.out.is_empty() {
            self.out.clear();
            self.written = 0;
            self.write_started = None;
        }
    }

    fn should_close(&self, now: Instant) -> bool {
        if self.dead {
            return true;
        }
        if !self.out_done() {
            return false;
        }
        match &self.phase {
            Phase::Serving => self.closing,
            Phase::Draining { since, discarded } => {
                self.peer_closed
                    || *discarded >= DRAIN_BYTE_CAP
                    || now.saturating_duration_since(*since) >= DRAIN_TIME_CAP
            }
        }
    }

    fn desired_interest(&self) -> Interest {
        let readable = !self.peer_closed
            && match &self.phase {
                Phase::Serving => !self.closing,
                Phase::Draining { discarded, .. } => *discarded < DRAIN_BYTE_CAP,
            };
        Interest {
            readable,
            writable: !self.out_done(),
        }
    }

    fn desired_deadline(&self) -> (DeadlineKind, Instant) {
        if let Phase::Draining { since, .. } = &self.phase {
            return (DeadlineKind::DrainOver, *since + DRAIN_TIME_CAP);
        }
        if let Some(started) = self.write_started {
            if !self.out_done() {
                return (DeadlineKind::WriteStall, started + self.write_timeout);
            }
        }
        if self.parser.mid_request() {
            // The body phase re-anchors the budget at its own start,
            // like the one-shot reader's body clock did; the parser's
            // internal budget handles drip-feeding, this wheel deadline
            // handles total silence.
            let anchor = self
                .parser
                .body_started()
                .or(self.req_started)
                .unwrap_or(self.idle_since);
            return (DeadlineKind::Request408, anchor + self.read_timeout);
        }
        (DeadlineKind::IdleClose, self.idle_since + self.read_timeout)
    }
}

/// One event-loop thread: poller, listener clone, timer wheel, and the
/// connections accepted here.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    waker: Arc<Waker>,
    config: ServerConfig,
    limits: RequestLimits,
    store: Arc<StoreHandle>,
    cache: Arc<ResponseCache>,
    ingest: Option<Arc<IngestHandle>>,
    whatif: Option<Arc<WhatifHandle>>,
    stop: Arc<AtomicBool>,
    conns_open: Arc<AtomicUsize>,
    capacity: usize,
    obs_state: Arc<ObsState>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        poller: Poller,
        listener: TcpListener,
        waker: Arc<Waker>,
        config: ServerConfig,
        store: Arc<StoreHandle>,
        cache: Arc<ResponseCache>,
        ingest: Option<Arc<IngestHandle>>,
        whatif: Option<Arc<WhatifHandle>>,
        stop: Arc<AtomicBool>,
        conns_open: Arc<AtomicUsize>,
        capacity: usize,
        obs_state: Arc<ObsState>,
    ) -> EventLoop {
        let limits = RequestLimits {
            max_head_bytes: config.max_request_bytes,
            max_body_bytes: config.max_body_bytes,
            body_timeout: Some(config.read_timeout),
        };
        EventLoop {
            poller,
            listener,
            waker,
            config,
            limits,
            store,
            cache,
            ingest,
            whatif,
            stop,
            conns_open,
            capacity,
            obs_state,
            conns: HashMap::new(),
            wheel: TimerWheel::new(Instant::now(), WHEEL_TICK, WHEEL_SLOTS),
            next_token: TOKEN_BASE,
            draining: false,
            drain_deadline: None,
        }
    }

    fn run(mut self) {
        if self
            .poller
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
        if self
            .poller
            .add(self.waker.fd(), TOKEN_WAKER, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        let mut expired: Vec<(u64, u64)> = Vec::new();
        loop {
            let now = Instant::now();
            if !self.draining
                && (self.stop.load(Ordering::SeqCst) || crate::signal::shutdown_requested())
            {
                self.begin_drain(now);
            }
            if self.draining
                && (self.conns.is_empty() || self.drain_deadline.is_some_and(|d| now >= d))
            {
                break;
            }
            let timeout = self.wait_timeout(now);
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            let now = Instant::now();
            for &event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_event(token, event.readable, event.writable, now),
                }
            }
            expired.clear();
            self.wheel.expire(now, &mut expired);
            for &(token, gen) in &expired {
                self.deadline_fired(token, gen, now);
            }
        }
        // Teardown: whatever is still open closes with the loop.
        let remaining = self.conns.len();
        self.conns.clear();
        self.conns_open.fetch_sub(remaining, Ordering::SeqCst);
    }

    fn wait_timeout(&self, now: Instant) -> Duration {
        let mut timeout = STOP_POLL;
        if let Some(next) = self.wheel.next_wakeup(now) {
            timeout = timeout.min(next);
        }
        if let Some(deadline) = self.drain_deadline {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        timeout.max(Duration::from_millis(1))
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline =
            Some(now + self.config.read_timeout.max(self.config.write_timeout) + STOP_POLL);
        let _ = self.poller.remove(self.listener.as_raw_fd());
        // Idle connections close immediately; busy ones finish their
        // in-flight request with Connection: close.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.parser.is_idle() && c.out_done())
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self, _now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.draining {
                        continue; // drop: we are on the way out
                    }
                    let prev = self.conns_open.fetch_add(1, Ordering::SeqCst);
                    if prev >= self.capacity {
                        self.conns_open.fetch_sub(1, Ordering::SeqCst);
                        shed(stream);
                        continue;
                    }
                    if obs::is_enabled() {
                        obs::counter("servd_connections_total", &[]).inc();
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.conns_open.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let now = Instant::now();
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        self.conns_open.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    let conn = Conn::new(stream, Some(peer), self.limits, &self.config, now);
                    self.conns.insert(token, conn);
                    self.after_io(token, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if writable {
            conn.flush();
        }
        if readable {
            conn.fill(now);
        }
        let ctx = Dispatch {
            store: &self.store,
            cache: &self.cache,
            ingest: self.ingest.as_deref(),
            whatif: self.whatif.as_deref(),
            obs: &self.obs_state,
            access_log: self.config.access_log,
            server_draining: self.draining,
        };
        conn.advance(now, &ctx);
        conn.flush();
        self.after_io(token, now);
    }

    fn deadline_fired(&mut self, token: u64, gen: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.gen != gen {
            return; // stale entry, lazily cancelled
        }
        let Some((kind, _)) = conn.armed else {
            return;
        };
        match kind {
            DeadlineKind::IdleClose | DeadlineKind::WriteStall | DeadlineKind::DrainOver => {
                self.close_conn(token);
            }
            DeadlineKind::Request408 => {
                conn.fail(&ReadOutcome::TimedOut, now);
                conn.flush();
                self.after_io(token, now);
            }
        }
    }

    /// Post-I/O bookkeeping: close, or converge epoll interest and the
    /// armed deadline with the connection's current state. Traces of
    /// fully drained responses seal here — before the close check, so
    /// a normally completed `Connection: close` request is recorded as
    /// `write`, never `write_aborted`.
    fn after_io(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.out_done() && !conn.pending.is_empty() {
            // A fresh instant, not the loop's `now`: that was taken
            // before this cycle dispatched, and the seal must cover
            // the dispatch and the write that just drained.
            seal_pending(conn, &self.obs_state, Instant::now(), "write");
        }
        if conn.should_close(now) {
            self.close_conn(token);
            return;
        }
        let interest = conn.desired_interest();
        if interest != conn.registered
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, interest)
                .is_ok()
        {
            conn.registered = interest;
        }
        let desired = conn.desired_deadline();
        if conn.armed != Some(desired) {
            conn.gen += 1;
            conn.armed = Some(desired);
            self.wheel.schedule(token, conn.gen, desired.1);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            // Anything still pending here never finished draining
            // (dead socket, write stall, shutdown teardown): seal it
            // as an error-shaped trace so the abort is inspectable.
            if !conn.pending.is_empty() {
                seal_pending(&mut conn, &self.obs_state, Instant::now(), "write_aborted");
            }
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.conns_open.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Seals every pending trace on `conn` into the flight recorder: the
/// terminal stage (`write` or `write_aborted`) spans queue → `now`,
/// and the trace's total is first byte → `now`.
fn seal_pending(conn: &mut Conn, obs_state: &ObsState, now: Instant, terminal: &'static str) {
    let Some(recorder) = obs_state.recorder.as_ref() else {
        conn.pending.clear();
        return;
    };
    // Ablation switch for E19 (EXPERIMENTS.md): dropping traces here
    // instead of sealing them isolates what sort + record construction
    // + slowest-N retention cost. Read once; dormant otherwise.
    static ABLATE_SEAL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *ABLATE_SEAL.get_or_init(|| std::env::var("SERVD_ABLATE_SEAL").is_ok()) {
        conn.pending.clear();
        return;
    }
    for p in conn.pending.drain(..) {
        p.trace.record_span(terminal, "", p.queued, now, 0);
        let total_ns = now
            .saturating_duration_since(p.trace.epoch())
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        recorder.admit(p.trace.seal(p.endpoint, p.status, total_ns));
    }
}

/// One NCSA Common Log Format line to stderr:
/// `peer - - [07/Aug/2026:12:00:00 +0000] "GET /errors?host=h HTTP/1.1" 200 1234`.
/// The timestamp is wall-clock UTC; the byte count is the body length
/// (what `Content-Length` declares, also for `HEAD`).
fn access_log_line(peer: Option<SocketAddr>, req: &Request, response: &Response) {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let stamp = simtime::Timestamp::from_unix(t);
    let (y, mo, d) = stamp.ymd();
    let (h, mi, s) = stamp.hms();
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    let month = MONTHS[(mo as usize - 1).min(11)];
    let mut target = req.path.clone();
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        target.push('=');
        target.push_str(v);
    }
    let peer = peer.map_or_else(|| "-".to_owned(), |p| p.ip().to_string());
    let mut err = io::stderr().lock();
    let _ = writeln!(
        err,
        "{peer} - - [{d:02}/{month}/{y}:{h:02}:{mi:02}:{s:02} +0000] \"{} {target} HTTP/1.1\" {} {}",
        req.method,
        response.status,
        response.body.len(),
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::StudyStore;
    use resilience::Pipeline;
    use std::net::Shutdown;

    fn handle() -> Arc<StoreHandle> {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        Arc::new(StoreHandle::new(StudyStore::build(report, None)))
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        }
    }

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    /// Reads exactly one response (headers + `Content-Length` body) off a
    /// keep-alive connection; a single `read` may return a partial write.
    fn read_one_response(conn: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            assert_eq!(conn.read(&mut byte).unwrap(), 1, "EOF mid-headers");
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf.clone()).unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        conn.read_exact(&mut body).unwrap();
        buf.extend_from_slice(&body);
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn serves_healthz_end_to_end() {
        let server = start(test_config(), handle()).unwrap();
        let resp = get(server.addr(), "/healthz");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("ok\n"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for _ in 0..3 {
            write!(conn, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let text = read_one_response(&mut conn);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("Connection: keep-alive"));
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Two requests in one segment: responses come back in order on
        // the same connection.
        write!(
            conn,
            "GET /healthz HTTP/1.1\r\n\r\nGET /snapshot HTTP/1.1\r\n\r\n"
        )
        .unwrap();
        let first = read_one_response(&mut conn);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        assert!(first.ends_with("ok\n"), "{first}");
        let second = read_one_response(&mut conn);
        assert!(second.starts_with("HTTP/1.1 200 OK"), "{second}");
        assert!(second.contains("snapshot: 1"), "{second}");
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_gets_413() {
        let config = ServerConfig {
            max_request_bytes: 128,
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        let resp = get(server.addr(), &format!("/{}", "x".repeat(500)));
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn stalled_sender_gets_408_not_a_stuck_loop() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Half a request, then silence longer than the read timeout.
        write!(conn, "GET /healthz HT").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
    }

    #[test]
    fn connections_over_capacity_are_shed_with_503() {
        // Capacity is workers + max_queue = 2 here: the third concurrent
        // connection must be rejected in one round-trip, not parked.
        let config = ServerConfig {
            workers: 1,
            max_queue: 1,
            read_timeout: Duration::from_secs(2),
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        let wedge = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let parked = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut shed_conn = TcpStream::connect(server.addr()).unwrap();
        shed_conn
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        shed_conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        drop(wedge);
        drop(parked);
        server.shutdown();
    }

    #[test]
    fn idle_keep_alive_connection_is_closed_silently() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let first = read_one_response(&mut conn);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        // Send nothing: past the idle timeout the server closes with no
        // status line (it would be 408 only mid-request).
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "idle close leaked bytes: {:?}",
            String::from_utf8_lossy(&rest)
        );
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_joins_and_refuses_new_connections() {
        let server = start(test_config(), handle()).unwrap();
        let addr = server.addr();
        assert!(get(addr, "/healthz").contains("200 OK"));
        server.shutdown();
        // The listener is gone: either the connect fails outright or the
        // backlogged-then-dropped socket yields no bytes.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                let _ = write!(conn, "GET /healthz HTTP/1.1\r\n\r\n");
                let _ = conn.shutdown(Shutdown::Write);
                let mut out = Vec::new();
                let _ = conn.read_to_end(&mut out);
                assert!(out.is_empty(), "served after shutdown");
            }
        }
    }

    #[test]
    fn traced_request_resolves_via_debug_traces() {
        let config = ServerConfig {
            trace_capacity: 16,
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        let resp = get(server.addr(), "/errors");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let id = resp
            .lines()
            .find_map(|l| l.strip_prefix("X-Trace-Id: "))
            .expect("traced response must carry X-Trace-Id")
            .trim()
            .to_owned();
        // The trace seals when its response bytes drain; that happens
        // before the connection closes, but poll defensively anyway.
        let mut lookup = String::new();
        for _ in 0..100 {
            lookup = get(server.addr(), &format!("/debug/traces?id={id}"));
            if lookup.starts_with("HTTP/1.1 200") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(lookup.starts_with("HTTP/1.1 200"), "{lookup}");
        for stage in ["\"parse\"", "\"route\"", "\"cache_lookup\"", "\"write\""] {
            assert!(lookup.contains(stage), "missing {stage} in {lookup}");
        }
        assert!(lookup.contains(&format!("\"id\": \"{id}\"")), "{lookup}");
        server.shutdown();
    }

    #[test]
    fn tracing_disabled_by_default_and_debug_traces_404s() {
        let server = start(test_config(), handle()).unwrap();
        let resp = get(server.addr(), "/errors");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(!resp.contains("X-Trace-Id"), "{resp}");
        let dump = get(server.addr(), "/debug/traces");
        assert!(dump.starts_with("HTTP/1.1 404"), "{dump}");
        let history = get(server.addr(), "/metrics/history?name=x");
        assert!(history.starts_with("HTTP/1.1 404"), "{history}");
        server.shutdown();
    }

    #[test]
    fn readyz_reports_snapshot_and_no_ingest() {
        let server = start(test_config(), handle()).unwrap();
        let resp = get(server.addr(), "/readyz");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"ready\":true"), "{resp}");
        assert!(resp.contains("\"snapshot\":1"), "{resp}");
        assert!(resp.contains("\"live_ingest\":false"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn metrics_history_serves_scraped_points() {
        let config = ServerConfig {
            scrape_secs: 1,
            ..test_config()
        };
        let server = start(config, handle()).unwrap();
        // The scraper takes an immediate first sample; any metric the
        // registry already holds will have at least one point.
        let mut resp = String::new();
        for _ in 0..100 {
            resp = get(server.addr(), "/metrics/history?name=servd_requests_total");
            if resp.contains("\"points\": [[") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"points\": [["), "{resp}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = start(test_config(), handle()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "BLETCH\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("Connection: close"));
        server.shutdown();
    }
}
