//! Thin epoll + eventfd FFI for the event-driven server core.
//!
//! Same zero-crate discipline as [`crate::signal`]: the crate stays
//! `#![deny(unsafe_code)]` except for this small, Linux-only module that
//! declares the four syscall wrappers it needs directly against libc
//! (which std already links). Everything above this module is safe Rust:
//! [`Poller`] owns the epoll instance, [`Waker`] owns an eventfd that
//! un-blocks a sleeping `epoll_wait` from another thread, and readiness
//! comes back as plain [`Event`] values keyed by caller-chosen `u64`
//! tokens.
//!
//! The server registers level-triggered interest only (no `EPOLLET`):
//! with per-connection state machines that always read/write to
//! `WouldBlock`, level triggering has the same wakeup cost and none of
//! the lost-event footguns. Write interest (`EPOLLOUT`) is registered
//! only while a connection actually has unflushed output, so an idle
//! keep-alive connection costs one registered fd and nothing else.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// ------------------------------------------------------------- raw FFI

/// Mirrors the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs it (no padding between `events` and `data`); other
/// architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// `O_CLOEXEC` — shared by `EPOLL_CLOEXEC` and `EFD_CLOEXEC`.
const CLOEXEC: i32 = 0o2000000;
/// `EFD_NONBLOCK` (`O_NONBLOCK`).
const EFD_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ------------------------------------------------------------ interest

/// Which readiness directions a registration listens for. Always
/// includes `EPOLLRDHUP` so a peer half-close surfaces as readable
/// (the subsequent read returns 0) instead of being invisible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — used while output is queued.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable, peer hung up, or the fd is in an error state (errors
    /// are surfaced by the next read/write, so they count as readable).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

// -------------------------------------------------------------- poller

/// An owned epoll instance. Registrations are keyed by `u64` tokens the
/// caller picks; dropping the poller closes the epoll fd (kernel-side
/// registrations die with it).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = RawEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Re-arms an existing registration with a new interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Errors (e.g. the fd already closed) are
    /// returned but safe to ignore on the teardown path.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = RawEvent { events: 0, data: 0 };
        // SAFETY: pre-2.6.9 kernels required a non-null event pointer
        // for DEL; passing one is harmless everywhere.
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`events` comes back empty), or a wakeup arrives.
    /// `None` blocks indefinitely. EINTR is treated as a timeout.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        const MAX_EVENTS: usize = 256;
        let mut raw = [RawEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1.4 ms deadline does not spin at 0 ms.
            Some(d) => i32::try_from(d.as_millis().saturating_add(1).min(i32::MAX as u128))
                .unwrap_or(i32::MAX),
        };
        // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries and the
        // kernel writes at most `maxevents` of them.
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for entry in raw.iter().take(n as usize) {
            let mask = entry.events;
            events.push(Event {
                token: entry.data,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                writable: mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe { close(self.epfd) };
    }
}

// --------------------------------------------------------------- waker

/// An eventfd that other threads write to in order to un-block a
/// sleeping [`Poller::wait`]. Register [`Waker::fd`] read-interested in
/// the poller; on wakeup, call [`Waker::drain`] to reset it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register in the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable, waking the poller. Safe to call from
    /// any thread, any number of times; wakeups coalesce.
    pub fn wake(&self) {
        let value: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value; an error
        // (e.g. the counter saturated) still leaves the fd readable,
        // which is all a wakeup needs.
        unsafe { write(self.fd, (&value as *const u64).cast(), 8) };
    }

    /// Consumes pending wakeups so the fd stops polling readable.
    pub fn drain(&self) {
        let mut value: u64 = 0;
        // SAFETY: reads 8 bytes into a live stack value; the fd is
        // non-blocking, so this never parks.
        unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn readable_socket_is_reported_under_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();
        client.write_all(b"x").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "no readable event for the socket"
        );
        poller.remove(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 1, Interest::READ).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wait did not unblock promptly"
        );
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "waker still readable after drain");
        handle.join().unwrap();
    }
}
