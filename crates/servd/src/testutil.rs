//! Shared test-support HTTP client for the server integration suites.
//!
//! Every differential suite (serve/ingest equivalence, backpressure,
//! crash recovery) and the loadgen benches used to carry a private copy
//! of the same tiny client: connect with `TCP_NODELAY`, send a whole
//! request in **one write** (so the server's incremental parser sees the
//! common fast path unless a test deliberately dribbles bytes), and read
//! a complete `Content-Length`-framed response. This module is that
//! client, compiled only for tests and for dependents that enable the
//! `testutil` feature — it is not part of the serving API.
//!
//! Everything here panics on protocol violations: in a test, a malformed
//! response *is* the failure.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A fully read HTTP response: status, headers, raw body bytes.
#[derive(Debug, Clone)]
pub struct TestResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Header name/value pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body, unparsed.
    pub body: Vec<u8>,
}

impl TestResponse {
    /// The first header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics if it is not — our endpoints only emit
    /// text).
    pub fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("UTF-8 response body")
    }
}

/// Connects with `TCP_NODELAY` set, so one-write requests hit the wire
/// immediately instead of waiting out Nagle.
pub fn connect(addr: impl ToSocketAddrs) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect to test server");
    conn.set_nodelay(true).expect("set TCP_NODELAY");
    conn
}

/// The request bytes `request_on` sends: `Connection: keep-alive`, plus
/// `Content-Length` whenever a body is present. Exposed so byte-dribble
/// tests can split the exact same wire image.
pub fn request_bytes(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: keep-alive\r\n");
    if !body.is_empty() || method == "POST" || method == "PUT" {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    let mut out = req.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Issues one request on an existing keep-alive connection — the whole
/// request in a single write — and reads the complete framed response.
pub fn request_on(conn: &mut TcpStream, method: &str, path: &str, body: &[u8]) -> TestResponse {
    conn.write_all(&request_bytes(method, path, body))
        .expect("request written in one write");
    read_response(conn)
}

/// `GET` convenience over [`request_on`].
pub fn get_on(conn: &mut TcpStream, path: &str) -> TestResponse {
    request_on(conn, "GET", path, b"")
}

/// One-shot convenience: connect, issue a single request, return the
/// response (the connection drops afterwards).
pub fn request(addr: impl ToSocketAddrs, method: &str, path: &str, body: &[u8]) -> TestResponse {
    let mut conn = connect(addr);
    request_on(&mut conn, method, path, body)
}

/// Drives a `/whatif` request to completion: follows a `202` by polling
/// its `/whatif/jobs/:id` URL until the campaign finishes (or `tries`
/// polls elapse — then panics). A direct `200`/error returns untouched,
/// so assertions about `X-Cache` etc. stay on the first response when
/// it completed synchronously.
pub fn whatif_to_completion(
    addr: impl ToSocketAddrs + Copy,
    path: &str,
    tries: usize,
) -> TestResponse {
    let first = request(addr, "GET", path, b"");
    if first.status != 202 {
        return first;
    }
    let text = first.text();
    let poll = text
        .split("\"poll\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("202 body carries a poll URL")
        .to_owned();
    for _ in 0..tries {
        std::thread::sleep(std::time::Duration::from_millis(100));
        let resp = request(addr, "GET", &poll, b"");
        if resp.status != 202 {
            return resp;
        }
    }
    panic!("whatif job did not finish within {tries} polls: {poll}");
}

/// Reads one `Content-Length`-framed response off the stream. Panics on
/// EOF mid-response, a head past 64 KiB, or a missing `Content-Length`
/// (the server always emits one).
///
/// The head is read in buffered chunks, not byte-at-a-time: the client
/// issues one request per read, so every byte a `read` returns belongs
/// to this response, and a per-byte syscall would make measured
/// throughput scale with *header length* — a 30-byte `X-Trace-Id`
/// would read as ~30 extra syscalls of "server overhead" in the
/// paired-fleet benches.
pub fn read_response(conn: &mut TcpStream) -> TestResponse {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        assert!(buf.len() < 64 * 1024, "unterminated response head");
        let n = conn.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "EOF mid-response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("ASCII response head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .expect("Content-Length header");
    let mut body = buf.split_off(head_end);
    assert!(
        body.len() <= length,
        "server sent {} bytes past the declared Content-Length {length}",
        body.len() - length
    );
    let read_so_far = body.len();
    body.resize(length, 0);
    conn.read_exact(&mut body[read_so_far..])
        .expect("framed body");
    TestResponse {
        status,
        headers,
        body,
    }
}
